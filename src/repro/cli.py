"""Command-line interface: ``python -m repro run|compare|sweep|report|info``.

A thin veneer over the declarative experiment API
(:mod:`repro.experiments`): every subcommand builds
:class:`~repro.experiments.spec.ExperimentSpec` objects and hands them to a
:class:`~repro.experiments.campaign.Campaign`.  Progress reporting goes
through :class:`~repro.experiments.events.ConsoleEvents` — the CLI itself
contains no training loops.

* ``run`` — one algorithm, one seed.
* ``compare`` — every algorithm on the same preset (a 1×|algorithms| grid).
* ``sweep`` — the full declarative grid: ``--algorithms`` ×
  ``--workers`` × ``--seeds``, optionally parallelized across processes
  (``--jobs``) and persisted/resumed through a result store (``--json DIR``).
* ``report`` — summarize a result store as the paper-style table,
  optionally filtered (``--filter tag=... --filter algo=...``);
  ``--plot`` additionally renders the paper-style convergence curves
  as ASCII charts.
* ``agent`` — run a fleet agent daemon; ``sweep --agents host:port,...``
  farms grid cells out to a roster of them (see README "Fleet mode").
* ``store merge`` — fold independently-collected result stores into one,
  content-addressed-key-wise.
* ``watch`` — follow the live JSON dashboard a ``sweep --serve PORT``
  campaign publishes (progress, curve tails, agent roster, metrics).
* ``trace`` — inspect a JSONL run trace written by ``run --trace PATH``:
  ``show`` prints records, ``summarize`` prints per-phase time
  attribution and staleness statistics.
* ``info`` — dump the resolved configuration as nested JSON.

``--backend`` selects the execution runtime: ``sim`` (deterministic
virtual-time event loop, the default), ``thread`` (real concurrent
parameter server; wall-clock time and staleness are genuine) or ``proc``
(real OS-process workers over sockets; no shared GIL).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.core import TrainingConfig
from repro.core.config import ALGORITHMS, COMM_CODECS, TOPOLOGIES
from repro.data.registry import dataset_names
from repro.experiments import (
    Campaign,
    ConsoleEvents,
    ExperimentSpec,
    ResultStore,
    Sweep,
    format_summary,
    make_executor,
    parse_filters,
)
from repro.nn.registry import model_names
from repro.runtime import available_backends
from repro.version import __version__

#: preset name -> TrainingConfig factory (the sweepable scenarios)
PRESETS = {
    "tiny": TrainingConfig.tiny,
    "cifar": TrainingConfig.small_cifar,
    "imagenet": TrainingConfig.small_imagenet,
    "spirals": TrainingConfig.spirals,
    "paper-cifar": TrainingConfig.paper_cifar10,
    "paper-imagenet": TrainingConfig.paper_imagenet,
}


def _result_payload(result) -> dict:
    """The full result record plus the derived headline numbers."""
    payload = result.to_dict()
    payload.update(
        final_test_error=result.final_test_error,
        final_train_error=result.final_train_error,
        best_test_error=result.best_test_error,
    )
    return payload


def _make_config(
    args: argparse.Namespace,
    algorithm: str,
    seed: Optional[int] = None,
    workers: Optional[int] = None,
    codec: Optional[str] = None,
) -> TrainingConfig:
    """Resolve one TrainingConfig from CLI flags (sgd-normalization is
    config's job now, not ours)."""
    factory = PRESETS[args.preset]
    overrides = {}
    if args.epochs is not None:
        overrides["epochs"] = args.epochs
        overrides["lr_milestones"] = (args.epochs // 2, (3 * args.epochs) // 4)
    if args.model is not None:
        overrides["model"] = args.model
        overrides["model_kwargs"] = {}  # preset kwargs belong to its own model
    if getattr(args, "topology", None) is not None:
        overrides["topology"] = args.topology
    if codec is not None:
        overrides["comm_codec"] = codec
    elif getattr(args, "comm_codec", None) is not None:
        overrides["comm_codec"] = args.comm_codec
    return factory(
        algorithm=algorithm,
        num_workers=int(args.workers) if workers is None else workers,
        seed=args.seed if seed is None else seed,
        **overrides,
    )


def _backend_options(args: argparse.Namespace) -> dict:
    if args.backend != "thread":
        return {}
    return {"deterministic": args.deterministic}


def _make_spec(
    args: argparse.Namespace,
    algorithm: str,
    seed: Optional[int] = None,
    workers: Optional[int] = None,
    codec: Optional[str] = None,
) -> ExperimentSpec:
    return ExperimentSpec(
        config=_make_config(args, algorithm, seed=seed, workers=workers, codec=codec),
        backend=args.backend,
        backend_options=_backend_options(args),
    )


def _print_summary(result) -> None:
    clock = (
        f"real {result.wall_time:.1f}s wall-clock"
        if result.backend in ("thread", "proc")
        else f"virtual {result.total_virtual_time:.1f}s"
    )
    print(f"final test error: {result.final_test_error:.2%} "
          f"({clock}, mean staleness {result.staleness['mean']:.1f})")


def _add_common(parser: argparse.ArgumentParser, multi_worker: bool = False) -> None:
    if multi_worker:
        parser.add_argument(
            "--workers", default="4,8",
            help="comma-separated worker counts to sweep (e.g. 2,4,8)",
        )
    else:
        parser.add_argument("--workers", type=int, default=8, help="worker count")
    parser.add_argument(
        "--preset", choices=sorted(PRESETS), default="cifar",
        help="named experiment preset (scenario + scale)",
    )
    parser.add_argument(
        "--dataset", choices=sorted(dataset_names()), default=None,
        help="alias for --preset on the small-scale scenarios",
    )
    parser.add_argument(
        "--model", choices=sorted(model_names()), default=None,
        help="override the preset's model (e.g. resnet_tiny)",
    )
    parser.add_argument("--epochs", type=int, default=None, help="override preset epochs")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--backend",
        choices=list(available_backends()),
        default="sim",
        help="execution runtime: sim (virtual time), thread (real threads), "
             "proc (real worker processes over sockets) or gossip "
             "(serverless ad-psgd; sim/thread delegate to it automatically)",
    )
    parser.add_argument(
        "--topology",
        choices=list(TOPOLOGIES),
        default=None,
        help="ad-psgd peer graph (ring, bipartite, complete); "
             "ignored by the server-based algorithms",
    )
    parser.add_argument(
        "--comm-codec",
        dest="comm_codec",
        default=None,
        help="gradient codec on the wire (raw32, fp16, topk); sweep accepts "
             "a comma-separated list to add a codec axis to the grid",
    )
    parser.add_argument(
        "--deterministic",
        action="store_true",
        help="thread backend only: round-robin scheduling, reproducible runs",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="stream one line per evaluation point (serial execution only)",
    )


def _resolve_preset(args: argparse.Namespace) -> None:
    """``--dataset X`` keeps working as shorthand for the matching preset."""
    if args.dataset is not None:
        args.preset = args.dataset


def _check_jobs(args: argparse.Namespace) -> None:
    if getattr(args, "agents", None) and args.jobs > 1:
        raise SystemExit(
            "--agents and --jobs are different parallelism strategies: agents "
            "already run cells concurrently on their own hosts (pick one)"
        )
    if args.jobs > 1 and args.backend != "sim":
        raise SystemExit(
            "--jobs > 1 parallelizes across processes and only supports the sim "
            "backend; the thread and proc backends already use every core for "
            "their own workers"
        )


def _parse_worker_counts(raw: str) -> List[int]:
    try:
        counts = [int(w) for w in str(raw).split(",") if w.strip()]
    except ValueError:
        raise SystemExit(f"--workers expects comma-separated integers, got {raw!r}")
    if not counts:
        raise SystemExit("--workers expects at least one worker count")
    return counts


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="LC-ASGD reproduction (ICPP 2020)"
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="train once with one algorithm")
    run_p.add_argument("--algorithm", choices=list(ALGORITHMS), default="lc-asgd")
    _add_common(run_p)
    run_p.add_argument("--json", metavar="PATH", default=None, help="write the result as JSON")
    run_p.add_argument(
        "--obs", action="store_true",
        help="attach a trace recorder: the result carries per-phase time "
             "attribution and staleness/wire-byte histograms",
    )
    run_p.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write the run's JSONL trace here (implies --obs)",
    )

    cmp_p = sub.add_parser("compare", help="train every algorithm and summarize")
    _add_common(cmp_p)
    cmp_p.add_argument(
        "--jobs", type=int, default=1,
        help="sim backend: run up to N configs in parallel processes",
    )
    cmp_p.add_argument("--json", metavar="PATH", default=None, help="write results as JSON")

    sweep_p = sub.add_parser(
        "sweep", help="run a declarative algorithms x workers x seeds grid"
    )
    sweep_p.add_argument(
        "--algorithms", default=",".join(ALGORITHMS),
        help="comma-separated algorithms (default: all)",
    )
    _add_common(sweep_p, multi_worker=True)
    sweep_p.set_defaults(preset="tiny")
    sweep_p.add_argument(
        "--seeds", type=int, default=1,
        help="number of seeds per cell (seed, seed+1, ...)",
    )
    sweep_p.add_argument(
        "--jobs", type=int, default=1,
        help="sim backend: run up to N grid cells in parallel processes",
    )
    sweep_p.add_argument(
        "--json", metavar="DIR", default=None,
        help="result-store directory: one JSON per run, keyed by spec hash; "
             "rerunning resumes from it",
    )
    sweep_p.add_argument(
        "--agents", metavar="HOST:PORT,...", default="",
        help="run grid cells on these fleet agents (start them with "
             "`repro agent`); dead agents are survived by requeueing",
    )
    sweep_p.add_argument(
        "--agent-timeout", type=float, default=0.0, metavar="SECONDS",
        help="declare an agent dead after this long without a frame "
             "(default 10; must exceed the agents' --heartbeat interval)",
    )
    sweep_p.add_argument(
        "--obs", action="store_true",
        help="run every cell with a trace recorder (results carry "
             "metrics-hub snapshots; fleet agents ship traces back)",
    )
    sweep_p.add_argument(
        "--serve", type=int, default=None, metavar="PORT",
        help="publish live campaign state as JSON on this port while the "
             "sweep runs (0 picks a free port; follow it with `repro "
             "watch URL`); implies --obs",
    )

    rep_p = sub.add_parser("report", help="summarize a result-store directory")
    rep_p.add_argument("store", help="result-store directory written by sweep --json")
    rep_p.add_argument("--json", metavar="PATH", default=None, help="write summary rows as JSON")
    rep_p.add_argument(
        "--filter", action="append", default=[], metavar="NAME=VALUE",
        help="keep only matching runs; repeatable (ANDed). NAME is 'tag', "
             "'backend', or a config field (algo/algorithm, num_workers, "
             "dataset, model, seed, ...)",
    )
    rep_p.add_argument(
        "--plot", action="store_true",
        help="also render the paper-style convergence curves (test error "
             "vs time, one series per algorithm x workers cell) as ASCII",
    )

    agent_p = sub.add_parser(
        "agent", help="run a fleet agent daemon that executes sweep cells"
    )
    agent_p.add_argument("--bind", default="127.0.0.1:7463", metavar="HOST:PORT")
    agent_p.add_argument("--slots", type=int, default=1)
    agent_p.add_argument("--heartbeat", type=float, default=None)
    agent_p.add_argument("--port-file", default=None, metavar="PATH")

    store_p = sub.add_parser("store", help="result-store maintenance")
    store_sub = store_p.add_subparsers(dest="store_command", required=True)
    merge_p = store_sub.add_parser(
        "merge", help="fold source stores into a destination, key-wise"
    )
    merge_p.add_argument("dest", help="destination store directory (created if absent)")
    merge_p.add_argument("sources", nargs="+", help="source store directories")
    merge_p.add_argument(
        "--overwrite", action="store_true",
        help="on key collision prefer the source record (default keeps dest's)",
    )

    watch_p = sub.add_parser(
        "watch", help="follow the live dashboard of a `sweep --serve` campaign"
    )
    watch_p.add_argument("url", help="dashboard URL printed by sweep --serve")
    watch_p.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="poll interval (default 2s)",
    )
    watch_p.add_argument(
        "--once", action="store_true", help="print one snapshot and exit"
    )

    trace_p = sub.add_parser("trace", help="inspect a JSONL run trace")
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)
    show_p = trace_sub.add_parser("show", help="print trace records")
    show_p.add_argument("path", help="JSONL trace written by run --trace")
    show_p.add_argument(
        "--kind", default=None, metavar="NAME",
        help="only records of this event kind (span, staleness, ...)",
    )
    show_p.add_argument(
        "--limit", type=int, default=0, metavar="N",
        help="stop after N records (default: all)",
    )
    tsum_p = trace_sub.add_parser(
        "summarize", help="per-phase time attribution + staleness statistics"
    )
    tsum_p.add_argument("path", help="JSONL trace written by run --trace")

    info_p = sub.add_parser("info", help="describe the resolved configuration")
    info_p.add_argument("--algorithm", choices=list(ALGORITHMS), default="lc-asgd")
    _add_common(info_p)

    lint_p = sub.add_parser(
        "lint", help="run the repro.analysis invariant passes over the source tree"
    )
    lint_p.add_argument(
        "--rule", action="append", default=None, metavar="NAME",
        help="run only this pass; repeatable (default: all passes)",
    )
    lint_p.add_argument(
        "--root", default=None, metavar="DIR",
        help="tree to analyze (default: the installed repro package)",
    )
    lint_p.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="suppression baseline (default: lint-baseline.json found "
             "walking up from the analyzed root)",
    )
    lint_p.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    lint_p.add_argument(
        "--list-rules", action="store_true", help="list available passes and exit"
    )

    args = parser.parse_args(argv)

    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "agent":
        return _cmd_agent(args)
    if args.command == "store":
        return _cmd_store_merge(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.deterministic and args.backend != "thread":
        raise SystemExit(
            "--deterministic is a thread-backend option (sim is always "
            "deterministic; proc workers are real processes and race)"
        )
    _resolve_preset(args)
    if args.command == "info":
        return _cmd_info(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    return _cmd_sweep(args)


# ---------------------------------------------------------------------- #
# subcommands
# ---------------------------------------------------------------------- #
def _cmd_info(args: argparse.Namespace) -> int:
    config = _make_config(args, args.algorithm)
    print(json.dumps(config.to_dict(), indent=2))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _make_spec(args, args.algorithm)
    if args.obs or args.trace:
        # Observability bypasses the Campaign veneer: run_experiment owns
        # the recorder so --trace can dump the JSONL after the run.
        from repro.runtime.backends import run_experiment

        result = run_experiment(
            spec.config,
            backend=spec.backend,
            obs=True,
            trace_path=args.trace or "",
            **spec.backend_options,
        )
    else:
        report = Campaign([spec], events=ConsoleEvents(verbose=args.verbose)).run()
        result = report.results[0]
    _print_summary(result)
    obs = getattr(result, "obs", None) or {}
    if obs.get("enabled"):
        spans = obs.get("spans_ms") or {}
        attribution = "  ".join(
            f"{phase} {ms:.0f}ms" for phase, ms in sorted(spans.items())
        )
        print(f"obs: {obs.get('records', 0)} trace record(s)"
              + (f"; {attribution}" if attribution else ""))
    if args.trace:
        print(f"trace: {args.trace}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(_result_payload(result), fh, indent=2)
        print(f"wrote {args.json}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    _check_jobs(args)
    # the proc runtime is server-based only; keep `compare --backend proc`
    # meaningful by skipping the serverless algorithm instead of dying on it
    algorithms = [a for a in ALGORITHMS if not (a == "ad-psgd" and args.backend == "proc")]
    specs = [_make_spec(args, algorithm) for algorithm in algorithms]
    report = Campaign(
        specs,
        executor=make_executor(args.jobs),
        events=ConsoleEvents(verbose=args.verbose),
    ).run()
    payloads = [_result_payload(result) for result in report.results]
    best = min(payloads, key=lambda p: p["final_test_error"])
    print(f"\nbest: {best['algorithm']} at {best['final_test_error']:.2%}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payloads, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    _check_jobs(args)
    algorithms = [a.strip() for a in args.algorithms.split(",") if a.strip()]
    unknown = sorted(set(algorithms) - set(ALGORITHMS))
    if unknown:
        raise SystemExit(f"unknown algorithm(s) {', '.join(unknown)}; "
                         f"choose from {', '.join(ALGORITHMS)}")
    workers = _parse_worker_counts(args.workers)
    seeds = [args.seed + i for i in range(max(1, args.seeds))]

    grid = (
        Sweep("algorithm", algorithms)
        * Sweep("num_workers", workers)
        * Sweep("seed", seeds)
    )
    if args.comm_codec is not None:
        # `--comm-codec fp16,topk` makes the codec one more grid axis, so
        # compression ablations (dc-asgd x codecs) run as one sweep
        codecs = [c.strip() for c in args.comm_codec.split(",") if c.strip()]
        unknown = sorted(set(codecs) - set(COMM_CODECS))
        if unknown:
            raise SystemExit(f"unknown codec(s) {', '.join(unknown)}; "
                             f"choose from {', '.join(COMM_CODECS)}")
        if not codecs:
            raise SystemExit("--comm-codec expects at least one codec")
        grid = grid * Sweep("comm_codec", codecs)
    specs = [
        _make_spec(
            args,
            point["algorithm"],
            seed=point["seed"],
            workers=point["num_workers"],
            codec=point.get("comm_codec"),
        ).with_tags("sweep")
        for point in grid.points()
    ]
    store = ResultStore(args.json) if args.json else None
    events = ConsoleEvents(verbose=args.verbose)
    obs = args.obs or args.serve is not None
    server = None
    if args.serve is not None:
        from repro.obs.dashboard import DashboardEvents, serve_dashboard

        events = DashboardEvents(inner=events)
        server = serve_dashboard(events, port=args.serve)
        print(f"dashboard: {server.url}  (follow with `repro watch {server.url}`)")
    try:
        report = Campaign(
            specs,
            executor=make_executor(
                args.jobs, agents=args.agents, agent_timeout=args.agent_timeout, obs=obs
            ),
            store=store,
            events=events,
        ).run()
        print()
        print(format_summary(report.summarize()))
        if store is not None:
            print(f"\nstore: {store.root} ({len(store)} record(s))")
    finally:
        if server is not None:
            server.linger()  # let an active watcher see the finished frame
            server.close()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if not Path(args.store).is_dir():  # report is read-only: never mkdir
        raise SystemExit(f"no result store at {args.store!r}")
    try:
        filters = parse_filters(args.filter) if args.filter else None
    except ValueError as exc:
        raise SystemExit(str(exc))
    store = ResultStore(args.store)
    rows = store.summarize(filters=filters)
    print(format_summary(rows))
    if args.plot:
        chart = _render_store_plots(store, filters)
        if chart:
            print()
            print(chart)
        else:
            print("\n(no learning curves to plot)")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(rows, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


def _render_store_plots(store, filters=None) -> str:
    """The paper's Figures 3-6 as ASCII: error-vs-time convergence curves.

    One series per (algorithm, workers, backend) cell; seed replicates
    collapse to the first seed seen (the summary table already carries the
    seed-averaged numbers).
    """
    from repro.bench.plots import ascii_plot
    from repro.experiments.store import record_matches

    test_series = {}
    train_series = {}
    for record in store.records():
        if filters and not record_matches(record, filters):
            continue
        result = record.result
        if not result.curve:
            continue
        label = f"{result.algorithm} M={result.num_workers} {result.backend}"
        if label in test_series:  # another seed of the same cell
            continue
        times = [p.time for p in result.curve]
        test_series[label] = (times, [p.test_error for p in result.curve])
        train_series[label] = (times, [p.train_error for p in result.curve])
    if not test_series:
        return ""
    charts = [
        ascii_plot(
            test_series,
            title="test error vs training time (paper Figs. 3-6)",
            xlabel="time (s)", ylabel="test err",
        ),
        ascii_plot(
            train_series,
            title="train error vs training time",
            xlabel="time (s)", ylabel="train err",
        ),
    ]
    return "\n\n".join(charts)


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.obs.dashboard import watch

    return watch(args.url, interval=args.interval, once=args.once)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.recorder import load_trace

    if not Path(args.path).is_file():
        raise SystemExit(f"no trace file at {args.path!r}")
    try:
        meta, records = load_trace(args.path)
    except (ValueError, json.JSONDecodeError) as exc:
        raise SystemExit(f"unreadable trace {args.path!r}: {exc}")
    if args.trace_command == "show":
        shown = 0
        for record in records:
            if args.kind and record.kind != args.kind:
                continue
            fields = "  ".join(f"{k}={v}" for k, v in record.fields.items())
            print(f"t={record.t:12.6f}  w={record.worker:3d}  {record.kind:12s} {fields}")
            shown += 1
            if args.limit and shown >= args.limit:
                break
        print(f"({shown} of {len(records)} record(s) shown)", file=sys.stderr)
        return 0
    return _trace_summarize(meta, records)


def _trace_summarize(meta: dict, records) -> int:
    """``repro trace summarize``: reconstruct attribution from the JSONL."""
    from repro.obs.hub import staleness_histogram

    print(f"trace: run_id={meta.get('run_id', '?')!r}  "
          f"version={meta.get('version', '?')}  "
          f"records={len(records)}  dropped={meta.get('dropped', 0)}")
    kinds: dict = {}
    for record in records:
        kinds[record.kind] = kinds.get(record.kind, 0) + 1
    print("events: " + "  ".join(f"{k}={n}" for k, n in sorted(kinds.items())))

    totals: dict = {}
    for record in records:
        if record.kind == "span":
            phase = str(record.fields["phase"])
            totals[phase] = totals.get(phase, 0.0) + float(record.fields["dur_ms"])
    for name, entry in (meta.get("timer") or {}).items():
        totals[name] = totals.get(name, 0.0) + float(entry.get("total_s", 0.0)) * 1e3
    if totals:
        print("phase attribution (ms):")
        width = max(len(name) for name in totals)
        grand = sum(totals.values()) or 1.0
        for name, ms in sorted(totals.items(), key=lambda kv: -kv[1]):
            print(f"  {name:{width}s}  {ms:10.1f}  ({ms / grand:6.1%})")

    staleness = [
        float(r.fields["value"]) for r in records if r.kind == "staleness"
    ]
    if staleness:
        hist = staleness_histogram(staleness)
        print(f"staleness: n={len(staleness)}  "
              f"mean={sum(staleness) / len(staleness):.3f}  "
              f"max={max(staleness):.0f}")
        payload = hist.to_dict()
        edges, counts = payload["edges"], payload["counts"]
        labels = _histogram_labels(edges)
        peak = max(counts) or 1
        for label, count in zip(labels, counts):
            bar = "#" * max(1 if count else 0, round(24 * count / peak))
            print(f"  {label:>12s} {count:6d} {bar}")
    return 0


def _histogram_labels(edges) -> List[str]:
    """Bin labels for a Histogram's counts: [<e0, e0-e1, ..., >=eN]."""
    labels = [f"<{edges[0]:g}"]
    for lo, hi in zip(edges, edges[1:]):
        labels.append(f"{lo:g}-{hi:g}")
    labels.append(f">={edges[-1]:g}")
    return labels


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import (
        BASELINE_FILENAME,
        apply_baseline,
        available_rules,
        load_baseline,
        run_passes,
        save_baseline,
    )

    if args.list_rules:
        from repro.analysis import PASSES, load_builtin_passes

        load_builtin_passes()
        for name in available_rules():
            print(f"{name:14s} {PASSES.get(name).description}")
        return 0

    if args.root is not None:
        root = Path(args.root).resolve()
    else:
        import repro

        root = Path(repro.__file__).resolve().parent
    if not root.is_dir():
        print(f"lint: no such directory: {root}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline) if args.baseline else None
    if baseline_path is None:
        for candidate_dir in (root, *root.parents):
            candidate = candidate_dir / BASELINE_FILENAME
            if candidate.is_file():
                baseline_path = candidate
                break

    findings = run_passes(root, rules=args.rule)

    if args.update_baseline:
        target = baseline_path or root / BASELINE_FILENAME
        save_baseline(target, findings)
        print(f"lint: wrote {len(findings)} suppression(s) to {target}")
        return 0

    entries = load_baseline(baseline_path) if baseline_path else []
    fresh, suppressed, stale = apply_baseline(findings, entries)

    for finding in fresh:
        print(finding)
    for entry in stale:
        print(
            f"lint: stale baseline entry [{entry.get('rule', '?')}] "
            f"{entry.get('path', '?')}: {entry.get('message', '?')}",
            file=sys.stderr,
        )
    if fresh:
        print(
            f"lint: {len(fresh)} finding(s)"
            + (f", {len(suppressed)} baselined" if suppressed else ""),
            file=sys.stderr,
        )
        return 1
    summary = f"lint: clean ({len(findings) - len(fresh)} baselined)" if suppressed else "lint: clean"
    print(summary)
    return 0


def _cmd_agent(args: argparse.Namespace) -> int:
    from repro.fleet.agent import serve

    return serve(
        args.bind, slots=args.slots, heartbeat=args.heartbeat, port_file=args.port_file
    )


def _cmd_store_merge(args: argparse.Namespace) -> int:
    for source in args.sources:
        if not Path(source).is_dir():
            raise SystemExit(f"no result store at {source!r}")
    dest = ResultStore(args.dest)
    for source in args.sources:
        report = dest.merge(ResultStore(source), overwrite=args.overwrite)
        print(f"merge {source} -> {args.dest}: {report}")
    print(f"store: {dest.root} ({len(dest)} record(s))")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
