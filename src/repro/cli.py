"""Command-line interface: ``python -m repro run|compare|info``.

A thin veneer over :class:`~repro.core.trainer.DistributedTrainer` for
users who want the headline experiments without writing Python.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core import DistributedTrainer, TrainingConfig
from repro.core.config import ALGORITHMS
from repro.version import __version__


def _result_payload(result) -> dict:
    return {
        "algorithm": result.algorithm,
        "num_workers": result.num_workers,
        "bn_mode": result.bn_mode,
        "final_test_error": result.final_test_error,
        "final_train_error": result.final_train_error,
        "best_test_error": result.best_test_error,
        "total_updates": result.total_updates,
        "total_virtual_time": result.total_virtual_time,
        "staleness": result.staleness,
        "curve": [
            {
                "epoch": p.epoch,
                "time": p.time,
                "train_error": p.train_error,
                "test_error": p.test_error,
            }
            for p in result.curve
        ],
    }


def _make_config(args: argparse.Namespace, algorithm: str) -> TrainingConfig:
    factory = {
        "cifar": TrainingConfig.small_cifar,
        "imagenet": TrainingConfig.small_imagenet,
    }[args.dataset]
    overrides = {}
    if args.epochs is not None:
        overrides["epochs"] = args.epochs
        overrides["lr_milestones"] = (args.epochs // 2, (3 * args.epochs) // 4)
    return factory(
        algorithm=algorithm,
        num_workers=1 if algorithm == "sgd" else args.workers,
        seed=args.seed,
        **overrides,
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=8, help="simulated worker count")
    parser.add_argument("--dataset", choices=["cifar", "imagenet"], default="cifar")
    parser.add_argument("--epochs", type=int, default=None, help="override preset epochs")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", metavar="PATH", default=None, help="write results as JSON")


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="LC-ASGD reproduction (ICPP 2020)"
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="train once with one algorithm")
    run_p.add_argument("--algorithm", choices=list(ALGORITHMS), default="lc-asgd")
    _add_common(run_p)

    cmp_p = sub.add_parser("compare", help="train all five algorithms and summarize")
    _add_common(cmp_p)

    info_p = sub.add_parser("info", help="describe the resolved configuration")
    info_p.add_argument("--algorithm", choices=list(ALGORITHMS), default="lc-asgd")
    _add_common(info_p)

    args = parser.parse_args(argv)

    if args.command == "info":
        config = _make_config(args, args.algorithm)
        print(json.dumps({k: str(v) for k, v in vars(config).items()}, indent=2))
        return 0

    if args.command == "run":
        config = _make_config(args, args.algorithm)
        print(f"running {config.algorithm} on {config.num_workers} worker(s)...", flush=True)
        result = DistributedTrainer(config).run()
        payload = _result_payload(result)
        print(f"final test error: {result.final_test_error:.2%} "
              f"(virtual {result.total_virtual_time:.1f}s, "
              f"mean staleness {result.staleness['mean']:.1f})")
        if args.json:
            with open(args.json, "w") as fh:
                json.dump(payload, fh, indent=2)
            print(f"wrote {args.json}")
        return 0

    # compare
    payloads = []
    for algorithm in ("sgd", "ssgd", "asgd", "dc-asgd", "lc-asgd"):
        config = _make_config(args, algorithm)
        print(f"running {algorithm:8s} (M={config.num_workers})...", flush=True)
        result = DistributedTrainer(config).run()
        payloads.append(_result_payload(result))
        print(f"  -> test error {result.final_test_error:.2%}")
    best = min(payloads, key=lambda p: p["final_test_error"])
    print(f"\nbest: {best['algorithm']} at {best['final_test_error']:.2%}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payloads, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
