"""Command-line interface: ``python -m repro run|compare|info``.

A thin veneer over :func:`repro.runtime.run_experiment` for users who want
the headline experiments without writing Python.  ``--backend`` selects the
execution runtime: ``sim`` (deterministic virtual-time event loop, the
default) or ``thread`` (real concurrent parameter server; wall-clock time
and staleness are genuine).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core import TrainingConfig
from repro.core.config import ALGORITHMS
from repro.runtime import available_backends, run_experiment
from repro.version import __version__


def _result_payload(result) -> dict:
    return {
        "algorithm": result.algorithm,
        "num_workers": result.num_workers,
        "bn_mode": result.bn_mode,
        "backend": result.backend,
        "seed": result.seed,
        "final_test_error": result.final_test_error,
        "final_train_error": result.final_train_error,
        "best_test_error": result.best_test_error,
        "total_updates": result.total_updates,
        "total_virtual_time": result.total_virtual_time,
        "wall_time": result.wall_time,
        "staleness": result.staleness,
        # Tables 2-3: per-iteration overhead (ms) of the server-side predictors
        "timers": dict(result.timers),
        "curve": [
            {
                "epoch": p.epoch,
                "time": p.time,
                "train_error": p.train_error,
                "test_error": p.test_error,
            }
            for p in result.curve
        ],
    }


def _make_config(args: argparse.Namespace, algorithm: str) -> TrainingConfig:
    factory = {
        "cifar": TrainingConfig.small_cifar,
        "imagenet": TrainingConfig.small_imagenet,
    }[args.dataset]
    overrides = {}
    if args.epochs is not None:
        overrides["epochs"] = args.epochs
        overrides["lr_milestones"] = (args.epochs // 2, (3 * args.epochs) // 4)
    return factory(
        algorithm=algorithm,
        num_workers=1 if algorithm == "sgd" else args.workers,
        seed=args.seed,
        **overrides,
    )


def _backend_options(args: argparse.Namespace) -> dict:
    if args.backend != "thread":
        return {}
    return {"deterministic": args.deterministic}


def _print_summary(result) -> None:
    clock = (
        f"real {result.wall_time:.1f}s wall-clock"
        if result.backend == "thread"
        else f"virtual {result.total_virtual_time:.1f}s"
    )
    print(f"final test error: {result.final_test_error:.2%} "
          f"({clock}, mean staleness {result.staleness['mean']:.1f})")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=8, help="worker count")
    parser.add_argument("--dataset", choices=["cifar", "imagenet"], default="cifar")
    parser.add_argument("--epochs", type=int, default=None, help="override preset epochs")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--backend",
        choices=list(available_backends()),
        default="sim",
        help="execution runtime: sim (virtual time) or thread (real concurrency)",
    )
    parser.add_argument(
        "--deterministic",
        action="store_true",
        help="thread backend only: round-robin scheduling, reproducible runs",
    )
    parser.add_argument("--json", metavar="PATH", default=None, help="write results as JSON")


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="LC-ASGD reproduction (ICPP 2020)"
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="train once with one algorithm")
    run_p.add_argument("--algorithm", choices=list(ALGORITHMS), default="lc-asgd")
    _add_common(run_p)

    cmp_p = sub.add_parser("compare", help="train every algorithm and summarize")
    _add_common(cmp_p)

    info_p = sub.add_parser("info", help="describe the resolved configuration")
    info_p.add_argument("--algorithm", choices=list(ALGORITHMS), default="lc-asgd")
    _add_common(info_p)

    args = parser.parse_args(argv)

    if args.command == "info":
        config = _make_config(args, args.algorithm)
        print(json.dumps({k: str(v) for k, v in vars(config).items()}, indent=2))
        return 0

    if args.command == "run":
        config = _make_config(args, args.algorithm)
        print(f"running {config.algorithm} on {config.num_workers} worker(s) "
              f"[{args.backend} backend]...", flush=True)
        result = run_experiment(config, backend=args.backend, **_backend_options(args))
        payload = _result_payload(result)
        _print_summary(result)
        if args.json:
            with open(args.json, "w") as fh:
                json.dump(payload, fh, indent=2)
            print(f"wrote {args.json}")
        return 0

    # compare
    payloads = []
    for algorithm in ALGORITHMS:
        config = _make_config(args, algorithm)
        print(f"running {algorithm:8s} (M={config.num_workers}) "
              f"[{args.backend} backend]...", flush=True)
        result = run_experiment(config, backend=args.backend, **_backend_options(args))
        payloads.append(_result_payload(result))
        print(f"  -> test error {result.final_test_error:.2%}")
    best = min(payloads, key=lambda p: p["final_test_error"])
    print(f"\nbest: {best['algorithm']} at {best['final_test_error']:.2%}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payloads, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
