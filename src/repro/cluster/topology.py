"""Peer topologies for decentralized (serverless) execution.

A :class:`TopologyModel` describes *who may average with whom* in the
AD-PSGD gossip runtime: the undirected peer graph over ``N`` workers, a
per-step random neighbor choice, and a per-round deterministic matching
(the schedule the bit-reproducible sim mode runs).  Each edge carries its
own :class:`~repro.cluster.network.LinkModel` — the same latency/bandwidth/
jitter model the parameter-server backends charge per worker-server link —
with heterogeneity drawn once per edge, so some peer links are persistently
better than others.

Three graphs are provided, mirroring the AD-PSGD paper's communication
patterns:

* ``ring`` — worker ``i`` talks to ``i±1 (mod N)``; degree 2, the sparsest
  connected option and the paper's headline scaling configuration.
* ``bipartite`` — even-id workers pair with odd-id workers (the paper's
  "odd-even" partition); pairing two halves keeps every matching
  conflict-free, which is what makes the pairwise averaging trivially
  deadlock-free under round scheduling.
* ``complete`` — everyone may gossip with everyone; densest communication,
  fastest mixing, the baseline the sparse graphs are measured against.

Topologies register by name (like timing models and backends) so configs
select one with a string::

    from repro.cluster.topology import make_topology
    topo = make_topology("ring", num_workers=8, seed=7)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.network import LinkModel
from repro.utils.registry import Registry
from repro.utils.rng import SeedLike, as_generator


class TopologyModel:
    """Undirected peer graph + per-edge links over ``num_workers`` nodes.

    Subclasses define :meth:`neighbors`.  Edges are canonicalized as
    ``(min, max)`` pairs; every edge gets an independent jitter stream and
    a once-drawn heterogeneity factor on its base latency, exactly like
    :class:`~repro.cluster.network.NetworkModel` does per worker-server
    link.  ``num_workers == 1`` degenerates to an edgeless graph (pure
    local SGD), which the gossip runtime accepts.
    """

    name = "abstract"

    def __init__(
        self,
        num_workers: int,
        link: Optional[LinkModel] = None,
        heterogeneity: float = 0.0,
        seed: SeedLike = 0,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if not 0.0 <= heterogeneity < 1.0:
            raise ValueError("heterogeneity must be in [0, 1)")
        self.num_workers = int(num_workers)
        base = link or LinkModel()
        setup_rng = as_generator(seed, "topology-setup")
        self._links: Dict[Tuple[int, int], LinkModel] = {}
        self._rngs: Dict[Tuple[int, int], np.random.Generator] = {}
        for edge in self.edges():
            factor = 1.0
            if heterogeneity > 0:
                factor = float(setup_rng.uniform(1 - heterogeneity, 1 + heterogeneity))
            self._links[edge] = LinkModel(
                base_latency=base.base_latency * factor,
                bandwidth=base.bandwidth,
                jitter_sigma=base.jitter_sigma,
            )
            self._rngs[edge] = as_generator(seed, f"topology-edge-{edge[0]}-{edge[1]}")

    # ------------------------------------------------------------------ #
    # graph structure
    # ------------------------------------------------------------------ #
    def neighbors(self, worker: int) -> Tuple[int, ...]:
        """Peers ``worker`` may average with, ascending, self excluded."""
        raise NotImplementedError

    def edges(self) -> List[Tuple[int, int]]:
        """Every undirected edge as a canonical ``(lo, hi)`` pair, sorted."""
        seen = set()
        for i in range(self.num_workers):
            for j in self.neighbors(i):
                self._check_worker(j)
                if j == i:
                    raise ValueError(f"worker {i} lists itself as a neighbor")
                seen.add((min(i, j), max(i, j)))
        return sorted(seen)

    def degree(self, worker: int) -> int:
        """Number of peers of ``worker``."""
        return len(self.neighbors(worker))

    # ------------------------------------------------------------------ #
    # gossip scheduling
    # ------------------------------------------------------------------ #
    def partner(self, worker: int, rng: np.random.Generator) -> Optional[int]:
        """Sample the per-step random neighbor (AD-PSGD's choice); None when
        the worker is isolated (``N == 1``)."""
        peers = self.neighbors(worker)
        if not peers:
            return None
        return int(peers[int(rng.integers(len(peers)))])

    def round_pairs(
        self, round_index: int, rng: np.random.Generator
    ) -> List[Tuple[int, int]]:
        """A conflict-free matching on the graph for one gossip round.

        This is the deterministic schedule the sim-mode gossip runtime
        executes: a maximal greedy matching built from a seeded random
        visit order, so (a) no worker appears in two pairs of one round —
        pairwise averaging can be applied in any order — and (b) the same
        seed reproduces the same matching sequence bit-for-bit.  Workers
        the greedy pass leaves unmatched simply skip averaging that round
        (odd ``N`` always leaves at least one out).
        """
        order = rng.permutation(self.num_workers)
        taken = set()
        pairs: List[Tuple[int, int]] = []
        for i in order:
            i = int(i)
            if i in taken:
                continue
            candidates = [j for j in self.neighbors(i) if j not in taken]
            if not candidates:
                continue
            j = int(candidates[int(rng.integers(len(candidates)))])
            taken.add(i)
            taken.add(j)
            pairs.append((min(i, j), max(i, j)))
        return sorted(pairs)

    # ------------------------------------------------------------------ #
    # per-edge links
    # ------------------------------------------------------------------ #
    def link(self, a: int, b: int) -> LinkModel:
        """The link model of edge ``{a, b}``; non-edges raise."""
        edge = (min(a, b), max(a, b))
        if edge not in self._links:
            raise ValueError(f"workers {a} and {b} are not neighbors in {self.name!r}")
        return self._links[edge]

    def transfer_time(self, a: int, b: int, nbytes: float) -> float:
        """Sample the virtual seconds to move ``nbytes`` over edge ``{a, b}``."""
        edge = (min(a, b), max(a, b))
        if edge not in self._links:
            raise ValueError(f"workers {a} and {b} are not neighbors in {self.name!r}")
        return self._links[edge].transfer_time(nbytes, self._rngs[edge])

    def _check_worker(self, worker: int) -> None:
        if not 0 <= worker < self.num_workers:
            raise ValueError(f"worker {worker} out of range [0, {self.num_workers})")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_workers={self.num_workers})"


class RingTopology(TopologyModel):
    """Workers on a cycle: ``i`` talks to ``i-1`` and ``i+1`` (mod N)."""

    name = "ring"

    def neighbors(self, worker: int) -> Tuple[int, ...]:
        self._check_worker(worker)
        n = self.num_workers
        if n == 1:
            return ()
        if n == 2:
            return (1 - worker,)
        return tuple(sorted({(worker - 1) % n, (worker + 1) % n}))


class BipartiteTopology(TopologyModel):
    """The odd-even partition: even-id workers peer with every odd-id one.

    With one side empty (``N == 1``) the graph is edgeless.  Because every
    edge crosses the partition, any matching is automatically conflict-free
    — the structure the AD-PSGD paper uses to rule out averaging deadlocks.
    """

    name = "bipartite"

    def neighbors(self, worker: int) -> Tuple[int, ...]:
        self._check_worker(worker)
        side = worker % 2
        return tuple(j for j in range(self.num_workers) if j % 2 != side)


class CompleteTopology(TopologyModel):
    """Every worker peers with every other (densest gossip graph)."""

    name = "complete"

    def neighbors(self, worker: int) -> Tuple[int, ...]:
        self._check_worker(worker)
        return tuple(j for j in range(self.num_workers) if j != worker)


TOPOLOGIES: Registry = Registry("topology")


def register_topology(name: str, factory, override: bool = False) -> None:
    """Register a topology factory under ``name`` (duplicates raise)."""
    TOPOLOGIES.register(name, factory, override=override)


def available_topologies() -> Tuple[str, ...]:
    """Registered topology names, sorted."""
    return TOPOLOGIES.names()


def make_topology(
    name: str,
    num_workers: int,
    link: Optional[LinkModel] = None,
    heterogeneity: float = 0.0,
    seed: SeedLike = 0,
) -> TopologyModel:
    """Build the topology registered under ``name`` for ``num_workers``."""
    return TOPOLOGIES.get(name)(
        num_workers, link=link, heterogeneity=heterogeneity, seed=seed
    )


register_topology("ring", RingTopology)
register_topology("bipartite", BipartiteTopology)
register_topology("complete", CompleteTopology)
