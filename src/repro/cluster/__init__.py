"""Discrete-event simulation of a parameter-server cluster.

Substitutes the paper's physical testbed (one NVIDIA V100 per worker node,
parameter server with two extra GPUs, real Ethernet) with a deterministic
virtual-time simulator.  What the algorithms under study actually consume
is the *ordering* of compute/communication events — that ordering produces
the gradient staleness ``k_m`` that DC-ASGD and LC-ASGD compensate — and the
simulator reproduces it with controllable heterogeneity, jitter and
straggler injection (see DESIGN.md substitution table).
"""

from repro.cluster.event import Event, EventQueue
from repro.cluster.network import LinkModel, NetworkModel
from repro.cluster.node import ComputeModel, StragglerModel
from repro.cluster.simulator import Simulator
from repro.cluster.topology import (
    BipartiteTopology,
    CompleteTopology,
    RingTopology,
    TopologyModel,
    available_topologies,
    make_topology,
    register_topology,
)
from repro.cluster.trace import ClusterTrace, TraceEvent

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "LinkModel",
    "NetworkModel",
    "ComputeModel",
    "StragglerModel",
    "ClusterTrace",
    "TraceEvent",
    "TopologyModel",
    "RingTopology",
    "BipartiteTopology",
    "CompleteTopology",
    "make_topology",
    "register_topology",
    "available_topologies",
]
