"""Worker compute-time models with heterogeneity and straggler injection."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_probability


@dataclass
class StragglerModel:
    """Occasional multiplicative slow-downs.

    With probability ``probability`` per compute call, the duration is
    multiplied by ``slowdown``.  This models the "varied computing power or
    abnormal communication latency" stragglers the paper cites as SSGD's
    weakness, and gives the step predictor volatile-delay conditions
    (Section 1: "delay ... is usually high and volatile").
    """

    probability: float = 0.0
    slowdown: float = 4.0

    def __post_init__(self) -> None:
        check_probability("probability", self.probability)
        if self.slowdown < 1.0:
            raise ValueError("slowdown must be >= 1.0")

    def factor(self, rng: np.random.Generator) -> float:
        """Sample the multiplicative slow-down for one compute call."""
        if self.probability > 0 and rng.random() < self.probability:
            return self.slowdown
        return 1.0


class ComputeModel:
    """Per-worker batch compute durations.

    Worker ``i`` has a persistent speed factor drawn from ``U[1-h, 1+h]``
    (``h = heterogeneity``) plus per-call lognormal jitter, so finishing
    order is "generally regular" with occasional variance — exactly the
    structure visible in the paper's Figure 8.
    """

    def __init__(
        self,
        num_workers: int,
        mean_batch_time: float = 0.03,
        heterogeneity: float = 0.15,
        jitter_sigma: float = 0.05,
        straggler: Optional[StragglerModel] = None,
        seed: SeedLike = 0,
    ) -> None:
        check_positive("num_workers", num_workers)
        check_positive("mean_batch_time", mean_batch_time)
        if not 0.0 <= heterogeneity < 1.0:
            raise ValueError("heterogeneity must be in [0, 1)")
        check_positive("jitter_sigma", jitter_sigma, strict=False)
        self.num_workers = int(num_workers)
        self.mean_batch_time = float(mean_batch_time)
        self.jitter_sigma = float(jitter_sigma)
        self.straggler = straggler or StragglerModel()
        setup_rng = as_generator(seed, "compute-setup")
        self._factors: Dict[int, float] = {}
        self._rngs: Dict[int, np.random.Generator] = {}
        for worker in range(self.num_workers):
            factor = 1.0
            if heterogeneity > 0:
                factor = float(setup_rng.uniform(1 - heterogeneity, 1 + heterogeneity))
            self._factors[worker] = factor
            self._rngs[worker] = as_generator(seed, f"compute-worker-{worker}")

    def speed_factor(self, worker: int) -> float:
        """Persistent relative cost multiplier of ``worker``."""
        self._check_worker(worker)
        return self._factors[worker]

    def duration(self, worker: int, fraction: float = 1.0) -> float:
        """Sample a compute duration.

        ``fraction`` scales the batch time (e.g. 1/3 for the forward pass,
        2/3 for backward) so split phases sum to one batch on average.
        """
        self._check_worker(worker)
        if fraction <= 0:
            raise ValueError("fraction must be positive")
        rng = self._rngs[worker]
        jitter = 1.0
        if self.jitter_sigma > 0:
            jitter = float(rng.lognormal(mean=0.0, sigma=self.jitter_sigma))
        return (
            self.mean_batch_time
            * fraction
            * self._factors[worker]
            * jitter
            * self.straggler.factor(rng)
        )

    def _check_worker(self, worker: int) -> None:
        if not 0 <= worker < self.num_workers:
            raise ValueError(f"worker {worker} out of range [0, {self.num_workers})")
