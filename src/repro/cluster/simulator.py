"""The virtual-time event loop.

Real computation (forward/backward passes, predictor updates) executes
*inside* event callbacks, sequentially, while virtual timestamps decide the
interleaving.  This gives bit-reproducible runs: the staleness any gradient
experiences is exactly the number of server updates whose events fall
between its pull and its landing.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cluster.event import EventQueue


class Simulator:
    """Discrete-event executor with a monotonically advancing clock."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._processed = 0
        self._stopped = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, delay: float, action: Callable[[], None], label: str = "") -> None:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self._queue.push(self._now + delay, action, label=label)

    def schedule_at(self, time: float, action: Callable[[], None], label: str = "") -> None:
        """Schedule ``action`` at absolute virtual ``time`` (>= now)."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        self._queue.push(time, action, label=label)

    def stop(self) -> None:
        """Request the run loop to exit after the current event."""
        self._stopped = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Process events in timestamp order.

        Parameters
        ----------
        until:
            Stop once the clock would pass this virtual time.
        max_events:
            Safety valve against runaway loops.
        stop_when:
            Predicate checked after every event; return True to stop.
        """
        self._stopped = False
        executed = 0
        while self._queue and not self._stopped:
            next_time = self._queue.peek_time()
            if until is not None and next_time is not None and next_time > until:
                self._now = until
                break
            event = self._queue.pop()
            self._now = event.time
            event.action()
            self._processed += 1
            executed += 1
            if stop_when is not None and stop_when():
                break
            if max_events is not None and executed >= max_events:
                raise RuntimeError(
                    f"simulator exceeded max_events={max_events}; "
                    "likely a scheduling loop"
                )
