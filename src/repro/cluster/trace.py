"""Structured trace of a distributed-training run.

The trace is what the evaluation reads back: staleness distributions
(Figures 2-3 context), worker finishing order (Figure 8), and virtual-time
series (Figures 4 and 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass(frozen=True)
class TraceEvent:
    """One recorded cluster event."""

    time: float
    kind: str  # "pull", "state", "compensation", "gradient", "update", "barrier"
    worker: int
    version: int = -1  # server model version at event time
    staleness: int = -1  # gradient events: server updates since the pull
    value: float = 0.0  # kind-specific payload (loss, k, duration, ...)


class ClusterTrace:
    """Append-only event log with summary queries."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(
        self,
        time: float,
        kind: str,
        worker: int,
        version: int = -1,
        staleness: int = -1,
        value: float = 0.0,
    ) -> None:
        """Append one event."""
        self.events.append(
            TraceEvent(
                time=float(time),
                kind=kind,
                worker=int(worker),
                version=int(version),
                staleness=int(staleness),
                value=float(value),
            )
        )

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All events of a given kind, in time order."""
        return [e for e in self.events if e.kind == kind]

    def staleness_values(self) -> np.ndarray:
        """Staleness of every applied gradient."""
        return np.array(
            [e.staleness for e in self.events if e.kind == "update" and e.staleness >= 0],
            dtype=np.int64,
        )

    def staleness_stats(self) -> Dict[str, float]:
        """Mean/median/max staleness over all applied gradients."""
        values = self.staleness_values()
        if values.size == 0:
            return {"mean": 0.0, "median": 0.0, "max": 0.0, "count": 0.0}
        return {
            "mean": float(values.mean()),
            "median": float(np.median(values)),
            "max": float(values.max()),
            "count": float(values.size),
        }

    def finishing_order(self) -> List[int]:
        """Worker ids in the order their gradients landed (Figure 8's x-axis)."""
        return [e.worker for e in self.events if e.kind == "update"]

    def updates_per_worker(self) -> Dict[int, int]:
        """Number of applied gradients per worker."""
        counts: Dict[int, int] = {}
        for e in self.events:
            if e.kind == "update":
                counts[e.worker] = counts.get(e.worker, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.events)
