"""Event primitives for the discrete-event simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(frozen=True)
class Event:
    """A scheduled callback in virtual time.

    Ordering is ``(time, seq)``: ties in virtual time are broken by
    insertion order, which keeps runs deterministic regardless of float
    coincidences.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class EventQueue:
    """Min-heap of :class:`Event` ordered by (time, insertion seq)."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at virtual ``time``; returns the event."""
        if time < 0:
            raise ValueError(f"event time must be >= 0, got {time}")
        event = Event(time=float(time), seq=next(self._counter), action=action, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        """Virtual time of the earliest event, or ``None`` when empty."""
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
