"""Network link models: latency + bandwidth + jitter per worker-server pair."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive


@dataclass
class LinkModel:
    """One direction of a worker <-> server link.

    Transfer time for ``nbytes`` is::

        base_latency * jitter + nbytes / bandwidth

    where ``jitter`` is lognormal with scale ``jitter_sigma`` (0 disables).
    """

    base_latency: float = 1e-3
    bandwidth: float = 1e9  # bytes / second
    jitter_sigma: float = 0.0

    def __post_init__(self) -> None:
        check_positive("base_latency", self.base_latency, strict=False)
        check_positive("bandwidth", self.bandwidth)
        check_positive("jitter_sigma", self.jitter_sigma, strict=False)

    def transfer_time(self, nbytes: float, rng: np.random.Generator) -> float:
        """Sample the virtual seconds needed to move ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        jitter = 1.0
        if self.jitter_sigma > 0:
            jitter = float(rng.lognormal(mean=0.0, sigma=self.jitter_sigma))
        return self.base_latency * jitter + nbytes / self.bandwidth


class NetworkModel:
    """Per-worker link pairs with independent jitter streams.

    Heterogeneity: worker ``i`` gets its base latency scaled by a factor
    drawn once from ``U[1-h, 1+h]`` (``h = heterogeneity``), so some workers
    are persistently better connected — which is what makes the step
    predictor's job non-trivial but learnable (Figure 8).
    """

    def __init__(
        self,
        num_workers: int,
        link: Optional[LinkModel] = None,
        heterogeneity: float = 0.0,
        seed: SeedLike = 0,
    ) -> None:
        check_positive("num_workers", num_workers)
        if not 0.0 <= heterogeneity < 1.0:
            raise ValueError("heterogeneity must be in [0, 1)")
        self.num_workers = int(num_workers)
        base = link or LinkModel()
        setup_rng = as_generator(seed, "network-setup")
        self._rngs: Dict[int, np.random.Generator] = {}
        self._links: Dict[int, LinkModel] = {}
        for worker in range(self.num_workers):
            factor = 1.0
            if heterogeneity > 0:
                factor = float(setup_rng.uniform(1 - heterogeneity, 1 + heterogeneity))
            self._links[worker] = LinkModel(
                base_latency=base.base_latency * factor,
                bandwidth=base.bandwidth,
                jitter_sigma=base.jitter_sigma,
            )
            self._rngs[worker] = as_generator(seed, f"network-worker-{worker}")

    def link(self, worker: int) -> LinkModel:
        """The (scaled) link model of ``worker``."""
        self._check_worker(worker)
        return self._links[worker]

    def transfer_time(self, worker: int, nbytes: float) -> float:
        """Sample a transfer duration on ``worker``'s link."""
        self._check_worker(worker)
        return self._links[worker].transfer_time(nbytes, self._rngs[worker])

    def _check_worker(self, worker: int) -> None:
        if not 0 <= worker < self.num_workers:
            raise ValueError(f"worker {worker} out of range [0, {self.num_workers})")
