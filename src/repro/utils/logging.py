"""Lightweight logging wrapper (stdlib logging with a shared namespace)."""

from __future__ import annotations

import logging
import sys

_ROOT_NAME = "repro"
_configured = False


def _configure() -> None:
    global _configured
    if _configured:
        return
    root = logging.getLogger(_ROOT_NAME)
    if not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s", "%H:%M:%S")
        )
        root.addHandler(handler)
    root.setLevel(logging.WARNING)
    _configured = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the shared ``repro`` namespace."""
    _configure()
    if not name.startswith(_ROOT_NAME):
        name = f"{_ROOT_NAME}.{name}"
    return logging.getLogger(name)


def set_log_level(level: str) -> None:
    """Set the package-wide log level (e.g. ``"INFO"``, ``"DEBUG"``)."""
    _configure()
    logging.getLogger(_ROOT_NAME).setLevel(level.upper())
