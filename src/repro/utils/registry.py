"""A small name-keyed factory registry, shared by every pluggable layer.

The repo grows by registration, not by editing ``if/elif`` chains: execution
backends (:mod:`repro.runtime.backends`), datasets
(:mod:`repro.data.registry`) and models (:mod:`repro.nn.registry`) all keep
a :class:`Registry` so new components plug in from user code::

    from repro.data.registry import register_dataset
    register_dataset("my-task", build_my_task)

Duplicate names raise by design — a silent overwrite of, say, ``"cifar"``
would corrupt every content-addressed result key that names it.  Pass
``override=True`` to replace an entry deliberately (tests, experiments).
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Tuple, TypeVar

T = TypeVar("T")


class Registry(Generic[T]):
    """Ordered name -> factory mapping with guarded registration."""

    def __init__(self, kind: str) -> None:
        #: what the entries are, for error messages ("backend", "dataset", ...)
        self.kind = kind
        self._entries: Dict[str, T] = {}

    def register(self, name: str, factory: T, override: bool = False) -> T:
        """File ``factory`` under ``name``; raise on duplicates unless ``override``."""
        if not name:
            raise ValueError(f"{self.kind} name must be non-empty")
        if name in self._entries and not override:
            raise ValueError(
                f"{self.kind} {name!r} is already registered; "
                f"pass override=True to replace it"
            )
        self._entries[name] = factory
        return factory

    def unregister(self, name: str) -> None:
        """Remove ``name`` (primarily for test cleanup); missing names raise."""
        if name not in self._entries:
            raise ValueError(f"{self.kind} {name!r} is not registered")
        del self._entries[name]

    def get(self, name: str) -> T:
        """The factory registered under ``name``; error lists what exists."""
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r}; available: {', '.join(self.names())}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        """Registered names, sorted."""
        return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)
