"""Argument-validation helpers producing consistent error messages."""

from __future__ import annotations

from typing import Iterable, Type


def check_positive(name: str, value, strict: bool = True) -> None:
    """Raise ``ValueError`` unless ``value`` is positive (or >= 0)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_probability(name: str, value) -> None:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_in(name: str, value, allowed: Iterable) -> None:
    """Raise ``ValueError`` unless ``value`` is one of ``allowed``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed}, got {value!r}")


def check_type(name: str, value, expected: Type) -> None:
    """Raise ``TypeError`` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )
