"""Shared utilities: RNG management, timers, logging, serialization."""

from repro.utils.logging import get_logger, set_log_level
from repro.utils.rng import RngTree, as_generator
from repro.utils.serialization import (
    flatten_arrays,
    load_checkpoint,
    save_checkpoint,
    unflatten_arrays,
)
from repro.utils.timer import Timer, WallTimer
from repro.utils.validation import (
    check_in,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "RngTree",
    "as_generator",
    "Timer",
    "WallTimer",
    "get_logger",
    "set_log_level",
    "flatten_arrays",
    "unflatten_arrays",
    "save_checkpoint",
    "load_checkpoint",
    "check_positive",
    "check_probability",
    "check_in",
    "check_type",
]
