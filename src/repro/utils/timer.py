"""Small timing helpers used by the overhead experiments (Tables 2-3)."""

from __future__ import annotations

import threading
import time
from typing import Dict, List

from repro.analysis.lockorder import make_lock


class WallTimer:
    """Context manager measuring wall-clock seconds via ``perf_counter``."""

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float = 0.0

    def __enter__(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


#: per-section sample retention cap — totals/counts stay exact forever,
#: only the raw sample list is bounded (a long run must not grow an
#: unbounded float list per section; the distribution's head is enough
#: for the overhead tables, which report totals and means anyway)
MAX_SAMPLES_PER_SECTION = 4096


class Timer:
    """Accumulating named timer, used to attribute per-iteration cost.

    ``total``/``count``/``mean`` are exact over the whole run; raw samples
    are retained only up to ``max_samples`` per section (deterministic
    prefix, not a reservoir — reservoir sampling would need an RNG, and
    timers live inside otherwise-deterministic runs).

    >>> t = Timer()
    >>> with t.section("loss-pred"):
    ...     pass
    >>> t.total("loss-pred") >= 0.0
    True
    """

    def __init__(self, max_samples: int = MAX_SAMPLES_PER_SECTION) -> None:
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.max_samples = int(max_samples)
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._samples: Dict[str, List[float]] = {}
        # the thread runtime records sections from several threads at once
        self._lock = make_lock("Timer._lock")

    class _Section:
        def __init__(self, timer: "Timer", name: str) -> None:
            self._timer = timer
            self._name = name
            self._start = 0.0

        def __enter__(self) -> "Timer._Section":
            self._start = time.perf_counter()
            return self

        def __exit__(self, *exc) -> None:
            self._timer.add(self._name, time.perf_counter() - self._start)

    def section(self, name: str) -> "Timer._Section":
        """Return a context manager accumulating into ``name``."""
        return Timer._Section(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Record ``seconds`` against ``name`` (safe from any thread)."""
        with self._lock:
            self._totals[name] = self._totals.get(name, 0.0) + seconds
            self._counts[name] = self._counts.get(name, 0) + 1
            samples = self._samples.setdefault(name, [])
            if len(samples) < self.max_samples:
                samples.append(seconds)

    def samples(self, name: str) -> List[float]:
        """The retained samples for ``name`` (capped at ``max_samples``)."""
        with self._lock:
            return list(self._samples.get(name, ()))

    def total(self, name: str) -> float:
        """Total seconds accumulated for ``name`` (0.0 if never recorded)."""
        return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        """Number of samples recorded for ``name``."""
        return self._counts.get(name, 0)

    def mean(self, name: str) -> float:
        """Mean seconds per sample for ``name`` (0.0 if never recorded)."""
        n = self._counts.get(name, 0)
        return self._totals.get(name, 0.0) / n if n else 0.0

    def names(self) -> List[str]:
        """All section names recorded so far."""
        return sorted(self._totals)

    def totals(self) -> Dict[str, Dict[str, float]]:
        """Every section's exact aggregate: ``{name: {total_s, count}}``.

        This is what ``build_result`` folds into a trace's meta line, so
        per-phase wall cost appears once (trace) instead of twice
        (trace + timer).
        """
        with self._lock:
            return {
                name: {"total_s": self._totals[name], "count": float(self._counts[name])}
                for name in sorted(self._totals)
            }

    def reset(self) -> None:
        """Drop all recorded samples."""
        self._totals.clear()
        self._counts.clear()
        self._samples.clear()
