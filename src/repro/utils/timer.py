"""Small timing helpers used by the overhead experiments (Tables 2-3)."""

from __future__ import annotations

import threading
import time
from typing import Dict, List

from repro.analysis.lockorder import make_lock


class WallTimer:
    """Context manager measuring wall-clock seconds via ``perf_counter``."""

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float = 0.0

    def __enter__(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


class Timer:
    """Accumulating named timer, used to attribute per-iteration cost.

    >>> t = Timer()
    >>> with t.section("loss-pred"):
    ...     pass
    >>> t.total("loss-pred") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._samples: Dict[str, List[float]] = {}
        # the thread runtime records sections from several threads at once
        self._lock = make_lock("Timer._lock")

    class _Section:
        def __init__(self, timer: "Timer", name: str) -> None:
            self._timer = timer
            self._name = name
            self._start = 0.0

        def __enter__(self) -> "Timer._Section":
            self._start = time.perf_counter()
            return self

        def __exit__(self, *exc) -> None:
            self._timer.add(self._name, time.perf_counter() - self._start)

    def section(self, name: str) -> "Timer._Section":
        """Return a context manager accumulating into ``name``."""
        return Timer._Section(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Record ``seconds`` against ``name`` (safe from any thread)."""
        with self._lock:
            self._totals[name] = self._totals.get(name, 0.0) + seconds
            self._counts[name] = self._counts.get(name, 0) + 1
            self._samples.setdefault(name, []).append(seconds)

    def total(self, name: str) -> float:
        """Total seconds accumulated for ``name`` (0.0 if never recorded)."""
        return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        """Number of samples recorded for ``name``."""
        return self._counts.get(name, 0)

    def mean(self, name: str) -> float:
        """Mean seconds per sample for ``name`` (0.0 if never recorded)."""
        n = self._counts.get(name, 0)
        return self._totals.get(name, 0.0) / n if n else 0.0

    def names(self) -> List[str]:
        """All section names recorded so far."""
        return sorted(self._totals)

    def reset(self) -> None:
        """Drop all recorded samples."""
        self._totals.clear()
        self._counts.clear()
        self._samples.clear()
