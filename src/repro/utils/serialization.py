"""Parameter-vector (de)serialization and checkpointing.

The parameter server stores the global model as one flat ``float64`` vector;
workers reconstruct structured arrays from it.  ``flatten/unflatten`` are
exact inverses — this is property-tested in ``tests/utils``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence, Tuple

import numpy as np

ShapeSpec = List[Tuple[Tuple[int, ...], np.dtype]]


def flatten_arrays(arrays: Sequence[np.ndarray]) -> Tuple[np.ndarray, ShapeSpec]:
    """Concatenate ``arrays`` into one 1-D float64 vector plus a shape spec.

    Returns
    -------
    flat:
        1-D vector of total size ``sum(a.size)``.
    spec:
        ``[(shape, dtype), ...]`` needed by :func:`unflatten_arrays`.
    """
    spec: ShapeSpec = [(tuple(a.shape), a.dtype) for a in arrays]
    if not arrays:
        return np.zeros(0, dtype=np.float64), spec
    flat = np.concatenate([np.asarray(a, dtype=np.float64).ravel() for a in arrays])
    return flat, spec


def unflatten_arrays(flat: np.ndarray, spec: ShapeSpec) -> List[np.ndarray]:
    """Inverse of :func:`flatten_arrays`.

    Raises
    ------
    ValueError
        if ``flat`` does not hold exactly the number of elements the spec
        describes.
    """
    flat = np.asarray(flat).ravel()
    total = sum(int(np.prod(shape)) for shape, _ in spec)
    if flat.size != total:
        raise ValueError(f"flat vector has {flat.size} elements, spec expects {total}")
    out: List[np.ndarray] = []
    offset = 0
    for shape, dtype in spec:
        size = int(np.prod(shape))
        out.append(flat[offset : offset + size].reshape(shape).astype(dtype, copy=True))
        offset += size
    return out


def save_checkpoint(path: str, tensors: Dict[str, np.ndarray], **metadata) -> None:
    """Save named arrays plus scalar metadata to an ``.npz`` file."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    meta = {f"__meta_{k}": np.asarray(v) for k, v in metadata.items()}
    np.savez(path, **tensors, **meta)


def load_checkpoint(path: str) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
    """Load a checkpoint written by :func:`save_checkpoint`.

    Returns ``(tensors, metadata)``.
    """
    with np.load(path, allow_pickle=False) as archive:
        tensors: Dict[str, np.ndarray] = {}
        metadata: Dict[str, object] = {}
        for key in archive.files:
            if key.startswith("__meta_"):
                value = archive[key]
                metadata[key[len("__meta_") :]] = value.item() if value.ndim == 0 else value
            else:
                tensors[key] = archive[key]
    return tensors, metadata
