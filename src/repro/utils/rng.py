"""Deterministic random-number management.

Every stochastic component in the repository (weight init, data synthesis,
batch sampling, simulated compute/communication jitter) draws from a
:class:`RngTree` so that a single experiment seed reproduces the entire run
bit-for-bit.  Children are derived with :meth:`numpy.random.SeedSequence.spawn`
semantics, keyed by *name* rather than call order, so adding a new consumer
never perturbs existing streams.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, "RngTree", None]

#: the seed behind :func:`fallback_rng` — arbitrary but stable, so code
#: paths that never received an explicit seed are still reproducible
FALLBACK_SEED = 0x5EED


def fallback_rng() -> np.random.Generator:
    """A fresh, deterministically-seeded Generator for optional-``rng`` APIs.

    Layers and tensor factories accept ``rng=None`` for convenience; the
    fallback used to be an *unseeded* ``default_rng()``, which made "I
    forgot to pass an rng" silently nondeterministic.  Every such call
    now starts from :data:`FALLBACK_SEED` instead.  Each call returns an
    independent Generator with the same initial state — two Dropout
    layers built without an rng will draw identical streams, which is
    the price of determinism by default; pass explicit generators (e.g.
    from an :class:`RngTree`) where streams must differ.
    """
    return np.random.default_rng(FALLBACK_SEED)


def _hash_name(name: str) -> int:
    """Map a child name to a stable 64-bit integer."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngTree:
    """A named tree of independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Root seed of the tree.  Two trees built from the same seed produce
        identical streams for identical child names.

    Examples
    --------
    >>> tree = RngTree(1234)
    >>> init_rng = tree.generator("weight-init")
    >>> sampler = tree.child("worker-3").generator("batches")
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)
        self._children: Dict[str, "RngTree"] = {}
        self._generators: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Root seed this tree was built from."""
        return self._seed

    def child(self, name: str) -> "RngTree":
        """Return (and memoize) the child tree for ``name``."""
        if name not in self._children:
            mixed = (self._seed * 0x9E3779B97F4A7C15 + _hash_name(name)) % (2**63)
            self._children[name] = RngTree(mixed)
        return self._children[name]

    def generator(self, name: str = "default") -> np.random.Generator:
        """Return (and memoize) a Generator keyed by ``name``."""
        if name not in self._generators:
            mixed = (self._seed * 0xC2B2AE3D27D4EB4F + _hash_name(name)) % (2**63)
            self._generators[name] = np.random.default_rng(mixed)
        return self._generators[name]

    def fresh_generator(self, name: str = "default") -> np.random.Generator:
        """Return a *new* generator each call (same starting state per name)."""
        mixed = (self._seed * 0xC2B2AE3D27D4EB4F + _hash_name(name)) % (2**63)
        return np.random.default_rng(mixed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngTree(seed={self._seed}, children={sorted(self._children)})"


def as_generator(seed: SeedLike, name: str = "default") -> np.random.Generator:
    """Coerce ``seed`` (int / Generator / RngTree / None) to a Generator.

    ``None`` coerces to the deterministic :func:`fallback_rng`, keeping
    seedless call sites reproducible rather than silently random.
    """
    if seed is None:
        return fallback_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, RngTree):
        return seed.generator(name)
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"cannot coerce {type(seed).__name__} to a Generator")
