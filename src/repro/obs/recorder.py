"""Trace recorders: the gated collection point of the observability layer.

Two implementations share one surface:

* :data:`NULL_RECORDER` — the ``obs off`` default.  ``emit`` is a bare
  no-op method on a singleton, so un-instrumented runs pay one attribute
  load + call per site (the ≤5% budget ``bench_backend_throughput``
  enforces).  Hot paths can skip even that by checking ``recorder.enabled``
  before assembling event fields.
* :class:`TraceRecorder` — the ``obs on`` implementation: validates each
  event against :data:`~repro.obs.events.EVENT_KINDS`, encodes it to its
  wire row, and appends via GIL-atomic ``list.append`` (workers, the
  server actor, transports and reader threads all emit concurrently; a
  shared lock here costs contended GIL handoffs on every runtime's hot
  path).  Retention is bounded: past ``max_records`` new events are
  counted as ``dropped`` rather than growing without limit.

Recorders never read a clock.  Every ``emit`` takes the caller's ``t`` —
virtual seconds under the simulator (which is what makes sim traces
bit-reproducible), backend-clock seconds under the concurrent runtimes.

The JSONL format is one meta object line followed by one wire row per
record::

    {"meta": {"version": 1, "run_id": "...", "dropped": 0, "timer": {...}}}
    [0.125, "staleness", 2, 3.0, 17]
    ...

``timer`` carries the run's wall-clock Timer totals (folded in by
``ExperimentSession.build_result``) — wall-clock facts live in the meta
line so the *record* stream stays deterministic for virtual-time runs.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.analysis.lockorder import make_lock
from repro.obs.events import TRACE_VERSION, TraceRecord, decode_record, encode_record

#: default retention cap — ~30 bytes/row keeps worst-case memory ~tens of MB
DEFAULT_MAX_RECORDS = 200_000


class NullRecorder:
    """The ``obs off`` recorder: every operation is a no-op."""

    enabled = False

    def emit(self, t: float, kind: str, worker: int = -1, **fields: Any) -> None:
        """Discard the event."""

    def rows(self) -> List[List[Any]]:
        return []

    def records(self) -> List[TraceRecord]:
        return []


#: the shared no-op instance every un-instrumented plan carries
NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """Thread-safe, bounded, validating event sink (``obs on``)."""

    enabled = True

    def __init__(self, run_id: str = "", max_records: int = DEFAULT_MAX_RECORDS) -> None:
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.run_id = str(run_id)
        self.max_records = int(max_records)
        self._lock = make_lock("TraceRecorder._lock")
        # _rows and _dropped are deliberately NOT lock-guarded: emit() is
        # on the hot path of every runtime thread, and a contended acquire
        # can cost a full GIL switch interval — measurably more than the
        # whole obs budget.  list.append and int += are GIL-atomic; the
        # worst concurrent-mutation outcome is overshooting max_records by
        # one row per emitting thread, or an undercounted dropped total.
        self._rows: List[List[Any]] = []
        self._dropped = 0
        self._timer_totals: Dict[str, Dict[str, float]] = {}  # guarded-by: _lock

    # ------------------------------------------------------------------ #
    def emit(self, t: float, kind: str, worker: int = -1, **fields: Any) -> None:
        """Record one event; ``t`` is the *caller's* clock, never read here."""
        row = encode_record(float(t), kind, int(worker), fields)
        if len(self._rows) >= self.max_records:
            self._dropped += 1
            return
        self._rows.append(row)

    def ingest_rows(self, rows: Iterable[Iterable[Any]]) -> int:
        """Merge wire rows shipped by a child process / fleet agent.

        Each row is validated through the registry codec; returns how many
        were kept (the retention cap applies here too).
        """
        kept = 0
        for row in rows:
            record = decode_record(list(row))
            if len(self._rows) >= self.max_records:
                self._dropped += 1
                continue
            self._rows.append(record.row())
            kept += 1
        return kept

    # ------------------------------------------------------------------ #
    @property
    def dropped(self) -> int:
        return self._dropped

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> List[List[Any]]:
        """A snapshot of the encoded rows (the TracePush payload)."""
        # list(...) over a concurrently-appended list is safe under the
        # GIL; rows already present are never mutated after append
        return [list(row) for row in list(self._rows)]

    def records(self) -> List[TraceRecord]:
        """A decoded snapshot of every retained event."""
        return [decode_record(row) for row in self.rows()]

    def clear(self) -> None:
        """Drop every retained row (proc children reuse one recorder)."""
        self._rows.clear()

    # ------------------------------------------------------------------ #
    def set_timer_totals(self, totals: Dict[str, Dict[str, float]]) -> None:
        """Fold the run's wall-clock Timer totals into the trace meta.

        ``totals`` is ``{section: {"total_s": ..., "count": ...}}`` — the
        per-phase cost lives here once, instead of duplicating every Timer
        sample as a span record.
        """
        with self._lock:
            self._timer_totals = {
                name: {k: float(v) for k, v in entry.items()}
                for name, entry in totals.items()
            }

    def meta(self) -> Dict[str, Any]:
        """The JSONL meta line's payload."""
        with self._lock:
            return {
                "version": TRACE_VERSION,
                "run_id": self.run_id,
                "records": len(self._rows),
                "dropped": self._dropped,
                "timer": {
                    name: dict(entry) for name, entry in self._timer_totals.items()
                },
            }

    # ------------------------------------------------------------------ #
    # aggregation helpers (build_result, `repro trace summarize`)
    # ------------------------------------------------------------------ #
    def phase_totals_ms(
        self, records: Optional[List[TraceRecord]] = None
    ) -> Dict[str, float]:
        """Per-phase time attribution: span dur_ms totals + Timer totals.

        Trace spans (compute/encode/wire/decode/apply, from instrumented
        sites) and Timer sections (loss-pred/step-pred/worker-compute)
        merge into one mapping — a phase measured by both systems is summed
        from whichever recorded it, so cost appears exactly once.  Pass a
        pre-decoded snapshot via ``records`` to avoid a second decode pass.
        """
        totals: Dict[str, float] = {}
        for record in self.records() if records is None else records:
            if record.kind == "span":
                phase = str(record.fields["phase"])
                totals[phase] = totals.get(phase, 0.0) + float(record.fields["dur_ms"])
        with self._lock:
            for name, entry in self._timer_totals.items():
                totals[name] = totals.get(name, 0.0) + entry.get("total_s", 0.0) * 1e3
        return totals

    def staleness_values(self) -> List[float]:
        """Every recorded staleness sample, in emission order."""
        return [
            float(record.fields["value"])
            for record in self.records()
            if record.kind == "staleness"
        ]

    # ------------------------------------------------------------------ #
    def dump_jsonl(self, path: str) -> str:
        """Write the meta line + one row per record; returns ``path``."""
        with open(path, "w") as fh:
            fh.write(json.dumps({"meta": self.meta()}, sort_keys=True) + "\n")
            for row in self.rows():
                fh.write(json.dumps(row) + "\n")
        return path


def load_trace(path: str) -> Tuple[Dict[str, Any], List[TraceRecord]]:
    """Read a JSONL trace back: ``(meta, records)``."""
    meta: Dict[str, Any] = {}
    records: List[TraceRecord] = []
    with open(path) as fh:
        for i, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            doc = json.loads(line)
            if i == 0 and isinstance(doc, dict):
                meta = doc.get("meta", {})
                continue
            records.append(decode_record(doc))
    return meta, records


def make_recorder(obs: bool, run_id: str = "") -> Any:
    """The gate: a live :class:`TraceRecorder` or :data:`NULL_RECORDER`."""
    return TraceRecorder(run_id=run_id) if obs else NULL_RECORDER
