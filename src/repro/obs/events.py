"""The trace event registry: every kind the observability layer may emit.

One table — :data:`EVENT_KINDS` — is the single source of truth for what a
:class:`~repro.obs.recorder.TraceRecorder` accepts, what the JSONL trace
format contains, and what crosses the wire inside a
:class:`~repro.runtime.messages.TracePush` or a fleet ``trace`` frame.
Each kind declares its payload fields *in order*; that order IS the wire
codec: a record encodes as the JSON array

    [t, kind, worker, field_1, field_2, ...]

so decoding needs nothing but this registry, and two runs that emit the
same events produce byte-identical JSONL (the sim bit-reproducibility
guarantee).  The ``trace`` analysis pass
(:mod:`repro.analysis.passes.trace`) statically checks that every
``recorder.emit(...)`` call site in the package names a registered kind
with exactly the declared fields, and that every registry entry carries a
docstring — an unregistered or misspelled event kind is a lint failure,
not a runtime surprise.

Field values must be wire-safe scalars (int/float/str/bool); anything
bulkier belongs in a Message payload, not a trace event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

#: trace format version stamped into every JSONL meta line
TRACE_VERSION = 1


@dataclass(frozen=True)
class EventKind:
    """One registered trace event kind: its meaning and payload layout."""

    name: str
    doc: str
    fields: Tuple[str, ...]


# NOTE: keep this a plain dict literal of EventKind(...) literals — the
# trace analysis pass reads it from the AST without importing the package.
EVENT_KINDS: Dict[str, EventKind] = {
    "span": EventKind(
        name="span",
        doc="A timed phase: dur_ms spent in `phase` (compute/encode/wire/"
            "decode/apply or a Timer section) ending at trace time t.",
        fields=("phase", "dur_ms"),
    ),
    "staleness": EventKind(
        name="staleness",
        doc="One staleness sample, emitted where the server (or gossip "
            "coordinator) applies an update — the same site that feeds "
            "RunResult.staleness, so trace histograms match it exactly.",
        fields=("value", "version"),
    ),
    "queue_depth": EventKind(
        name="queue_depth",
        doc="Depth of a named mailbox/inbox observed as a message was "
            "enqueued — the backpressure signal of the async runtimes.",
        fields=("queue", "depth"),
    ),
    "wire_bytes": EventKind(
        name="wire_bytes",
        doc="One transport send: logical (pre-codec) vs wire (post-codec) "
            "bytes in the given direction (up=worker->server, "
            "down=server->worker, peer=worker->worker).",
        fields=("direction", "logical", "wire"),
    ),
    "pairing_wait": EventKind(
        name="pairing_wait",
        doc="A gossip worker's wait on the PairingBoard: dur_ms parked "
            "before being matched with `partner` (-1 = released unmatched "
            "at shutdown).",
        fields=("dur_ms", "partner"),
    ),
    "heartbeat": EventKind(
        name="heartbeat",
        doc="A fleet liveness pulse observed by the scheduler from `peer` "
            "(its n-th), proving the agent host is alive.",
        fields=("peer", "n"),
    ),
    "requeue": EventKind(
        name="requeue",
        doc="The fleet scheduler requeued job `job` after agent `peer` "
            "died — host death is never charged to the cell.",
        fields=("job", "peer"),
    ),
    "mark": EventKind(
        name="mark",
        doc="A freeform annotation (run/phase boundaries, notes) with a "
            "human-readable label.",
        fields=("label",),
    ),
}


def validate_fields(kind: str, fields: Dict[str, Any]) -> EventKind:
    """The registry entry for ``kind``; raises if the payload mismatches."""
    info = EVENT_KINDS.get(kind)
    if info is None:
        raise ValueError(
            f"unregistered trace event kind {kind!r} "
            f"(registered: {', '.join(sorted(EVENT_KINDS))})"
        )
    # membership + length is equivalent to set equality but allocation-free
    # — this runs on the emit hot path, inside the ≤5% obs budget
    if len(fields) != len(info.fields) or any(name not in fields for name in info.fields):
        raise ValueError(
            f"trace event {kind!r} expects fields {info.fields}, "
            f"got {tuple(sorted(fields))}"
        )
    return info


def encode_record(t: float, kind: str, worker: int, fields: Dict[str, Any]) -> List[Any]:
    """One record as its wire row ``[t, kind, worker, *fields-in-order]``."""
    info = EVENT_KINDS.get(kind)
    if info is None:
        raise ValueError(
            f"unregistered trace event kind {kind!r} "
            f"(registered: {', '.join(sorted(EVENT_KINDS))})"
        )
    try:
        values = [fields[name] for name in info.fields]
    except KeyError:
        raise ValueError(
            f"trace event {kind!r} expects fields {info.fields}, "
            f"got {tuple(sorted(fields))}"
        )
    if len(fields) != len(info.fields):
        raise ValueError(
            f"trace event {kind!r} expects fields {info.fields}, "
            f"got {tuple(sorted(fields))}"
        )
    return [t, kind, worker] + values


def decode_record(row: Sequence[Any]) -> "TraceRecord":
    """Inverse of :func:`encode_record` (raises on malformed rows)."""
    if len(row) < 3:
        raise ValueError(f"malformed trace row (need [t, kind, worker, ...]): {row!r}")
    t, kind, worker = float(row[0]), str(row[1]), int(row[2])
    info = EVENT_KINDS.get(kind)
    if info is None:
        raise ValueError(f"unregistered trace event kind in row: {kind!r}")
    values = row[3:]
    if len(values) != len(info.fields):
        raise ValueError(
            f"trace row for {kind!r} carries {len(values)} field(s), "
            f"expected {len(info.fields)}: {row!r}"
        )
    return TraceRecord(t=t, kind=kind, worker=worker, fields=dict(zip(info.fields, values)))


@dataclass(frozen=True)
class TraceRecord:
    """One decoded trace event."""

    t: float
    kind: str
    worker: int
    fields: Dict[str, Any]

    def row(self) -> List[Any]:
        """The record's wire row (see :func:`encode_record`)."""
        return encode_record(self.t, self.kind, self.worker, self.fields)
