"""MetricsHub: thread-safe counters/gauges/histograms over trace events.

The hub is the aggregation side of the observability layer: recorders
collect raw events, the hub folds them into fixed-size summaries that are
cheap to snapshot, serialize, and — crucially — *merge*: per-run hubs
combine into a campaign hub because histograms share fixed bin edges, so
the dashboard can show campaign-wide staleness and wire-byte distributions
without keeping any raw event around.

Everything here is wall-clock free and deterministic given the same
events, so hub snapshots of sim runs reproduce bit-for-bit too.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.analysis.lockorder import make_lock
from repro.obs.events import TraceRecord

#: staleness samples are small integers with a heavy tail — linear bins up
#: to 16, then doubling (the paper's distributions live well inside this)
STALENESS_EDGES = tuple(float(x) for x in range(0, 17)) + (32.0, 64.0, 128.0)

#: wire bytes per message span ~5 orders of magnitude: power-of-4 edges
WIRE_BYTES_EDGES = tuple(float(4 ** k) for k in range(0, 13))


class Histogram:
    """A fixed-bin, mergeable histogram.

    ``edges`` are the interior bin boundaries in ascending order: bin ``i``
    counts values in ``[edges[i-1], edges[i])`` with an underflow bin below
    ``edges[0]`` and an overflow bin at/above ``edges[-1]`` — so ``counts``
    has ``len(edges) + 1`` entries.  Two histograms merge iff their edges
    are identical, which is why every standard distribution in this repo
    uses one of the module-level edge tuples.
    """

    def __init__(self, edges: Sequence[float]) -> None:
        if len(edges) < 1:
            raise ValueError("histogram needs at least one bin edge")
        if any(b <= a for a, b in zip(edges, list(edges)[1:])):
            raise ValueError("histogram edges must be strictly increasing")
        self.edges: List[float] = [float(e) for e in edges]
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.total = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        value = float(value)
        lo, hi = 0, len(self.edges)
        while lo < hi:  # bisect_right by hand: edges are a plain list
            mid = (lo + hi) // 2
            if value < self.edges[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.total += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def merge(self, other: "Histogram") -> None:
        if self.edges != other.edges:
            raise ValueError("cannot merge histograms with different bin edges")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.total,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.total else 0.0,
            "max": self.max if self.total else 0.0,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Histogram":
        hist = cls(payload["edges"])
        counts = [int(c) for c in payload["counts"]]
        if len(counts) != len(hist.counts):
            raise ValueError("histogram payload counts do not match its edges")
        hist.counts = counts
        hist.total = int(payload["count"])
        hist.sum = float(payload["sum"])
        if hist.total:
            hist.min = float(payload["min"])
            hist.max = float(payload["max"])
        return hist


class MetricsHub:
    """Named counters, gauges and histograms under one lock."""

    def __init__(self) -> None:
        self._lock = make_lock("MetricsHub._lock")
        self._counters: Dict[str, float] = {}  # guarded-by: _lock
        self._gauges: Dict[str, float] = {}  # guarded-by: _lock
        self._histograms: Dict[str, Histogram] = {}  # guarded-by: _lock

    def inc(self, name: str, delta: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + float(delta)

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float, edges: Sequence[float] = STALENESS_EDGES) -> None:
        """Add ``value`` to histogram ``name`` (created on first use)."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(edges)
            hist.add(value)

    # ------------------------------------------------------------------ #
    def ingest(self, records: Iterable[TraceRecord]) -> None:
        """Fold trace records into the standard metric names.

        The mapping is fixed so per-run and per-campaign hubs agree:
        staleness samples -> ``staleness`` histogram, wire_bytes events ->
        ``wire_bytes`` histogram + byte counters, spans -> per-phase
        ``span_ms.<phase>`` counters, everything else -> event counters.
        """
        for record in records:
            self.inc(f"events.{record.kind}")
            if record.kind == "staleness":
                self.observe("staleness", float(record.fields["value"]), STALENESS_EDGES)
            elif record.kind == "wire_bytes":
                wire = float(record.fields["wire"])
                self.observe("wire_bytes", wire, WIRE_BYTES_EDGES)
                self.inc("bytes.logical", float(record.fields["logical"]))
                self.inc("bytes.wire", wire)
            elif record.kind == "span":
                self.inc(f"span_ms.{record.fields['phase']}", float(record.fields["dur_ms"]))
            elif record.kind == "queue_depth":
                self.observe("queue_depth", float(record.fields["depth"]), STALENESS_EDGES)
            elif record.kind == "pairing_wait":
                self.inc("pairing_wait_ms", float(record.fields["dur_ms"]))

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Merge another hub's :meth:`snapshot` (per-run -> campaign)."""
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, float(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(name, float(value))
        for name, payload in snapshot.get("histograms", {}).items():
            other = Histogram.from_dict(payload)
            with self._lock:
                hist = self._histograms.get(name)
                if hist is None:
                    self._histograms[name] = other
                else:
                    hist.merge(other)

    # ------------------------------------------------------------------ #
    def histogram(self, name: str) -> Optional[Histogram]:
        with self._lock:
            return self._histograms.get(name)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready copy of every metric."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: hist.to_dict() for name, hist in self._histograms.items()
                },
            }


def staleness_histogram(values: Iterable[float]) -> Histogram:
    """The standard staleness histogram over raw samples."""
    hist = Histogram(STALENESS_EDGES)
    for value in values:
        hist.add(value)
    return hist
