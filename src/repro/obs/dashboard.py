"""The live campaign dashboard: a CampaignEvents observer + JSON endpoint.

:class:`DashboardEvents` watches a campaign exactly like the CLI's console
observer — it implements the same :class:`~repro.experiments.events.
CampaignEvents` protocol, so it composes with any executor (serial, pool,
fleet) — and keeps a JSON-ready state document: campaign progress, per-run
status with curve tails, fleet notes/agent roster, and a campaign-wide
:class:`~repro.obs.hub.MetricsHub` merged from each finished run's ``obs``
block.

:func:`serve_dashboard` exposes that document over a stdlib
``http.server`` endpoint (``repro sweep --serve PORT``); ``repro watch
URL`` polls it and renders :func:`render_state` in the terminal.  The
server binds localhost by default and serves read-only GETs — it is a
progress window, not an API.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.request import urlopen

from repro.analysis.lockorder import make_lock
from repro.core.metrics import CurvePoint, RunResult
from repro.experiments.events import CampaignEvents
from repro.experiments.spec import ExperimentSpec
from repro.obs.hub import MetricsHub

#: curve points retained per run in the dashboard state (the "tail")
CURVE_TAIL = 12

#: notes retained (agent roster, deaths, requeues)
MAX_NOTES = 50


class DashboardEvents(CampaignEvents):
    """Campaign observer accumulating a JSON-ready live state document.

    Wraps an optional ``inner`` observer (the CLI's ConsoleEvents) so one
    campaign can print progress *and* serve it.  All callbacks may fire
    from executor threads; state mutations are lock-protected and the
    state document is rebuilt from plain data on every :meth:`state`.
    """

    def __init__(self, inner: Optional[CampaignEvents] = None) -> None:
        self.inner = inner
        self._lock = make_lock("DashboardEvents._lock")
        self._total = 0  # guarded-by: _lock
        self._cached = 0  # guarded-by: _lock
        self._done = 0  # guarded-by: _lock
        self._finished = False  # guarded-by: _lock
        self._runs: Dict[int, Dict[str, Any]] = {}  # guarded-by: _lock
        self._notes: List[str] = []  # guarded-by: _lock
        self._agents: List[str] = []  # guarded-by: _lock
        self.hub = MetricsHub()

    # ------------------------------------------------------------------ #
    def on_campaign_start(self, total: int, cached: int) -> None:
        with self._lock:
            self._total = total
            self._cached = cached
        if self.inner:
            self.inner.on_campaign_start(total, cached)

    def on_run_start(self, spec: ExperimentSpec, index: int, total: int) -> None:
        with self._lock:
            self._runs[index] = {
                "index": index,
                "label": spec.label(),
                "status": "running",
                "curve": [],
            }
        if self.inner:
            self.inner.on_run_start(spec, index, total)

    def on_curve_point(self, spec: ExperimentSpec, point: CurvePoint) -> None:
        label = spec.label()
        with self._lock:
            for run in self._runs.values():
                if run["label"] == label and run["status"] == "running":
                    run["curve"].append(point.to_dict())
                    del run["curve"][:-CURVE_TAIL]
                    break
        if self.inner:
            self.inner.on_curve_point(spec, point)

    def on_run_end(
        self, spec: ExperimentSpec, result: RunResult, cached: bool, index: int, total: int
    ) -> None:
        summary = {
            "index": index,
            "label": spec.label(),
            "status": "cached" if cached else "done",
            "test_error": result.final_test_error if result.curve else None,
            "updates": result.total_updates,
            "wall_time": result.wall_time,
            "curve": [p.to_dict() for p in result.curve[-CURVE_TAIL:]],
        }
        with self._lock:
            self._runs[index] = summary
            self._done += 1
        if result.obs.get("hub"):
            self.hub.merge_snapshot(result.obs["hub"])
        if self.inner:
            self.inner.on_run_end(spec, result, cached, index, total)

    def on_note(self, message: str) -> None:
        with self._lock:
            self._notes.append(message)
            del self._notes[:-MAX_NOTES]
            # the fleet scheduler announces its roster through notes;
            # mirror it into a dedicated field so watchers need not parse
            if message.startswith("fleet: agents "):
                self._agents = [a for a in message[len("fleet: agents "):].split(", ") if a]
        if self.inner:
            self.inner.on_note(message)

    def on_campaign_end(self, result) -> None:
        with self._lock:
            self._finished = True
        if self.inner:
            self.inner.on_campaign_end(result)

    @property
    def finished(self) -> bool:
        with self._lock:
            return self._finished

    # ------------------------------------------------------------------ #
    def state(self) -> Dict[str, Any]:
        """The JSON document the endpoint serves."""
        with self._lock:
            runs = [dict(run) for _, run in sorted(self._runs.items())]
            doc = {
                "progress": {
                    "total": self._total,
                    "cached": self._cached,
                    "done": self._done,
                    "running": sum(1 for r in runs if r["status"] == "running"),
                    "finished": self._finished,
                },
                "runs": runs,
                "notes": list(self._notes),
                "agents": list(self._agents),
            }
        doc["hub"] = self.hub.snapshot()
        return doc

    def state_json(self) -> bytes:
        return json.dumps(self.state(), sort_keys=True).encode()


class DashboardServer:
    """A background ``ThreadingHTTPServer`` serving one observer's state."""

    def __init__(self, events: DashboardEvents, host: str = "127.0.0.1", port: int = 0) -> None:
        observer = events
        polled = threading.Event()
        final_served = threading.Event()

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                body = observer.state_json()
                self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                polled.set()
                if observer.finished:
                    final_served.set()

            def log_message(self, fmt: str, *args) -> None:
                pass  # polling must not spam the campaign's console

        self.events = events
        self._polled = polled
        self._final_served = final_served
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-dashboard",
            daemon=True,
        )

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}/"

    def start(self) -> "DashboardServer":
        self._thread.start()
        return self

    def linger(self, timeout: float = 5.0) -> bool:
        """Give active pollers a chance to observe the finished state.

        A watcher polls on an interval; closing the endpoint the instant
        the campaign ends would make its final fetch a connection error
        instead of the ``finished: true`` frame it exits 0 on.  Waits (up
        to ``timeout``) until one post-finish GET has been served — and
        only if anyone polled at all, so an unwatched sweep never stalls.
        """
        if not self._polled.is_set():
            return False
        return self._final_served.wait(timeout)

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)


def serve_dashboard(
    events: DashboardEvents, host: str = "127.0.0.1", port: int = 0
) -> DashboardServer:
    """Start serving ``events`` on ``host:port`` (port 0 picks a free one)."""
    return DashboardServer(events, host=host, port=port).start()


# ---------------------------------------------------------------------- #
# the `repro watch` side: fetch + terminal rendering
# ---------------------------------------------------------------------- #
def fetch_state(url: str, timeout: float = 5.0) -> Dict[str, Any]:
    """GET one state document from a dashboard endpoint."""
    if "://" not in url:
        url = f"http://{url}"
    with urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode())


def _bar(count: int, peak: int, width: int = 24) -> str:
    filled = int(round(width * count / peak)) if peak else 0
    return "#" * filled + "." * (width - filled)


def render_state(state: Dict[str, Any]) -> str:
    """One terminal frame of a dashboard state document."""
    progress = state.get("progress", {})
    lines = [
        "campaign: {done}/{total} done ({cached} cached, {running} running{flag})".format(
            done=progress.get("done", 0),
            total=progress.get("total", 0),
            cached=progress.get("cached", 0),
            running=progress.get("running", 0),
            flag=", finished" if progress.get("finished") else "",
        )
    ]
    for run in state.get("runs", []):
        status = run.get("status", "?")
        tail = run.get("curve") or []
        if tail:
            last = tail[-1]
            detail = (
                f"epoch {last['epoch']:>3} t={last['time']:8.1f}s "
                f"test_err={last['test_error']:.4f}"
            )
        elif run.get("test_error") is not None:
            detail = f"test_err={run['test_error']:.4f}"
        else:
            detail = ""
        lines.append(f"  [{run.get('index', 0) + 1:>3}] {status:<8} {run.get('label', '')}  {detail}")
    agents = state.get("agents") or []
    if agents:
        lines.append("agents: " + ", ".join(agents))
    notes = state.get("notes") or []
    for note in notes[-5:]:
        lines.append(f"note: {note}")
    hists = state.get("hub", {}).get("histograms", {})
    for name in ("staleness", "wire_bytes"):
        payload = hists.get(name)
        if not payload or not payload.get("count"):
            continue
        lines.append(
            f"{name}: n={payload['count']} mean={payload['mean']:.2f} "
            f"min={payload['min']:.0f} max={payload['max']:.0f}"
        )
        edges = payload["edges"]
        counts = payload["counts"]
        peak = max(counts)
        shown = 0
        for i, count in enumerate(counts):
            if not count:
                continue
            if i == 0:
                label = f"< {edges[0]:g}"
            elif i == len(edges):
                label = f">= {edges[-1]:g}"
            else:
                label = f"[{edges[i - 1]:g}, {edges[i]:g})"
            lines.append(f"  {label:>16} {_bar(count, peak)} {count}")
            shown += 1
            if shown >= 12:
                lines.append("  ... (more bins)")
                break
    return "\n".join(lines)


def watch(url: str, interval: float = 2.0, once: bool = False, stream=None) -> int:
    """Poll ``url`` and render frames until the campaign finishes.

    Returns 0 on a clean finish, 1 when the endpoint goes away first.
    """
    import sys

    out = stream if stream is not None else sys.stdout
    while True:
        try:
            state = fetch_state(url)
        except OSError as exc:
            print(f"watch: endpoint unreachable ({exc})", file=out, flush=True)
            return 1
        print(render_state(state), file=out, flush=True)
        if once or state.get("progress", {}).get("finished"):
            return 0
        print("---", file=out, flush=True)
        time.sleep(interval)
