"""repro.obs — structured tracing, the metrics hub, the live dashboard.

The observability layer of the runtime (see README "Observability"):

* :mod:`~repro.obs.events` — the :data:`~repro.obs.events.EVENT_KINDS`
  registry: every trace event kind, its docstring, and its wire codec
  (field order), statically enforced by the ``trace`` analysis pass.
* :mod:`~repro.obs.recorder` — :class:`TraceRecorder` (``obs on``) and the
  no-op :data:`NULL_RECORDER` (``obs off``), JSONL dump/load; recorders
  never read a clock, so virtual-time traces are bit-reproducible.
* :mod:`~repro.obs.hub` — :class:`MetricsHub`: thread-safe counters/
  gauges/fixed-bin mergeable histograms aggregating events per run and
  per campaign.
* :mod:`~repro.obs.dashboard` — :class:`DashboardEvents` + a stdlib
  ``http.server`` JSON endpoint (``repro sweep --serve``) and the
  ``repro watch`` terminal renderer.  Import it explicitly
  (``from repro.obs.dashboard import ...``): it builds on the campaign
  layer, which itself builds on the runtime — re-exporting it here would
  close an import cycle through ``ExperimentPlan``'s recorder default.
"""

from repro.obs.events import (
    EVENT_KINDS,
    TRACE_VERSION,
    EventKind,
    TraceRecord,
    decode_record,
    encode_record,
)
from repro.obs.hub import (
    STALENESS_EDGES,
    WIRE_BYTES_EDGES,
    Histogram,
    MetricsHub,
    staleness_histogram,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
    load_trace,
    make_recorder,
)

__all__ = [
    "EVENT_KINDS",
    "TRACE_VERSION",
    "EventKind",
    "TraceRecord",
    "encode_record",
    "decode_record",
    "TraceRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "make_recorder",
    "load_trace",
    "Histogram",
    "MetricsHub",
    "STALENESS_EDGES",
    "WIRE_BYTES_EDGES",
    "staleness_histogram",
]
