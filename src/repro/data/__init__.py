"""Datasets and loaders.

The paper evaluates on CIFAR-10 and ImageNet; neither is available offline,
so :mod:`repro.data.synthetic` generates procedurally structured image
classification tasks with the same role (learnable, non-trivial, with
paper-matching class counts).  See DESIGN.md's substitution table.
"""

from repro.data.dataset import ArrayDataset, Dataset, train_test_split
from repro.data.loader import BatchSampler, DataLoader
from repro.data.partition import partition_indices, shard_dataset
from repro.data.registry import (
    DATASETS,
    build_dataset,
    dataset_names,
    register_dataset,
)
from repro.data.synthetic import (
    SyntheticCIFAR10,
    SyntheticImageNet,
    make_image_classification,
    make_regression_series,
    make_spirals,
)

__all__ = [
    "Dataset",
    "ArrayDataset",
    "train_test_split",
    "DATASETS",
    "build_dataset",
    "dataset_names",
    "register_dataset",
    "DataLoader",
    "BatchSampler",
    "SyntheticCIFAR10",
    "SyntheticImageNet",
    "make_image_classification",
    "make_spirals",
    "make_regression_series",
    "partition_indices",
    "shard_dataset",
]
