"""Procedural datasets standing in for CIFAR-10 and ImageNet.

Substitution rationale (DESIGN.md): the paper's evaluation compares the
*relative* error of five distributed algorithms on image classification.
What matters for the reproduction is a task that (a) a small CNN/MLP can
learn well but not trivially, (b) has enough intra-class variation that
batch-norm statistics and gradient staleness matter, and (c) is generated
deterministically offline.  Each class gets a smooth random "prototype"
image; samples are affine-jittered, shifted, scaled and noised copies, so
classes overlap and test generalization is meaningful.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.utils.rng import SeedLike, as_generator


def _smooth_noise(rng: np.random.Generator, channels: int, side: int, smoothness: int) -> np.ndarray:
    """Low-frequency random field: upsampled coarse noise."""
    coarse_side = max(2, side // max(1, smoothness))
    coarse = rng.standard_normal((channels, coarse_side, coarse_side))
    # bilinear-ish upsample by repetition + box blur
    reps = int(np.ceil(side / coarse_side))
    up = np.repeat(np.repeat(coarse, reps, axis=1), reps, axis=2)[:, :side, :side]
    kernel = np.ones(3) / 3.0
    for axis in (1, 2):
        up = np.apply_along_axis(lambda v: np.convolve(v, kernel, mode="same"), axis, up)
    return up


def make_image_classification(
    num_samples: int,
    num_classes: int,
    side: int = 8,
    channels: int = 3,
    noise: float = 0.35,
    shift: int = 1,
    seed: SeedLike = 0,
) -> ArrayDataset:
    """Generate a class-prototype image classification task.

    Parameters
    ----------
    num_samples:
        Total examples (classes are balanced up to rounding).
    num_classes:
        Number of classes; each gets a random smooth prototype.
    side, channels:
        Image geometry (channels-first output ``(N, C, side, side)``).
    noise:
        Per-pixel Gaussian noise scale; larger -> harder task.
    shift:
        Maximum circular spatial shift applied per sample (translation
        invariance pressure, what makes convolutions useful).
    seed:
        Determinism root.
    """
    if num_samples < num_classes:
        raise ValueError("need at least one sample per class")
    if num_classes < 2:
        raise ValueError("num_classes must be >= 2")
    if side < 2 or channels < 1:
        raise ValueError("invalid image geometry")
    rng = as_generator(seed, "image-classification")

    prototypes = np.stack(
        [_smooth_noise(rng, channels, side, smoothness=2) for _ in range(num_classes)]
    )
    prototypes /= np.abs(prototypes).max(axis=(1, 2, 3), keepdims=True) + 1e-9

    labels = rng.integers(0, num_classes, size=num_samples)
    images = np.empty((num_samples, channels, side, side), dtype=np.float32)
    gains = 1.0 + 0.25 * rng.standard_normal(num_samples)
    for i, label in enumerate(labels):
        img = prototypes[label] * gains[i]
        if shift > 0:
            dx, dy = rng.integers(-shift, shift + 1, size=2)
            img = np.roll(np.roll(img, dy, axis=1), dx, axis=2)
        img = img + noise * rng.standard_normal(img.shape)
        images[i] = img.astype(np.float32)

    # standardize globally (what torchvision-style normalization would do)
    images -= images.mean()
    images /= images.std() + 1e-9
    return ArrayDataset(images, labels.astype(np.int64))


class SyntheticCIFAR10:
    """CIFAR-10 stand-in: 10 classes, 3-channel images.

    Defaults are laptop-scale (8x8, 4096+1024 examples); pass ``side=32``
    and larger counts for a heavier run.  Access :attr:`train` /
    :attr:`test` for the two splits.
    """

    num_classes = 10

    def __init__(
        self,
        train_size: int = 4096,
        test_size: int = 1024,
        side: int = 8,
        noise: float = 0.35,
        seed: SeedLike = 0,
    ) -> None:
        rng_root = as_generator(seed, "synthetic-cifar")
        full = make_image_classification(
            train_size + test_size,
            self.num_classes,
            side=side,
            channels=3,
            noise=noise,
            seed=int(rng_root.integers(0, 2**31)),
        )
        self.train = full.subset(np.arange(train_size))
        self.test = full.subset(np.arange(train_size, train_size + test_size))
        self.side = side

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        """(C, H, W) of one example."""
        return (3, self.side, self.side)


class SyntheticImageNet:
    """ImageNet stand-in: 27 high-level categories (as in the paper), harder task.

    More classes, larger images and heavier noise than the CIFAR stand-in,
    mirroring the paper's use of ImageNet as the "scale" benchmark.
    """

    num_classes = 27

    def __init__(
        self,
        train_size: int = 5400,
        test_size: int = 1350,
        side: int = 12,
        noise: float = 0.45,
        seed: SeedLike = 0,
    ) -> None:
        rng_root = as_generator(seed, "synthetic-imagenet")
        full = make_image_classification(
            train_size + test_size,
            self.num_classes,
            side=side,
            channels=3,
            noise=noise,
            shift=2,
            seed=int(rng_root.integers(0, 2**31)),
        )
        self.train = full.subset(np.arange(train_size))
        self.test = full.subset(np.arange(train_size, train_size + test_size))
        self.side = side

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        """(C, H, W) of one example."""
        return (3, self.side, self.side)


def make_spirals(
    num_samples: int = 600,
    num_classes: int = 3,
    noise: float = 0.15,
    seed: SeedLike = 0,
) -> ArrayDataset:
    """Classic interleaved-spirals 2-D task (used in examples and tests)."""
    if num_classes < 2:
        raise ValueError("num_classes must be >= 2")
    rng = as_generator(seed, "spirals")
    per_class = num_samples // num_classes
    xs, ys = [], []
    for c in range(num_classes):
        t = np.linspace(0.1, 1.0, per_class)
        angle = 2 * np.pi * (c / num_classes + t * 1.25)
        radius = t
        points = np.stack([radius * np.cos(angle), radius * np.sin(angle)], axis=1)
        points += noise * rng.standard_normal(points.shape) * t[:, None]
        xs.append(points)
        ys.append(np.full(per_class, c))
    inputs = np.concatenate(xs).astype(np.float32)
    targets = np.concatenate(ys).astype(np.int64)
    perm = rng.permutation(len(inputs))
    return ArrayDataset(inputs[perm], targets[perm])


def make_regression_series(
    length: int = 256,
    kind: str = "decay",
    noise: float = 0.01,
    seed: SeedLike = 0,
) -> np.ndarray:
    """Synthetic scalar time series shaped like training-loss curves.

    Used to unit-test the loss predictor against known dynamics.

    ``kind``:
        * ``"decay"`` — exponential decay toward an asymptote (typical loss);
        * ``"step"``  — decay with sudden drops (learning-rate steps);
        * ``"noisy"`` — decay with heavy noise bursts.
    """
    if length <= 1:
        raise ValueError("length must be > 1")
    rng = as_generator(seed, "regression-series")
    t = np.arange(length, dtype=np.float64)
    base = 0.5 + 2.5 * np.exp(-t / (length / 3.0))
    if kind == "decay":
        series = base
    elif kind == "step":
        series = base.copy()
        for milestone in (length // 2, 3 * length // 4):
            series[milestone:] *= 0.6
    elif kind == "noisy":
        series = base * (1.0 + 0.2 * np.sin(t / 7.0))
    else:
        raise ValueError(f"unknown series kind {kind!r}")
    return series + noise * rng.standard_normal(length)
