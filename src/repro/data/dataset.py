"""Dataset containers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator


class Dataset:
    """Minimal dataset protocol: ``len()`` and integer/array indexing."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index):
        raise NotImplementedError


class ArrayDataset(Dataset):
    """In-memory ``(inputs, targets)`` dataset backed by NumPy arrays."""

    def __init__(self, inputs: np.ndarray, targets: np.ndarray) -> None:
        inputs = np.asarray(inputs)
        targets = np.asarray(targets)
        if len(inputs) != len(targets):
            raise ValueError(
                f"inputs ({len(inputs)}) and targets ({len(targets)}) differ in length"
            )
        self.inputs = inputs
        self.targets = targets

    def __len__(self) -> int:
        return len(self.inputs)

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.inputs[index], self.targets[index]

    @property
    def input_shape(self) -> Tuple[int, ...]:
        """Shape of a single example."""
        return tuple(self.inputs.shape[1:])

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        """Return a copy restricted to ``indices``."""
        indices = np.asarray(indices)
        return ArrayDataset(self.inputs[indices], self.targets[indices])


def train_test_split(
    dataset: ArrayDataset,
    test_fraction: float = 0.2,
    seed: SeedLike = 0,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Random split into (train, test) with ``test_fraction`` held out."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = as_generator(seed, "train-test-split")
    n = len(dataset)
    perm = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test_idx, train_idx = perm[:n_test], perm[n_test:]
    return dataset.subset(train_idx), dataset.subset(test_idx)
