"""Dataset sharding across workers.

The paper's main setting shares the full dataset among all workers, but its
future-work section ("different workers train the models with different
subsets of input data") motivates sharding; this module implements it so the
library covers that extension (exercised by the federated-style example).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.utils.rng import SeedLike, as_generator


def partition_indices(
    num_items: int,
    num_parts: int,
    shuffle: bool = True,
    seed: SeedLike = 0,
) -> List[np.ndarray]:
    """Split ``range(num_items)`` into ``num_parts`` disjoint near-equal parts.

    Every index appears in exactly one part (property-tested); part sizes
    differ by at most one.
    """
    if num_items <= 0:
        raise ValueError("num_items must be positive")
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    if num_parts > num_items:
        raise ValueError(f"cannot split {num_items} items into {num_parts} non-empty parts")
    order = np.arange(num_items)
    if shuffle:
        order = as_generator(seed, "partition").permutation(num_items)
    return [np.sort(part) for part in np.array_split(order, num_parts)]


def shard_dataset(
    dataset: ArrayDataset,
    num_shards: int,
    shuffle: bool = True,
    seed: SeedLike = 0,
) -> List[ArrayDataset]:
    """Partition a dataset into per-worker shards."""
    parts = partition_indices(len(dataset), num_shards, shuffle=shuffle, seed=seed)
    return [dataset.subset(part) for part in parts]
