"""Name-keyed dataset registry: ``config.dataset`` -> (train, test, classes).

Historically the mapping lived as an ``if/elif`` chain inside
``repro.runtime.session.build_dataset``, which meant a new task required
editing core wiring.  Now each dataset is a registered builder —
``builder(config) -> (train_set, test_set, num_classes)`` — and scenarios
like the two-dimensional ``spirals`` task are first-class named entries
selectable from any :class:`~repro.core.config.TrainingConfig` (and hence
from the CLI and sweep grids).

Builders must honour ``config.dataset_kwargs`` and seed from
``config.seed`` so that identical configs produce identical data — the
experiment result store keys on the config alone.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.data.synthetic import SyntheticCIFAR10, SyntheticImageNet, make_spirals
from repro.utils.registry import Registry

#: builder(config) -> (train, test, num_classes)
DatasetBuilder = Callable[..., Tuple[ArrayDataset, ArrayDataset, int]]

DATASETS: Registry = Registry("dataset")


def register_dataset(name: str, builder: DatasetBuilder, override: bool = False) -> DatasetBuilder:
    """Register ``builder`` under ``name``; raises on duplicates unless ``override``."""
    return DATASETS.register(name, builder, override=override)


def dataset_names() -> Tuple[str, ...]:
    """All registered dataset names, sorted."""
    return DATASETS.names()


def build_dataset(config) -> Tuple[ArrayDataset, ArrayDataset, int]:
    """Return (train, test, num_classes) for ``config.dataset``."""
    return DATASETS.get(config.dataset)(config)


# ---------------------------------------------------------------------- #
# built-in datasets
# ---------------------------------------------------------------------- #
def _seeded_kwargs(config) -> dict:
    kwargs = dict(config.dataset_kwargs)
    kwargs.setdefault("seed", config.seed)
    return kwargs


def build_cifar(config) -> Tuple[ArrayDataset, ArrayDataset, int]:
    """Synthetic CIFAR-10 stand-in (paper's primary benchmark)."""
    bundle = SyntheticCIFAR10(**_seeded_kwargs(config))
    return bundle.train, bundle.test, SyntheticCIFAR10.num_classes


def build_imagenet(config) -> Tuple[ArrayDataset, ArrayDataset, int]:
    """Synthetic ImageNet stand-in (27 classes)."""
    bundle = SyntheticImageNet(**_seeded_kwargs(config))
    return bundle.train, bundle.test, SyntheticImageNet.num_classes


def build_spirals(config) -> Tuple[ArrayDataset, ArrayDataset, int]:
    """Interleaved 2-D spirals: a tiny non-image scenario for MLP sweeps."""
    kwargs = _seeded_kwargs(config)
    kwargs.setdefault("num_samples", 600)
    num_classes = kwargs.pop("num_classes", 3)
    test_size = kwargs.pop("test_size", max(1, kwargs["num_samples"] // 5))
    full = make_spirals(num_classes=num_classes, **kwargs)
    train = full.subset(np.arange(len(full) - test_size))
    test = full.subset(np.arange(len(full) - test_size, len(full)))
    return train, test, num_classes


register_dataset("cifar", build_cifar)
register_dataset("imagenet", build_imagenet)
register_dataset("spirals", build_spirals)
