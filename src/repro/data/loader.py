"""Batching and sampling.

Workers in the paper all draw mini-batches from the *same* dataset
(Section 3: "the workers ... not only share the model but also use the same
data"), so each worker owns a :class:`DataLoader` with an independent RNG
stream over the full training set.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.utils.rng import SeedLike, as_generator


class BatchSampler:
    """Infinite sampler yielding index arrays of size ``batch_size``.

    Reshuffles after each full pass; the final short batch of a pass is
    dropped only if ``drop_last`` (default keeps it).
    """

    def __init__(
        self,
        num_items: int,
        batch_size: int,
        shuffle: bool = True,
        drop_last: bool = False,
        seed: SeedLike = 0,
    ) -> None:
        if num_items <= 0:
            raise ValueError("num_items must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.num_items = int(num_items)
        self.batch_size = int(min(batch_size, num_items))
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = as_generator(seed, "batch-sampler")
        self._order = np.arange(self.num_items)
        self._cursor = self.num_items  # force reshuffle on first draw

    def next_batch(self) -> np.ndarray:
        """Return the next batch's indices."""
        if self._cursor >= self.num_items:
            if self.shuffle:
                self._order = self._rng.permutation(self.num_items)
            self._cursor = 0
        end = self._cursor + self.batch_size
        batch = self._order[self._cursor : end]
        self._cursor = end
        if len(batch) < self.batch_size and self.drop_last:
            return self.next_batch()
        return batch

    def batches_per_epoch(self) -> int:
        """Number of batches in one full pass."""
        if self.drop_last:
            return self.num_items // self.batch_size
        return int(np.ceil(self.num_items / self.batch_size))


class DataLoader:
    """Iterate an :class:`ArrayDataset` in mini-batches.

    Supports both epoch-style iteration (``for x, y in loader``) and the
    worker-style infinite stream (:meth:`next_batch`).
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int,
        shuffle: bool = True,
        drop_last: bool = False,
        seed: SeedLike = 0,
    ) -> None:
        self.dataset = dataset
        self.sampler = BatchSampler(
            len(dataset), batch_size, shuffle=shuffle, drop_last=drop_last, seed=seed
        )

    @property
    def batch_size(self) -> int:
        """Per-batch example count."""
        return self.sampler.batch_size

    def next_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """Draw the next ``(inputs, targets)`` batch from the stream."""
        idx = self.sampler.next_batch()
        return self.dataset[idx]

    def __len__(self) -> int:
        return self.sampler.batches_per_epoch()

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        for _ in range(len(self)):
            yield self.next_batch()
