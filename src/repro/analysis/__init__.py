"""repro.analysis — the repo's invariant linter (``repro lint``).

Static AST passes over the installed package (wire completeness,
determinism, lock discipline, registry consistency) plus a runtime
lock-order tracer.  See :mod:`repro.analysis.base` for the framework and
the README "Static analysis" section for the rule catalogue.
"""

from repro.analysis.base import (
    PASSES,
    AnalysisPass,
    Finding,
    SourceFile,
    SourceTree,
    available_rules,
    load_builtin_passes,
    register_pass,
    run_passes,
)
from repro.analysis.baseline import (
    BASELINE_FILENAME,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.lockorder import (
    LOCK_TRACE_ENV,
    LockOrderViolation,
    assert_acyclic,
    make_condition,
    make_lock,
    trace_enabled,
)

__all__ = [
    "AnalysisPass",
    "Finding",
    "SourceFile",
    "SourceTree",
    "PASSES",
    "register_pass",
    "run_passes",
    "available_rules",
    "load_builtin_passes",
    "BASELINE_FILENAME",
    "load_baseline",
    "save_baseline",
    "apply_baseline",
    "LOCK_TRACE_ENV",
    "LockOrderViolation",
    "assert_acyclic",
    "make_lock",
    "make_condition",
    "trace_enabled",
]
