"""The committed suppression baseline for ``repro lint``.

A baseline is a JSON document listing findings the repo has decided to
live with (with a reason), so the lint gate can stay red-on-regression
without forcing a big-bang cleanup::

    {
      "version": 1,
      "suppressions": [
        {"rule": "determinism", "path": "core/trainer.py",
         "message": "...", "reason": "wall_time is reporting-only"}
      ]
    }

Entries match findings by :attr:`~repro.analysis.base.Finding.fingerprint`
— rule + path + message, deliberately *not* line numbers — so unrelated
edits to a file never invalidate its suppressions.  Entries that match
nothing are reported as *stale* so the baseline shrinks over time instead
of accreting dead weight.  The repo's committed baseline lives at the
repository root as ``lint-baseline.json`` (currently empty: every finding
the passes ever raised has been fixed at the source).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.analysis.base import Finding

BASELINE_VERSION = 1
BASELINE_FILENAME = "lint-baseline.json"


def _entry_fingerprint(entry: Dict[str, str]) -> str:
    return f"{entry.get('rule', '')}::{entry.get('path', '')}::{entry.get('message', '')}"


def load_baseline(path: Union[str, Path]) -> List[Dict[str, str]]:
    """The suppression entries at ``path`` (an absent file is empty)."""
    path = Path(path)
    if not path.is_file():
        return []
    doc = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or "suppressions" not in doc:
        raise ValueError(f"{path} is not a lint baseline (no 'suppressions' key)")
    version = doc.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path} has baseline version {version!r}, this tool reads v{BASELINE_VERSION}"
        )
    entries = doc["suppressions"]
    if not isinstance(entries, list) or not all(isinstance(e, dict) for e in entries):
        raise ValueError(f"{path}: 'suppressions' must be a list of objects")
    return entries


def save_baseline(
    path: Union[str, Path], findings: Sequence[Finding], reason: str = "baselined"
) -> None:
    """Write ``findings`` as the new baseline at ``path``."""
    entries = [
        {"rule": f.rule, "path": f.path, "message": f.message, "reason": reason}
        for f in findings
    ]
    doc = {"version": BASELINE_VERSION, "suppressions": entries}
    Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[Dict[str, str]]
) -> Tuple[List[Finding], List[Finding], List[Dict[str, str]]]:
    """Split findings against the baseline.

    Returns ``(fresh, suppressed, stale_entries)``: findings not covered
    by any entry, findings the baseline absorbs, and entries that matched
    nothing (candidates for deletion).
    """
    by_fingerprint = {_entry_fingerprint(e): e for e in entries}
    fresh: List[Finding] = []
    suppressed: List[Finding] = []
    matched: set = set()
    for finding in findings:
        if finding.fingerprint in by_fingerprint:
            suppressed.append(finding)
            matched.add(finding.fingerprint)
        else:
            fresh.append(finding)
    stale = [e for e in entries if _entry_fingerprint(e) not in matched]
    return fresh, suppressed, stale
