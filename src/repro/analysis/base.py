"""AST-based static-analysis framework behind ``repro lint``.

The repo's load-bearing invariants — every :class:`~repro.runtime.
messages.Message` has a wire codec, sim runs are seed-deterministic,
lock discipline on the concurrent runtimes — are exactly the properties
that rot silently as the code grows.  This package checks them
statically, as a handful of repo-specific :class:`AnalysisPass` plugins
over one shared parsed view of the source tree.

Vocabulary:

* :class:`SourceFile` — one parsed module: text, lines, lazily-built
  ``ast`` tree, and the ``# lint-ok: <rule>`` inline suppressions.
* :class:`SourceTree` — every ``*.py`` under a root (normally the
  installed ``repro`` package), plus the nearest README for the
  documentation cross-checks.
* :class:`Finding` — one violation: rule id, ``path:line``, severity,
  message.  Its :attr:`~Finding.fingerprint` is deliberately
  line-number-free so a committed suppression baseline survives
  unrelated edits (:mod:`repro.analysis.baseline`).
* :data:`PASSES` — the pass registry (a
  :class:`~repro.utils.registry.Registry`, like every pluggable layer
  here).  ``@register_pass`` on an :class:`AnalysisPass` subclass adds a
  rule; :func:`run_passes` runs any subset over a tree.

Suppressing one finding at its site::

    wall_start = time.perf_counter()  # lint-ok: determinism — reporting only

The comment may sit on the flagged line or the line directly above it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Type, Union

from repro.utils.registry import Registry

SEVERITIES = ("error", "warning")

_SUPPRESS_RE = re.compile(r"#\s*lint-ok:\s*([\w,\- ]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str  # POSIX-relative to the tree root
    line: int
    message: str
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}, got {self.severity!r}")

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used by the suppression baseline."""
        return f"{self.rule}::{self.path}::{self.message}"

    def __str__(self) -> str:
        return f"{self.location}: {self.severity} [{self.rule}] {self.message}"


class SourceFile:
    """One module under analysis: text, lines, lazy AST, suppressions."""

    def __init__(self, root: Path, path: Path) -> None:
        self.abs_path = path
        self.rel = path.relative_to(root).as_posix()
        self.text = path.read_text(encoding="utf-8")
        self.lines = self.text.splitlines()
        self._tree: Optional[ast.Module] = None

    @property
    def tree(self) -> ast.Module:
        if self._tree is None:
            self._tree = ast.parse(self.text, filename=self.rel)
        return self._tree

    def line_text(self, line: int) -> str:
        """1-indexed source line ('' when out of range)."""
        return self.lines[line - 1] if 1 <= line <= len(self.lines) else ""

    def suppressed_rules(self, line: int) -> FrozenSet[str]:
        """Rules a ``# lint-ok:`` comment waives at ``line`` (or just above)."""
        rules: set = set()
        for text in (self.line_text(line), self.line_text(line - 1)):
            match = _SUPPRESS_RE.search(text)
            if match:
                rules.update(r.strip() for r in match.group(1).split(",") if r.strip())
        return frozenset(rules)

    def is_suppressed(self, line: int, rule: str) -> bool:
        return rule in self.suppressed_rules(line)


class SourceTree:
    """Every parseable ``*.py`` under ``root``, plus the nearest README.

    Files that fail to parse are kept out of :attr:`files` and reported
    as ``parse`` findings instead — a lint run must never crash on the
    code it is judging.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root).resolve()
        if not self.root.is_dir():
            raise ValueError(f"no source tree at {self.root}")
        self.files: List[SourceFile] = []
        self.parse_failures: List[Finding] = []
        for path in sorted(self.root.rglob("*.py")):
            source = SourceFile(self.root, path)
            try:
                source.tree
            except SyntaxError as exc:
                self.parse_failures.append(
                    Finding("parse", source.rel, exc.lineno or 1, f"syntax error: {exc.msg}")
                )
                continue
            self.files.append(source)
        self._by_rel: Dict[str, SourceFile] = {f.rel: f for f in self.files}

    def find(self, rel: str) -> Optional[SourceFile]:
        """The file at POSIX-relative path ``rel``, or None."""
        return self._by_rel.get(rel)

    @property
    def readme_text(self) -> str:
        """The nearest README.md at or above the root ('' when absent)."""
        for base in (self.root, self.root.parent, self.root.parent.parent):
            candidate = base / "README.md"
            if candidate.is_file():
                return candidate.read_text(encoding="utf-8")
        return ""


class AnalysisPass:
    """One registered rule: examine a :class:`SourceTree`, emit findings."""

    #: rule id — the ``[rule]`` tag on findings and the ``--rule`` name
    name: str = ""
    #: one-line summary shown by ``repro lint --list-rules``
    description: str = ""

    def run(self, tree: SourceTree) -> List[Finding]:
        raise NotImplementedError


PASSES: Registry = Registry("analysis pass")


def register_pass(cls: Type[AnalysisPass]) -> Type[AnalysisPass]:
    """Class decorator: file an :class:`AnalysisPass` under its ``name``."""
    PASSES.register(cls.name, cls)
    return cls


def load_builtin_passes() -> None:
    """Import the built-in pass modules (registration is import-time)."""
    import repro.analysis.passes  # noqa: F401


def available_rules() -> Sequence[str]:
    load_builtin_passes()
    return PASSES.names()


def run_passes(
    root: Union[str, Path], rules: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Run ``rules`` (default: all registered) over the tree at ``root``.

    Returns findings sorted by location, with inline ``# lint-ok:``
    suppressions already removed; baseline subtraction is the caller's
    job (:func:`repro.analysis.baseline.apply_baseline`).
    """
    load_builtin_passes()
    tree = SourceTree(root)
    names = list(rules) if rules else list(PASSES.names())
    findings: List[Finding] = list(tree.parse_failures)
    for name in names:
        findings.extend(PASSES.get(name)().run(tree))
    kept = []
    for finding in findings:
        source = tree.find(finding.path)
        if source is not None and source.is_suppressed(finding.line, finding.rule):
            continue
        kept.append(finding)
    return sorted(kept, key=lambda f: (f.path, f.line, f.rule, f.message))
