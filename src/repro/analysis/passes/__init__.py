"""Built-in analysis passes — importing this package registers them."""

from repro.analysis.passes import determinism, locks, registry, trace, wire  # noqa: F401
