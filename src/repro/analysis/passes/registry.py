"""registry-consistency: one name, everywhere it is advertised.

A component name (algorithm, backend, topology, codec, dataset, model)
appears in up to four places: the config-level tuple that validates it,
the registration site that implements it, the CLI help text that
advertises it, and the README matrix that documents it.  These drift
independently — this pass pins them together:

* ``core/config.py``'s ``ALGORITHMS``/``TOPOLOGIES``/``COMM_CODECS``
  tuples must equal the implementation sets (the ``make_update_rule``
  dispatch literals, ``register_topology`` calls, ``register_codec``
  class ``name`` attributes);
* every registered backend/topology/codec name must appear verbatim in
  ``cli.py`` (the prose help is what users see — dynamic ``choices=``
  lists already track the registries by construction);
* every registered name in every category must appear in the README.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Tuple

from repro.analysis.base import AnalysisPass, Finding, SourceFile, SourceTree, register_pass

CONFIG_PATH = "core/config.py"
ALGORITHMS_IMPL_PATH = "core/algorithms/__init__.py"
CLI_PATH = "cli.py"

#: category -> (registration file, register_* function name)
_REGISTRATION_SITES = {
    "backend": ("runtime/backends.py", "register_backend"),
    "topology": ("cluster/topology.py", "register_topology"),
    "codec": ("runtime/codecs.py", "register_codec"),
    "dataset": ("data/registry.py", "register_dataset"),
    "model": ("nn/registry.py", "register_model"),
}

#: config tuple name -> (category, registration source of truth)
_CONFIG_TUPLES = {
    "TOPOLOGIES": "topology",
    "COMM_CODECS": "codec",
}


def _module_tuple(source: SourceFile, name: str) -> Tuple[List[str], Optional[int]]:
    """String elements of a module-level ``NAME = ("a", "b", ...)``."""
    for node in source.tree.body:
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Name) and target.id == name):
            continue
        if isinstance(node.value, (ast.Tuple, ast.List)):
            values = [
                e.value
                for e in node.value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            ]
            return values, node.lineno
    return [], None


def _class_name_attrs(source: SourceFile) -> Dict[str, Tuple[str, int]]:
    """class -> (its ``name = "..."`` attribute value, lineno)."""
    out: Dict[str, Tuple[str, int]] = {}
    for node in source.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "name"
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                out[node.name] = (stmt.value.value, stmt.lineno)
    return out


def _registered_names(source: SourceFile, register_func: str) -> List[Tuple[str, int]]:
    """Literal names passed to ``register_func(...)`` calls in the module.

    ``register_codec`` registers a *class* whose ``name`` attribute is
    the key; resolve those through the module's class table.
    """
    class_names = _class_name_attrs(source)
    names: List[Tuple[str, int]] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        func_name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        if func_name != register_func:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            names.append((first.value, node.lineno))
        elif isinstance(first, ast.Name) and first.id in class_names:
            value, _ = class_names[first.id]
            names.append((value, node.lineno))
    return names


def _dispatch_literals(source: SourceFile, variable: str) -> List[Tuple[str, int]]:
    """Literals compared against ``variable`` (``algorithm == "asgd"``)."""
    out: List[Tuple[str, int]] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Compare):
            continue
        sides = [node.left] + list(node.comparators)
        if not any(isinstance(s, ast.Name) and s.id == variable for s in sides):
            continue
        for side in sides:
            if isinstance(side, ast.Constant) and isinstance(side.value, str):
                out.append((side.value, node.lineno))
    return out


def _mentions(text: str, name: str) -> bool:
    """Whole-word-ish presence (so 'ring' never matches 'string')."""
    return re.search(rf"(?<![\w-]){re.escape(name)}(?![\w-])", text) is not None


@register_pass
class RegistryConsistencyPass(AnalysisPass):
    name = "registry"
    description = (
        "algorithm/backend/topology/codec/dataset/model names agree across "
        "config tuples, registration sites, CLI help, and the README"
    )

    def run(self, tree: SourceTree) -> List[Finding]:
        findings: List[Finding] = []
        config = tree.find(CONFIG_PATH)
        cli = tree.find(CLI_PATH)
        readme = tree.readme_text

        registered: Dict[str, List[Tuple[str, int, str]]] = {}
        for category, (path, register_func) in _REGISTRATION_SITES.items():
            source = tree.find(path)
            if source is None:
                continue
            registered[category] = [
                (name, lineno, path)
                for name, lineno in _registered_names(source, register_func)
            ]

        # algorithms: the config tuple vs the update-rule dispatch chain
        impl = tree.find(ALGORITHMS_IMPL_PATH)
        if config is not None and impl is not None:
            declared, decl_line = _module_tuple(config, "ALGORITHMS")
            dispatched = _dispatch_literals(impl, "algorithm")
            if decl_line is not None:
                registered["algorithm"] = [
                    (name, lineno, ALGORITHMS_IMPL_PATH) for name, lineno in dispatched
                ]
                dispatched_names = {name for name, _ in dispatched}
                for name in declared:
                    if name not in dispatched_names:
                        findings.append(
                            Finding(
                                self.name, CONFIG_PATH, decl_line,
                                f"ALGORITHMS declares {name!r} but make_update_rule "
                                f"never dispatches on it",
                            )
                        )
                for name, lineno in dispatched:
                    if name not in declared:
                        findings.append(
                            Finding(
                                self.name, ALGORITHMS_IMPL_PATH, lineno,
                                f"make_update_rule dispatches on {name!r}, which is "
                                f"missing from core/config.py ALGORITHMS",
                            )
                        )

        # config tuples vs registration sites (both directions)
        if config is not None:
            for tuple_name, category in _CONFIG_TUPLES.items():
                declared, decl_line = _module_tuple(config, tuple_name)
                entries = registered.get(category)
                if decl_line is None or entries is None:
                    continue
                entry_names = {name for name, _, _ in entries}
                for name in declared:
                    if name not in entry_names:
                        findings.append(
                            Finding(
                                self.name, CONFIG_PATH, decl_line,
                                f"{tuple_name} declares {name!r} but no {category} "
                                f"of that name is registered",
                            )
                        )
                for name, lineno, path in entries:
                    if name not in declared:
                        findings.append(
                            Finding(
                                self.name, path, lineno,
                                f"registered {category} {name!r} is missing from "
                                f"core/config.py {tuple_name}",
                            )
                        )

        # CLI prose: what users are told exists
        if cli is not None:
            for category in ("backend", "topology", "codec"):
                for name, lineno, path in registered.get(category, []):
                    if not _mentions(cli.text, name):
                        findings.append(
                            Finding(
                                self.name, path, lineno,
                                f"registered {category} {name!r} is not advertised "
                                f"anywhere in cli.py",
                            )
                        )

        # README matrices: every name in every category
        if readme:
            for category in sorted(registered):
                for name, lineno, path in registered[category]:
                    if not _mentions(readme, name):
                        findings.append(
                            Finding(
                                self.name, path, lineno,
                                f"registered {category} {name!r} does not appear in "
                                f"the README",
                            )
                        )
        return findings
