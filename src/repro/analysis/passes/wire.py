"""wire-completeness: every Message crosses the wire, both directions.

Three families of checks, all cross-file:

1. **codec coverage** — every concrete :class:`~repro.runtime.messages.
   Message` dataclass must appear in ``runtime/wire.py``'s ``_CODECS``
   table with a defined encoder *and* decoder, and every table entry must
   point back at a real message class.  (This is what turns "we added a
   message type and forgot the proc backend" into a red lint line instead
   of a mid-run ``WireError``.)
2. **field wire-safety** — message fields must have annotations the wire
   format can carry: JSON scalars, ``tuple`` (BN stat pairs), arrays, or
   the three structured payloads that already have field-level encoders.
3. **ControlFrame symmetry** — the proc handshake's kind literals must be
   consumed by the peer that receives them (worker->parent and
   parent->worker checked separately), and ``fleet/protocol.py``'s frame
   builders must agree exactly with its ``_FRAME_KINDS`` parser
   vocabulary.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.base import AnalysisPass, Finding, SourceFile, SourceTree, register_pass

MESSAGES_PATH = "runtime/messages.py"
WIRE_PATH = "runtime/wire.py"
FLEET_PROTOCOL_PATH = "fleet/protocol.py"
PROC_WORKER_PATH = "runtime/proc_worker.py"
PROC_BACKEND_PATH = "runtime/proc_backend.py"

#: annotations the wire header/payload can carry directly
_SCALAR_TYPES = {"int", "float", "str", "bool", "bytes", "tuple"}
#: structured payloads with dedicated field-level encoders in wire.py
_STRUCTURED_TYPES = {
    "np.ndarray",
    "numpy.ndarray",
    "WorkerState",
    "GradientPayload",
    "CompensationReply",
}
_OPTIONAL_RE = re.compile(r"^Optional\[(.+)\]$")


def _wire_safe(annotation: str) -> bool:
    ann = annotation.strip()
    match = _OPTIONAL_RE.match(ann)
    if match:
        ann = match.group(1).strip()
    return ann in _SCALAR_TYPES or ann in _STRUCTURED_TYPES


def _message_classes(source: SourceFile) -> Dict[str, Tuple[int, List[Tuple[str, str, int]]]]:
    """Concrete Message subclasses: name -> (lineno, [(field, ann, lineno)])."""
    class_defs: Dict[str, ast.ClassDef] = {}
    bases: Dict[str, List[str]] = {}
    for node in source.tree.body:
        if isinstance(node, ast.ClassDef):
            class_defs[node.name] = node
            bases[node.name] = [b.id for b in node.bases if isinstance(b, ast.Name)]

    def derives_from_message(name: str, seen: Tuple[str, ...] = ()) -> bool:
        if name == "Message":
            return True
        return any(
            base not in seen and derives_from_message(base, seen + (name,))
            for base in bases.get(name, [])
        )

    out: Dict[str, Tuple[int, List[Tuple[str, str, int]]]] = {}
    for name, node in class_defs.items():
        if name == "Message" or not derives_from_message(name):
            continue
        fields = [
            (stmt.target.id, ast.unparse(stmt.annotation), stmt.lineno)
            for stmt in node.body
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
        ]
        out[name] = (node.lineno, fields)
    return out


def _codec_table(
    source: SourceFile,
) -> Tuple[List[Tuple[str, str, str, str, int]], Set[str], Optional[int]]:
    """``_CODECS`` entries as (kind, cls, enc, dec, lineno), the module's
    function names, and the table's line (None when the table is absent)."""
    functions = {
        node.name
        for node in source.tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    entries: List[Tuple[str, str, str, str, int]] = []
    table_line: Optional[int] = None
    for node in source.tree.body:
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Name) and target.id == "_CODECS"):
            continue
        if not isinstance(node.value, ast.Dict):
            continue
        table_line = node.lineno
        for key, value in zip(node.value.keys, node.value.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            if not (isinstance(value, ast.Tuple) and len(value.elts) == 3):
                entries.append((key.value, "", "", "", key.lineno))
                continue
            names = [e.id if isinstance(e, ast.Name) else "" for e in value.elts]
            entries.append((key.value, names[0], names[1], names[2], key.lineno))
    return entries, functions, table_line


def _built_control_kinds(
    source: SourceFile, builders: Tuple[str, ...] = ("ControlFrame",)
) -> List[Tuple[str, int]]:
    """Kind literals constructed via ``ControlFrame("kind", ...)`` (or any
    named builder) in this module."""
    kinds: List[Tuple[str, int]] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        if name not in builders or not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            kinds.append((first.value, node.lineno))
    return kinds


def _checked_control_kinds(source: SourceFile) -> Set[str]:
    """Kind literals this module compares against some ``.kind`` attribute."""
    kinds: Set[str] = set()
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Compare):
            continue
        sides = [node.left] + list(node.comparators)
        touches_kind = any(
            isinstance(s, ast.Attribute) and s.attr == "kind" for s in sides
        )
        if not touches_kind:
            continue
        for side in sides:
            if isinstance(side, ast.Constant) and isinstance(side.value, str):
                kinds.add(side.value)
    return kinds


def _frame_kinds_vocabulary(source: SourceFile) -> Tuple[Set[str], Optional[int]]:
    """Keys of the module-level ``_FRAME_KINDS`` dict and its line."""
    for node in source.tree.body:
        if not (isinstance(node, (ast.Assign, ast.AnnAssign))):
            continue
        target = node.targets[0] if isinstance(node, ast.Assign) else node.target
        if not (isinstance(target, ast.Name) and target.id == "_FRAME_KINDS"):
            continue
        value = node.value
        if isinstance(value, ast.Dict):
            keys = {
                k.value
                for k in value.keys
                if isinstance(k, ast.Constant) and isinstance(k.value, str)
            }
            return keys, node.lineno
    return set(), None


@register_pass
class WireCompletenessPass(AnalysisPass):
    name = "wire"
    description = (
        "every Message has a registered encoder+decoder, fields are "
        "wire-safe, and ControlFrame kinds encode/decode symmetrically"
    )

    def run(self, tree: SourceTree) -> List[Finding]:
        findings: List[Finding] = []
        findings.extend(self._check_codecs(tree))
        findings.extend(self._check_fleet_symmetry(tree))
        findings.extend(self._check_proc_symmetry(tree))
        return findings

    # -------------------------------------------------------------- #
    def _check_codecs(self, tree: SourceTree) -> List[Finding]:
        messages = tree.find(MESSAGES_PATH)
        wire = tree.find(WIRE_PATH)
        if messages is None or wire is None:
            return []
        findings: List[Finding] = []
        classes = _message_classes(messages)
        entries, functions, table_line = _codec_table(wire)
        if table_line is None:
            return [
                Finding(self.name, WIRE_PATH, 1, "no _CODECS table found in the wire module")
            ]
        covered = {cls for _, cls, _, _, _ in entries}
        for cls_name, (lineno, fields) in sorted(classes.items()):
            if cls_name not in covered:
                findings.append(
                    Finding(
                        self.name,
                        MESSAGES_PATH,
                        lineno,
                        f"message class {cls_name} has no codec registered in "
                        f"runtime/wire.py _CODECS",
                    )
                )
            for field_name, annotation, field_line in fields:
                if not _wire_safe(annotation):
                    findings.append(
                        Finding(
                            self.name,
                            MESSAGES_PATH,
                            field_line,
                            f"{cls_name}.{field_name} has non-wire-safe type "
                            f"{annotation!r}",
                        )
                    )
        for kind, cls, enc, dec, lineno in entries:
            if cls not in classes and cls != "Message":
                findings.append(
                    Finding(
                        self.name,
                        WIRE_PATH,
                        lineno,
                        f"_CODECS entry {kind!r} names {cls or '<non-class>'}, which is "
                        f"not a Message subclass in runtime/messages.py",
                    )
                )
            for role, func_name in (("encoder", enc), ("decoder", dec)):
                if func_name not in functions:
                    findings.append(
                        Finding(
                            self.name,
                            WIRE_PATH,
                            lineno,
                            f"_CODECS entry {kind!r} has no {role} "
                            f"({func_name or '<missing>'} is not defined in the module)",
                        )
                    )
        return findings

    # -------------------------------------------------------------- #
    def _check_fleet_symmetry(self, tree: SourceTree) -> List[Finding]:
        protocol = tree.find(FLEET_PROTOCOL_PATH)
        if protocol is None:
            return []
        findings: List[Finding] = []
        built = _built_control_kinds(protocol, builders=("_frame", "ControlFrame"))
        vocabulary, vocab_line = _frame_kinds_vocabulary(protocol)
        if vocab_line is None:
            return [
                Finding(
                    self.name, FLEET_PROTOCOL_PATH, 1,
                    "no _FRAME_KINDS parser vocabulary found",
                )
            ]
        for kind, lineno in built:
            if kind not in vocabulary:
                findings.append(
                    Finding(
                        self.name,
                        FLEET_PROTOCOL_PATH,
                        lineno,
                        f"fleet frame kind {kind!r} is built but missing from the "
                        f"_FRAME_KINDS parser vocabulary",
                    )
                )
        built_kinds = {kind for kind, _ in built}
        for kind in sorted(vocabulary - built_kinds):
            findings.append(
                Finding(
                    self.name,
                    FLEET_PROTOCOL_PATH,
                    vocab_line,
                    f"fleet frame kind {kind!r} is parseable but no builder "
                    f"constructs it",
                )
            )
        return findings

    # -------------------------------------------------------------- #
    def _check_proc_symmetry(self, tree: SourceTree) -> List[Finding]:
        worker = tree.find(PROC_WORKER_PATH)
        backend = tree.find(PROC_BACKEND_PATH)
        if worker is None or backend is None:
            return []
        findings: List[Finding] = []
        pairs = (
            (worker, PROC_WORKER_PATH, backend, "runtime/proc_backend.py"),
            (backend, PROC_BACKEND_PATH, worker, "runtime/proc_worker.py"),
        )
        for sender, sender_path, receiver, receiver_path in pairs:
            sent = _built_control_kinds(sender)
            consumed = _checked_control_kinds(receiver)
            for kind, lineno in sent:
                if kind not in consumed:
                    findings.append(
                        Finding(
                            self.name,
                            sender_path,
                            lineno,
                            f"handshake ControlFrame kind {kind!r} is sent here but "
                            f"never examined by {receiver_path}",
                        )
                    )
        return findings
