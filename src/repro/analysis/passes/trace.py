"""trace-registry: every trace event is declared once and emitted correctly.

The observability layer's single source of truth is the ``EVENT_KINDS``
dict literal in ``obs/events.py`` — it defines the JSONL/wire codec (field
order) and the vocabulary every ``recorder.emit(...)`` call site may use.
Two families of checks keep the registry and its call sites honest:

1. **registry well-formedness** — ``EVENT_KINDS`` must be a plain dict
   literal of ``EventKind(...)`` literals (this pass reads it from the AST
   without importing the package); each entry's key must match its
   ``name=``, carry a non-empty ``doc``, and declare its payload as a
   tuple of unique string field names.
2. **emit-site conformance** — every ``<recorder>.emit(t, kind, ...)``
   call in the package must name its kind as a string literal (a computed
   kind defeats static checking) registered in ``EVENT_KINDS``, and pass
   exactly the declared fields as keywords.  A misspelled kind or field is
   a red lint line instead of a mid-run ``ValueError`` inside a worker.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.analysis.base import AnalysisPass, Finding, SourceFile, SourceTree, register_pass

EVENTS_PATH = "obs/events.py"

#: receivers whose ``.emit`` is the trace API (plan.recorder, self._recorder,
#: a local ``recorder`` binding); other observers use different verbs
_RECORDER_NAMES = {"recorder", "_recorder"}


def _const_str(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _registry_entries(
    source: SourceFile,
) -> Tuple[Dict[str, Tuple[int, Optional[str], Optional[List[str]]]], Optional[int]]:
    """``EVENT_KINDS`` as {key: (lineno, doc, fields)} plus the table line.

    ``doc``/``fields`` are None when the entry is not the expected literal
    shape (reported by the caller); the table line is None when no
    ``EVENT_KINDS`` dict literal exists at module level.
    """
    for node in source.tree.body:
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        target = node.targets[0] if isinstance(node, ast.Assign) else node.target
        if not (isinstance(target, ast.Name) and target.id == "EVENT_KINDS"):
            continue
        if not isinstance(node.value, ast.Dict):
            return {}, node.lineno
        entries: Dict[str, Tuple[int, Optional[str], Optional[List[str]]]] = {}
        for key, value in zip(node.value.keys, node.value.values):
            kind = _const_str(key)
            if kind is None:
                continue
            doc: Optional[str] = None
            fields: Optional[List[str]] = None
            if isinstance(value, ast.Call):
                for kw in value.keywords:
                    if kw.arg == "doc":
                        doc = _const_str(kw.value)
                    elif kw.arg == "fields" and isinstance(kw.value, ast.Tuple):
                        names = [_const_str(e) for e in kw.value.elts]
                        if all(n is not None for n in names):
                            fields = [n for n in names if n is not None]
            entries[kind] = (key.lineno, doc, fields)
        return entries, node.lineno
    return {}, None


def _registry_name_mismatches(source: SourceFile) -> List[Tuple[str, int]]:
    """Entries whose dict key and ``name=`` literal disagree."""
    out: List[Tuple[str, int]] = []
    for node in source.tree.body:
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        target = node.targets[0] if isinstance(node, ast.Assign) else node.target
        if not (isinstance(target, ast.Name) and target.id == "EVENT_KINDS"):
            continue
        if not isinstance(node.value, ast.Dict):
            return out
        for key, value in zip(node.value.keys, node.value.values):
            kind = _const_str(key)
            if kind is None or not isinstance(value, ast.Call):
                continue
            names = [_const_str(kw.value) for kw in value.keywords if kw.arg == "name"]
            if not names or names[0] != kind:
                out.append((kind, key.lineno))
    return out


def _receiver_is_recorder(func: ast.Attribute) -> bool:
    value = func.value
    if isinstance(value, ast.Name):
        return value.id in _RECORDER_NAMES
    if isinstance(value, ast.Attribute):
        return value.attr in _RECORDER_NAMES
    return False


def _emit_calls(source: SourceFile) -> List[ast.Call]:
    calls: List[ast.Call] = []
    for node in ast.walk(source.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
            and _receiver_is_recorder(node.func)
        ):
            calls.append(node)
    return calls


@register_pass
class TraceRegistryPass(AnalysisPass):
    name = "trace"
    description = (
        "every EVENT_KINDS entry is documented with literal fields, and "
        "every recorder.emit site uses a registered kind with exactly the "
        "declared fields"
    )

    def run(self, tree: SourceTree) -> List[Finding]:
        events = tree.find(EVENTS_PATH)
        if events is None:
            return []  # analyzing a tree without the obs layer
        findings: List[Finding] = []
        entries, table_line = _registry_entries(events)
        if table_line is None:
            return [
                Finding(self.name, EVENTS_PATH, 1, "no EVENT_KINDS dict literal found")
            ]
        findings.extend(self._check_registry(events, entries))
        # fields=None means the entry itself is malformed (reported above);
        # its emit sites are still "registered", just field-uncheckable
        registry = {kind: fields for kind, (_, _, fields) in entries.items()}
        for source in tree.files:
            findings.extend(self._check_emit_sites(source, registry))
        return findings

    # -------------------------------------------------------------- #
    def _check_registry(self, events: SourceFile, entries) -> List[Finding]:
        findings: List[Finding] = []
        for kind, lineno in _registry_name_mismatches(events):
            findings.append(
                Finding(
                    self.name,
                    EVENTS_PATH,
                    lineno,
                    f"EVENT_KINDS entry {kind!r} does not set name={kind!r} "
                    f"(key and EventKind.name must agree)",
                )
            )
        for kind, (lineno, doc, fields) in sorted(entries.items()):
            if not doc:
                findings.append(
                    Finding(
                        self.name,
                        EVENTS_PATH,
                        lineno,
                        f"EVENT_KINDS entry {kind!r} has no literal doc string "
                        f"(every trace event must explain itself)",
                    )
                )
            if fields is None:
                findings.append(
                    Finding(
                        self.name,
                        EVENTS_PATH,
                        lineno,
                        f"EVENT_KINDS entry {kind!r} does not declare fields as a "
                        f"tuple of string literals (field order IS the wire codec)",
                    )
                )
            elif len(set(fields)) != len(fields):
                findings.append(
                    Finding(
                        self.name,
                        EVENTS_PATH,
                        lineno,
                        f"EVENT_KINDS entry {kind!r} declares duplicate fields "
                        f"{tuple(fields)}",
                    )
                )
        return findings

    # -------------------------------------------------------------- #
    def _check_emit_sites(
        self, source: SourceFile, registry: Dict[str, Optional[List[str]]]
    ) -> List[Finding]:
        findings: List[Finding] = []
        for call in _emit_calls(source):
            if len(call.args) < 2:
                continue  # emit(t) alone cannot even run; leave it to tests
            if len(call.args) > 3:
                findings.append(
                    Finding(
                        self.name,
                        source.rel,
                        call.lineno,
                        "recorder.emit takes (t, kind, worker) positionally; "
                        "event fields must be keywords",
                    )
                )
                continue
            kind = _const_str(call.args[1])
            if kind is None:
                findings.append(
                    Finding(
                        self.name,
                        source.rel,
                        call.lineno,
                        "recorder.emit with a computed kind defeats the static "
                        "registry check; use a string literal",
                    )
                )
                continue
            if kind not in registry:
                findings.append(
                    Finding(
                        self.name,
                        source.rel,
                        call.lineno,
                        f"recorder.emit uses unregistered trace event kind {kind!r} "
                        f"(declare it in obs/events.py EVENT_KINDS)",
                    )
                )
                continue
            declared = registry[kind]
            if declared is None:
                continue  # malformed registry entry, reported once above
            if any(kw.arg is None for kw in call.keywords):
                continue  # **splat: field names are dynamic, tests cover these
            passed = sorted(kw.arg for kw in call.keywords if kw.arg != "worker")
            if passed != sorted(declared):
                findings.append(
                    Finding(
                        self.name,
                        source.rel,
                        call.lineno,
                        f"recorder.emit({kind!r}) passes fields {tuple(passed)} "
                        f"but the registry declares {tuple(sorted(declared))}",
                    )
                )
        return findings
