"""determinism: no unseeded randomness, no wall clocks in virtual time.

The sim backend's bit-identical-per-seed guarantee (and the thread
backend's deterministic mode) rests on two conventions:

* every Generator descends from a seed — via :class:`~repro.utils.rng.
  RngTree` streams or the fixed-seed :func:`~repro.utils.rng.fallback_rng`
  — so ``np.random.default_rng()`` *with no argument* is banned
  everywhere, as is touching numpy's module-level RNG state or importing
  the process-global stdlib ``random`` module;
* the virtual-time modules (``cluster/``, ``core/``, ``nn/``,
  ``tensor/``, ``optim/``, ``data/``) never read a wall clock — time
  there comes from the simulator.  The real-time runtimes (``runtime/``,
  ``fleet/``, everything else) are allowlisted: wall clocks are their
  job.

A genuinely-needed exception (e.g. the trainer's wall-time *reporting*)
gets a site-level ``# lint-ok: determinism`` comment, not an allowlist
entry.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.base import AnalysisPass, Finding, SourceFile, SourceTree, register_pass

#: module prefixes where time is virtual and wall-clock reads are bugs
VIRTUAL_TIME_PREFIXES = ("cluster/", "core/", "nn/", "tensor/", "optim/", "data/")

#: clock-reading callables in the time module (sleep is not a clock read)
_CLOCK_FUNCS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
}

#: numpy module-level RNG state (legacy global API)
_NP_GLOBAL_RNG = {
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "shuffle", "permutation", "choice", "normal", "uniform",
    "standard_normal", "get_state", "set_state",
}


def _dotted(node: ast.AST) -> str:
    """'a.b.c' for an attribute chain over Names ('' otherwise)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _time_imports(source: SourceFile) -> Set[str]:
    """Clock functions this module imported bare (``from time import X``)."""
    names: Set[str] = set()
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _CLOCK_FUNCS:
                    names.add(alias.asname or alias.name)
    return names


@register_pass
class DeterminismPass(AnalysisPass):
    name = "determinism"
    description = (
        "no unseeded default_rng(), no module-level RNG state, and no "
        "wall-clock reads inside the virtual-time modules"
    )

    def run(self, tree: SourceTree) -> List[Finding]:
        findings: List[Finding] = []
        for source in tree.files:
            findings.extend(self._check_file(source))
        return findings

    def _check_file(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        virtual = source.rel.startswith(VIRTUAL_TIME_PREFIXES)
        bare_clocks = _time_imports(source)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        findings.append(
                            Finding(
                                self.name, source.rel, node.lineno,
                                "stdlib random is process-global state; draw from a "
                                "seeded numpy Generator (repro.utils.rng) instead",
                            )
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                findings.append(
                    Finding(
                        self.name, source.rel, node.lineno,
                        "stdlib random is process-global state; draw from a "
                        "seeded numpy Generator (repro.utils.rng) instead",
                    )
                )
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted in ("np.random.default_rng", "numpy.random.default_rng"):
                if not node.args and not node.keywords:
                    findings.append(
                        Finding(
                            self.name, source.rel, node.lineno,
                            "unseeded np.random.default_rng() — every stream must "
                            "descend from a seed (use repro.utils.rng.fallback_rng "
                            "for optional-rng APIs)",
                        )
                    )
            elif dotted.startswith(("np.random.", "numpy.random.")):
                attr = dotted.rsplit(".", 1)[1]
                if attr in _NP_GLOBAL_RNG:
                    findings.append(
                        Finding(
                            self.name, source.rel, node.lineno,
                            f"{dotted}() touches numpy's module-level RNG state; "
                            f"use an explicit Generator",
                        )
                    )
            if virtual:
                is_clock = (
                    dotted.startswith("time.") and dotted[5:] in _CLOCK_FUNCS
                ) or (isinstance(node.func, ast.Name) and node.func.id in bare_clocks)
                if is_clock:
                    findings.append(
                        Finding(
                            self.name, source.rel, node.lineno,
                            f"wall-clock read {dotted or ast.unparse(node.func)}() in a "
                            f"virtual-time module — time here must come from the "
                            f"simulator clock",
                        )
                    )
        return findings
