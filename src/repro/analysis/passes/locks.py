"""lock-discipline: guarded-by annotations + a static lock-order graph.

**Convention.** A shared attribute declares its guard with a trailing
comment where it is initialized::

    self._items = deque()  # guarded-by: _cond

The pass then flags any *write* to that attribute — assignment, augmented
assignment, subscript store, ``del``, or a mutating method call
(``append``/``pop``/``update``/...) — outside a lexical
``with self._cond:`` block, in any method of the class except
``__init__`` (construction happens-before sharing).  Reads are not
checked: many are intentionally lock-free (racy len hints), and the
writes are where corruption comes from.  Nested functions are scanned
with an *empty* held-set — a closure cannot prove its caller holds the
lock.

**Lock ordering.** Independently of annotations, the pass collects every
lexically nested ``with``-acquisition of lock-like objects (attributes
matching ``lock|cond|mutex``, labelled ``Class.attr``) into one directed
graph across the whole tree and fails on cycles — the static half of the
deadlock argument.  The runtime half is
:mod:`repro.analysis.lockorder` (``REPRO_LOCK_TRACE=1``), which checks
the orders actually taken by the thread/gossip tests.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.base import AnalysisPass, Finding, SourceFile, SourceTree, register_pass

_GUARD_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_]\w*)")
_LOCKISH_RE = re.compile(r"lock|cond|mutex", re.IGNORECASE)

#: method names that mutate their receiver in place
_MUTATORS = {
    "append", "appendleft", "extend", "extendleft", "insert", "remove",
    "pop", "popleft", "popitem", "clear", "update", "add", "discard",
    "setdefault", "sort", "reverse",
}


def _self_attr(node: ast.AST) -> Optional[str]:
    """'X' when ``node`` is exactly ``self.X``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _written_self_attr(node: ast.AST) -> Optional[str]:
    """The ``self.X`` a store/del/mutator expression writes, if any."""
    if isinstance(node, ast.Attribute) and isinstance(node.ctx, (ast.Store, ast.Del)):
        return _self_attr(node)
    if isinstance(node, ast.Subscript) and isinstance(node.ctx, (ast.Store, ast.Del)):
        return _self_attr(node.value)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _MUTATORS:
            base = node.func.value
            attr = _self_attr(base)
            if attr is not None:
                return attr
            if isinstance(base, ast.Subscript):  # self.X[k].append(...)
                return _self_attr(base.value)
    return None


def _lock_node_name(expr: ast.AST, class_name: Optional[str]) -> Optional[str]:
    """Graph label for a ``with`` item acquiring a lock-like object."""
    attr = _self_attr(expr)
    if attr is not None:
        if _LOCKISH_RE.search(attr):
            return f"{class_name}.{attr}" if class_name else attr
        return None
    if isinstance(expr, ast.Attribute) and _LOCKISH_RE.search(expr.attr):
        return expr.attr  # other_obj.model_lock — identity is the attr name
    if isinstance(expr, ast.Subscript):  # self._send_locks[worker]
        inner = _self_attr(expr.value)
        if inner is not None and _LOCKISH_RE.search(inner):
            return f"{class_name}.{inner}" if class_name else inner
    if isinstance(expr, ast.Name) and _LOCKISH_RE.search(expr.id):
        return expr.id
    return None


def _collect_guards(source: SourceFile, cls: ast.ClassDef) -> Dict[str, Tuple[str, int]]:
    """attr -> (guard lock attr, decl lineno) from guarded-by comments."""
    guards: Dict[str, Tuple[str, int]] = {}
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        for target in targets:
            attr = _self_attr(target)
            if attr is None:
                continue
            match = _GUARD_RE.search(source.line_text(node.lineno))
            if match:
                guards[attr] = (match.group(1), node.lineno)
    return guards


class _ScopeScanner:
    """Walk one method, tracking which ``self.*`` locks are lexically held."""

    def __init__(
        self,
        rule: str,
        source: SourceFile,
        class_name: str,
        guards: Dict[str, Tuple[str, int]],
        findings: List[Finding],
    ) -> None:
        self.rule = rule
        self.source = source
        self.class_name = class_name
        self.guards = guards
        self.findings = findings

    def scan(self, node: ast.AST, held: FrozenSet[str]) -> None:
        attr = _written_self_attr(node)
        if attr is not None and attr in self.guards:
            guard, _ = self.guards[attr]
            if guard not in held:
                self.findings.append(
                    Finding(
                        self.rule,
                        self.source.rel,
                        node.lineno,
                        f"{self.class_name}: write to self.{attr} outside "
                        f"'with self.{guard}' (declared guarded-by: {guard})",
                    )
                )
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in node.items:
                self.scan(item.context_expr, frozenset(acquired))
                item_attr = _self_attr(item.context_expr)
                if item_attr is not None:
                    acquired.add(item_attr)
            for stmt in node.body:
                self.scan(stmt, frozenset(acquired))
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # a nested scope cannot assume its caller holds anything
            for child in ast.iter_child_nodes(node):
                self.scan(child, frozenset())
            return
        for child in ast.iter_child_nodes(node):
            self.scan(child, held)


class _OrderCollector:
    """Lexical lock-nesting edges: held -> acquired, with first witness."""

    def __init__(self) -> None:
        self.edges: Dict[Tuple[str, str], Tuple[str, int]] = {}

    def collect(self, source: SourceFile) -> None:
        for node in source.tree.body:
            self._walk(node, [], None, source)

    def _walk(
        self,
        node: ast.AST,
        held: List[str],
        class_name: Optional[str],
        source: SourceFile,
    ) -> None:
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                self._walk(child, held, node.name, source)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = list(held)
            for item in node.items:
                name = _lock_node_name(item.context_expr, class_name)
                if name is None:
                    continue
                for outer in acquired:
                    if outer != name and (outer, name) not in self.edges:
                        self.edges[(outer, name)] = (source.rel, node.lineno)
                acquired.append(name)
            for child in node.body:
                self._walk(child, acquired, class_name, source)
            return
        for child in ast.iter_child_nodes(node):
            self._walk(child, held, class_name, source)


def _static_cycle(
    edges: Dict[Tuple[str, str], Tuple[str, int]]
) -> Optional[List[str]]:
    adjacency: Dict[str, List[str]] = {}
    for held, acquired in edges:
        adjacency.setdefault(held, []).append(acquired)
    state: Dict[str, int] = {}

    def dfs(node: str, path: List[str]) -> Optional[List[str]]:
        state[node] = 1
        path.append(node)
        for nxt in adjacency.get(node, []):
            if state.get(nxt, 0) == 1:
                return path[path.index(nxt):] + [nxt]
            if state.get(nxt, 0) == 0:
                cycle = dfs(nxt, path)
                if cycle is not None:
                    return cycle
        state[node] = 2
        path.pop()
        return None

    for start in sorted(adjacency):
        if state.get(start, 0) == 0:
            cycle = dfs(start, [])
            if cycle is not None:
                return cycle
    return None


@register_pass
class LockDisciplinePass(AnalysisPass):
    name = "locks"
    description = (
        "writes to '# guarded-by:' attributes must hold the declared lock; "
        "the static lock-acquisition graph must be acyclic"
    )

    def run(self, tree: SourceTree) -> List[Finding]:
        findings: List[Finding] = []
        order = _OrderCollector()
        for source in tree.files:
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    self._check_class(source, node, findings)
            order.collect(source)
        cycle = _static_cycle(order.edges)
        if cycle is not None:
            steps = " -> ".join(cycle)
            path, line = order.edges[(cycle[0], cycle[1])]
            findings.append(
                Finding(
                    self.name, path, line,
                    f"static lock acquisition cycle: {steps}",
                )
            )
        return findings

    def _check_class(
        self, source: SourceFile, cls: ast.ClassDef, findings: List[Finding]
    ) -> None:
        guards = _collect_guards(source, cls)
        if not guards:
            return
        scanner = _ScopeScanner(self.name, source, cls.name, guards, findings)
        for node in cls.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name == "__init__":
                continue  # construction happens-before sharing
            for child in node.body:
                scanner.scan(child, frozenset())
