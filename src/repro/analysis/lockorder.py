"""Runtime lock-order tracing: named locks + an acquisition-order graph.

The static lock-discipline pass (:mod:`repro.analysis.passes.locks`) can
only see lexical ``with`` nesting.  This module is its runtime companion:
the concurrent runtimes create their locks through :func:`make_lock` /
:func:`make_condition`, which return plain :mod:`threading` primitives in
normal operation and *traced* wrappers when the ``REPRO_LOCK_TRACE=1``
environment variable is set.  Traced locks record, per thread, every
"held A, then acquired B" event into one global directed graph; after a
test run, :func:`assert_acyclic` fails with the offending cycle if any
acquisition order was ever inverted.

Lock names are stable identity strings (``"Mailbox._cond"``,
``"DistributedWorker.model_lock"``) rather than object ids, so two Mailbox
instances share a node — exactly what deadlock reasoning wants: a cycle
between *classes* of locks is the bug, whichever instances exhibit it.
(The known false-positive risk — nesting two distinct instances of the
same class in both orders — does not occur in this codebase; if it ever
does, give the sites distinct names.)

Tracing is off by default and costs nothing when off: the factories
return raw ``threading`` objects.  The traced wrapper is deliberately a
*plain* acquire/release object (no ``_release_save``/``_is_owned``), so
``threading.Condition`` falls back to its generic non-reentrant paths,
which are correct for the Lock-backed conditions this repo uses.
"""

from __future__ import annotations

import _thread
import os
import threading
from typing import Dict, List, Optional, Tuple

#: set to ``1`` to have make_lock()/make_condition() return tracing wrappers
LOCK_TRACE_ENV = "REPRO_LOCK_TRACE"


def trace_enabled() -> bool:
    """Whether locks created *now* will be traced."""
    return os.environ.get(LOCK_TRACE_ENV, "") not in ("", "0")


class LockOrderViolation(RuntimeError):
    """The recorded acquisition graph contains a cycle (deadlock risk)."""


class _Recorder:
    """The global acquisition-order graph, fed by every traced lock.

    Uses a raw ``_thread`` lock internally so recording can never recurse
    into tracing; per-thread held stacks live in a ``threading.local``.
    """

    def __init__(self) -> None:
        self._mutex = _thread.allocate_lock()
        self._local = threading.local()
        # (held, acquired) -> (thread name, ordinal) for the first witness
        self._edges: Dict[Tuple[str, str], Tuple[str, int]] = {}
        self._count = 0

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def acquired(self, name: str) -> None:
        stack = self._stack()
        if stack:
            thread = threading.current_thread().name
            with self._mutex:
                for held in stack:
                    if held != name and (held, name) not in self._edges:
                        self._count += 1
                        self._edges[(held, name)] = (thread, self._count)
        stack.append(name)

    def released(self, name: str) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):  # locks may unnest out of order
            if stack[i] == name:
                del stack[i]
                return

    def edges(self) -> Dict[Tuple[str, str], Tuple[str, int]]:
        with self._mutex:
            return dict(self._edges)

    def reset(self) -> None:
        with self._mutex:
            self._edges.clear()
            self._count = 0


_RECORDER = _Recorder()


class TracedLock:
    """A ``threading.Lock`` that reports acquisitions to the recorder."""

    def __init__(self, name: str, recorder: _Recorder = _RECORDER) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._recorder = recorder

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._lock.acquire(blocking, timeout)
        if ok:
            self._recorder.acquired(self.name)
        return ok

    def release(self) -> None:
        self._recorder.released(self.name)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TracedLock({self.name!r}, locked={self.locked()})"


def make_lock(name: str):
    """A ``threading.Lock`` — traced under :data:`LOCK_TRACE_ENV`.

    ``name`` should be a stable ``Class.attribute`` identity string; it
    becomes the node label in the acquisition-order graph.
    """
    if trace_enabled():
        return TracedLock(name)
    return threading.Lock()


def make_condition(name: str) -> threading.Condition:
    """A ``threading.Condition`` — over a traced lock when tracing is on.

    ``Condition.wait`` releases and re-acquires through the wrapper, so
    waits show up in the graph exactly like explicit acquisitions.
    """
    if trace_enabled():
        return threading.Condition(TracedLock(name))
    return threading.Condition()


# ---------------------------------------------------------------------- #
# graph queries
# ---------------------------------------------------------------------- #
def edges() -> Dict[Tuple[str, str], Tuple[str, int]]:
    """The recorded acquisition edges: (held, acquired) -> first witness."""
    return _RECORDER.edges()


def reset() -> None:
    """Drop all recorded edges (test isolation)."""
    _RECORDER.reset()


def find_cycle(
    graph: Optional[Dict[Tuple[str, str], Tuple[str, int]]] = None
) -> Optional[List[str]]:
    """A lock cycle as ``[a, b, ..., a]``, or None when the graph is a DAG."""
    edge_map = edges() if graph is None else graph
    adjacency: Dict[str, List[str]] = {}
    for held, acquired in edge_map:
        adjacency.setdefault(held, []).append(acquired)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in adjacency}
    for start in sorted(adjacency):
        if color.get(start, WHITE) != WHITE:
            continue
        path: List[str] = []
        # iterative DFS so a pathological graph cannot hit recursion limits
        stack: List[Tuple[str, int]] = [(start, 0)]
        while stack:
            node, idx = stack[-1]
            if idx == 0:
                color[node] = GRAY
                path.append(node)
            succs = adjacency.get(node, [])
            if idx < len(succs):
                stack[-1] = (node, idx + 1)
                nxt = succs[idx]
                state = color.get(nxt, WHITE)
                if state == GRAY:
                    return path[path.index(nxt):] + [nxt]
                if state == WHITE:
                    stack.append((nxt, 0))
            else:
                color[node] = BLACK
                path.pop()
                stack.pop()
    return None


def assert_acyclic() -> None:
    """Raise :class:`LockOrderViolation` if any lock cycle was recorded."""
    cycle = find_cycle()
    if cycle is None:
        return
    edge_map = edges()
    details = []
    for a, b in zip(cycle, cycle[1:]):
        thread, ordinal = edge_map[(a, b)]
        details.append(f"  {a} -> {b}  (first seen on thread {thread!r}, edge #{ordinal})")
    raise LockOrderViolation(
        "lock acquisition cycle recorded at runtime:\n" + "\n".join(details)
    )
