"""Named workload configurations for every table and figure.

Two profiles are provided:

* ``fast`` (default) — shape-preserving laptop scale: MLP+BN replicas on the
  synthetic datasets, ~24 scaled "epochs", the heavy-tailed delay model that
  reproduces the paper's staleness regime.  A full bench suite finishes in
  tens of minutes of CPU.
* ``full`` — larger datasets/budgets (and the ResNet models for the paper
  configurations); hours of CPU.  Select with ``REPRO_BENCH_PROFILE=full``.

The learning-rate/momentum regime is documented in DESIGN.md and
EXPERIMENTS.md: the paper's lr=0.3 without momentum is replaced by
lr=0.075 with server momentum 0.9 ("following [8]", which the paper's
training recipe cites), because momentum is what makes gradient staleness
damaging at laptop scale.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.core.config import ClusterConfig, PredictorConfig, TrainingConfig

#: Table 1 of the paper (test error %, Async-BN columns) — the reference
#: shape every bench compares against.
PAPER_TABLE1 = {
    # (dataset, workers, algorithm): test_error_percent
    ("cifar", 1, "sgd"): 5.15,
    ("cifar", 4, "ssgd"): 5.57,
    ("cifar", 4, "asgd"): 5.65,
    ("cifar", 4, "dc-asgd"): 5.22,
    ("cifar", 4, "lc-asgd"): 4.87,
    ("cifar", 8, "ssgd"): 6.01,
    ("cifar", 8, "asgd"): 6.27,
    ("cifar", 8, "dc-asgd"): 5.58,
    ("cifar", 8, "lc-asgd"): 4.96,
    ("cifar", 16, "ssgd"): 6.20,
    ("cifar", 16, "asgd"): 6.41,
    ("cifar", 16, "dc-asgd"): 5.83,
    ("cifar", 16, "lc-asgd"): 5.52,
    ("imagenet", 4, "ssgd"): 24.49,
    ("imagenet", 4, "asgd"): 24.90,
    ("imagenet", 4, "dc-asgd"): 24.46,
    ("imagenet", 4, "lc-asgd"): 23.86,
    ("imagenet", 8, "ssgd"): 25.11,
    ("imagenet", 8, "asgd"): 25.64,
    ("imagenet", 8, "dc-asgd"): 24.89,
    ("imagenet", 8, "lc-asgd"): 24.07,
    ("imagenet", 16, "ssgd"): 25.62,
    ("imagenet", 16, "asgd"): 25.81,
    ("imagenet", 16, "dc-asgd"): 25.23,
    ("imagenet", 16, "lc-asgd"): 24.82,
}

#: Tables 2-3 of the paper: per-iteration predictor overhead (ms).
PAPER_OVERHEAD = {
    ("cifar", 4): {"loss_pred_ms": 1.28, "step_pred_ms": 1.37, "total_ms": 32.23, "overhead_pct": 8.22},
    ("cifar", 8): {"loss_pred_ms": 1.29, "step_pred_ms": 1.43, "total_ms": 32.84, "overhead_pct": 8.28},
    ("cifar", 16): {"loss_pred_ms": 1.30, "step_pred_ms": 1.48, "total_ms": 34.64, "overhead_pct": 8.03},
    ("imagenet", 4): {"loss_pred_ms": 1.27, "step_pred_ms": 1.36, "total_ms": 183.23, "overhead_pct": 1.44},
    ("imagenet", 8): {"loss_pred_ms": 1.29, "step_pred_ms": 1.45, "total_ms": 185.68, "overhead_pct": 1.48},
    ("imagenet", 16): {"loss_pred_ms": 1.33, "step_pred_ms": 1.50, "total_ms": 188.71, "overhead_pct": 1.50},
}


def bench_profile() -> str:
    """Active bench profile: ``fast`` (default) or ``full``."""
    profile = os.environ.get("REPRO_BENCH_PROFILE", "fast").lower()
    if profile not in ("fast", "full"):
        raise ValueError(f"REPRO_BENCH_PROFILE must be fast|full, got {profile!r}")
    return profile


def _delay_cluster(mean_batch_time: float) -> ClusterConfig:
    """The heavy-tailed delay model shared by all distributed benches."""
    return ClusterConfig(
        mean_batch_time=mean_batch_time,
        compute_heterogeneity=0.3,
        compute_jitter=0.25,
        straggler_probability=0.08,
        straggler_slowdown=10.0,
        link_latency=1e-3,
        link_jitter=0.1,
        network_heterogeneity=0.1,
    )


def _predictors() -> PredictorConfig:
    return PredictorConfig(
        loss_hidden=16, step_hidden=16, loss_window=10, step_window=5, train_every=1
    )


def cifar_workload(
    algorithm: str,
    num_workers: int,
    bn_mode: Optional[str] = None,
    seed: int = 7,
    profile: Optional[str] = None,
    **overrides,
) -> TrainingConfig:
    """The CIFAR-10 stand-in workload behind Figures 2-4 and Table 1/2."""
    profile = profile or bench_profile()
    epochs = 24 if profile == "fast" else 60
    train_size = 2048 if profile == "fast" else 8192
    defaults = dict(
        algorithm=algorithm,
        num_workers=num_workers,
        model="mlp",
        model_kwargs={"hidden": (96, 48), "batch_norm": True},
        dataset="cifar",
        dataset_kwargs={"train_size": train_size, "test_size": 1024, "side": 8, "noise": 1.2},
        batch_size=64,
        epochs=epochs,
        base_lr=0.075,
        momentum=0.9,
        lr_milestones=(epochs // 2, (3 * epochs) // 4),
        lr_gamma=0.1,
        bn_mode=bn_mode or ("local" if algorithm == "sgd" else "async"),
        lc_lambda=0.7,
        compensation="damping",
        dc_lambda=0.04,
        dc_adaptive=True,
        predictor=_predictors(),
        cluster=_delay_cluster(0.03),
        eval_train_samples=512,
        eval_test_samples=1024,
        seed=seed,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


def imagenet_workload(
    algorithm: str,
    num_workers: int,
    bn_mode: Optional[str] = None,
    seed: int = 7,
    profile: Optional[str] = None,
    **overrides,
) -> TrainingConfig:
    """The ImageNet stand-in workload behind Figures 5-6 and Table 1/3."""
    profile = profile or bench_profile()
    epochs = 18 if profile == "fast" else 48
    train_size = 2700 if profile == "fast" else 10800
    defaults = dict(
        algorithm=algorithm,
        num_workers=num_workers,
        model="mlp",
        model_kwargs={"hidden": (160, 64), "batch_norm": True},
        dataset="imagenet",
        dataset_kwargs={"train_size": train_size, "test_size": 1350, "side": 12, "noise": 1.1},
        batch_size=64,
        epochs=epochs,
        base_lr=0.06,
        momentum=0.9,
        lr_milestones=(epochs // 2, (3 * epochs) // 4),
        lr_gamma=0.1,
        bn_mode=bn_mode or ("local" if algorithm == "sgd" else "async"),
        lc_lambda=0.7,
        compensation="damping",
        dc_lambda=0.04,
        dc_adaptive=True,
        predictor=_predictors(),
        cluster=_delay_cluster(0.18),  # ImageNet batches ~6x heavier (paper Tables 2-3)
        eval_train_samples=512,
        eval_test_samples=1350,
        seed=seed,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


def paper_reference(dataset: str, num_workers: int, algorithm: str) -> Optional[float]:
    """Paper Table 1 test error (%) for a cell, or None if absent."""
    return PAPER_TABLE1.get((dataset, num_workers, algorithm))


def throughput_workload(
    algorithm: str = "asgd",
    num_workers: int = 4,
    seed: int = 7,
    profile: Optional[str] = None,
    **overrides,
) -> TrainingConfig:
    """Small fixed-update workload for the backend throughput benchmark.

    Uses ``max_updates`` (not epochs) so both execution backends process an
    identical number of gradients and updates/sec is directly comparable.
    The cluster delay model is irrelevant to the thread backend's clock, so
    the sim numbers use the same heavy-tailed model as the other benches.
    """
    profile = profile or bench_profile()
    updates = 160 if profile == "fast" else 640
    defaults = dict(
        algorithm=algorithm,
        num_workers=num_workers,
        model="mlp",
        model_kwargs={"hidden": (64,), "batch_norm": True},
        dataset="cifar",
        dataset_kwargs={"train_size": 1024, "test_size": 512, "side": 8, "noise": 1.0},
        batch_size=64,
        epochs=1,
        max_updates=updates,
        base_lr=0.05,
        momentum=0.9,
        lr_milestones=(),
        bn_mode="local" if algorithm == "sgd" else "async",
        predictor=_predictors(),
        cluster=_delay_cluster(0.03),
        eval_train_samples=256,
        eval_test_samples=256,
        seed=seed,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)
