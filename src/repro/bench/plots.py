"""ASCII rendering of curves and tables (no plotting dependencies offline)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


def ascii_plot(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 18,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render named (x, y) series as an ASCII line chart.

    Each series gets a distinct marker; a legend and axis ranges are
    appended.  Intended for figure benches: the paper's learning curves
    render directly into CI logs.
    """
    if not series:
        raise ValueError("ascii_plot needs at least one series")
    markers = "ox+*#@%&"
    xs_all = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    ys_all = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    if xs_all.size == 0:
        raise ValueError("ascii_plot received empty series")
    x_lo, x_hi = float(xs_all.min()), float(xs_all.max())
    y_lo, y_hi = float(ys_all.min()), float(ys_all.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, (xs, ys)) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        for x, y in zip(np.asarray(xs, dtype=float), np.asarray(ys, dtype=float)):
            col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title.center(width + 10))
    top_label = f"{y_hi:.3g}"
    bottom_label = f"{y_lo:.3g}"
    label_width = max(len(top_label), len(bottom_label)) + 1
    for r, row in enumerate(grid):
        if r == 0:
            prefix = top_label.rjust(label_width)
        elif r == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * label_width + "+" + "-" * width)
    x_axis = f"{x_lo:.3g}".ljust(width - 8) + f"{x_hi:.3g}"
    lines.append(" " * (label_width + 1) + x_axis)
    if xlabel or ylabel:
        lines.append(" " * (label_width + 1) + f"x: {xlabel}   y: {ylabel}")
    legend = "   ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * (label_width + 1) + legend)
    return "\n".join(lines)


def ascii_scatter(
    actual: Sequence[float],
    predicted: Sequence[float],
    width: int = 72,
    height: int = 18,
    title: str = "",
) -> str:
    """Overlay actual vs predicted series against their index (Figs 7-8)."""
    actual = np.asarray(actual, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    idx = np.arange(len(actual))
    return ascii_plot(
        {"actual": (idx, actual), "predicted": (idx[: len(predicted)], predicted)},
        width=width,
        height=height,
        title=title,
        xlabel="iteration",
        ylabel="value",
    )
