"""Grid runners, result aggregation, and the perf trajectory for the benches."""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import TrainingConfig
from repro.core.metrics import RunResult, degradation
from repro.utils.logging import get_logger

logger = get_logger("bench.harness")


def record_trajectory(
    name: str, metrics: Dict[str, float], root: Optional[str] = None
) -> Optional[str]:
    """Append one dated entry to the ``BENCH_<name>.json`` trajectory.

    The trajectory is how perf regressions stay visible across PRs: each
    recorded bench run appends ``{"date", "metrics"}`` to a committed JSON
    file at the repo root.  Recording is opt-in — without an explicit
    ``root`` this is a no-op unless ``REPRO_BENCH_RECORD`` is set — so
    ordinary pytest/CI runs never dirty the working tree.  Returns the
    path written, or None when recording is off.
    """
    if root is None:
        if not os.environ.get("REPRO_BENCH_RECORD"):
            return None
        root = os.environ.get("REPRO_BENCH_DIR") or str(
            Path(__file__).resolve().parents[3]
        )
    path = Path(root) / f"BENCH_{name}.json"
    history = json.loads(path.read_text()) if path.exists() else []
    clean = {
        key: (round(value, 6) if isinstance(value, float) else value)
        for key, value in metrics.items()
    }
    history.append({"date": time.strftime("%Y-%m-%d"), "metrics": clean})
    path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    logger.info("recorded bench trajectory entry: %s", path)
    return str(path)


@dataclass
class GridResult:
    """Results of a (algorithm x workers) grid, averaged over seeds."""

    cells: Dict[Tuple[str, int], List[RunResult]] = field(default_factory=dict)

    def add(self, result: RunResult) -> None:
        """File one run under its (algorithm, workers) cell."""
        self.cells.setdefault((result.algorithm, result.num_workers), []).append(result)

    def mean_test_error(self, algorithm: str, workers: int) -> float:
        """Seed-averaged final test error of a cell."""
        runs = self.cells[(algorithm, workers)]
        return float(np.mean([r.final_test_error for r in runs]))

    def mean_degradation(self, algorithm: str, workers: int, baseline: float) -> float:
        """Seed-averaged Table-1 degradation (%) against ``baseline`` error."""
        return degradation(self.mean_test_error(algorithm, workers), baseline)

    def runs(self, algorithm: str, workers: int) -> List[RunResult]:
        """All seed runs of a cell."""
        return self.cells[(algorithm, workers)]


class ExperimentGrid:
    """Declarative (algorithm x workers x seeds) sweep over a workload factory.

    A bench-flavored veneer over the campaign layer: the grid expands into
    :class:`~repro.experiments.spec.ExperimentSpec` objects and runs through
    a :class:`~repro.experiments.campaign.Campaign` (which also dedupes the
    sgd cells that normalize to one worker).  Pass ``executor`` to
    parallelize sim grids across processes, or ``store`` to make a long
    bench resumable.
    """

    def __init__(
        self,
        workload: Callable[..., TrainingConfig],
        algorithms: Sequence[str],
        worker_counts: Sequence[int],
        seeds: Sequence[int] = (7,),
        executor=None,
        store=None,
        **workload_kwargs,
    ) -> None:
        self.workload = workload
        self.algorithms = tuple(algorithms)
        self.worker_counts = tuple(worker_counts)
        self.seeds = tuple(seeds)
        self.executor = executor
        self.store = store
        self.workload_kwargs = workload_kwargs

    def specs(self):
        """The grid's ExperimentSpecs, in deterministic cell order."""
        from repro.experiments import ExperimentSpec

        # sgd configs normalize to one worker and the Campaign dedupes the
        # identical specs, so no special-casing here
        return [
            ExperimentSpec(
                self.workload(algorithm, workers, seed=seed, **self.workload_kwargs)
            )
            for algorithm in self.algorithms
            for workers in self.worker_counts
            for seed in self.seeds
        ]

    def run(self) -> GridResult:
        """Execute every cell (deduplicated, resumable) and aggregate."""
        from repro.experiments import Campaign

        report = Campaign(self.specs(), executor=self.executor, store=self.store).run()
        grid = GridResult()
        for result in report.results:
            grid.add(result)
        return grid


def run_grid(
    workload: Callable[..., TrainingConfig],
    algorithms: Sequence[str],
    worker_counts: Sequence[int],
    seeds: Sequence[int] = (7,),
    **kwargs,
) -> GridResult:
    """One-shot helper around :class:`ExperimentGrid`."""
    return ExperimentGrid(workload, algorithms, worker_counts, seeds, **kwargs).run()


def run_curves(
    workload: Callable[..., TrainingConfig],
    algorithms: Sequence[str],
    workers: int,
    seed: int = 7,
    **kwargs,
) -> Dict[str, RunResult]:
    """Run one seed per algorithm and return results keyed by algorithm."""
    from repro.runtime import run_experiment

    out: Dict[str, RunResult] = {}
    for algorithm in algorithms:
        config = workload(algorithm, workers, seed=seed, **kwargs)
        # through the backend registry (not DistributedTrainer directly) so
        # serverless algorithms dispatch to the gossip runtime
        out[algorithm] = run_experiment(config, backend="sim")
    return out


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Monospace table with aligned columns (bench stdout artifact)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
