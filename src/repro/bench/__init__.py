"""Benchmark harness regenerating the paper's tables and figures.

* :mod:`repro.bench.workloads` — the named experiment configurations, one
  per table/figure (scaled per DESIGN.md's substitution table).
* :mod:`repro.bench.harness` — grid runners and result aggregation.
* :mod:`repro.bench.plots` — terminal-friendly ASCII line charts and tables
  so every figure renders in CI logs without matplotlib.
"""

from repro.bench.harness import (
    ExperimentGrid,
    GridResult,
    format_table,
    record_trajectory,
    run_curves,
    run_grid,
)
from repro.bench.plots import ascii_plot, ascii_scatter
from repro.bench.workloads import (
    bench_profile,
    cifar_workload,
    imagenet_workload,
    paper_reference,
)

__all__ = [
    "ExperimentGrid",
    "GridResult",
    "run_grid",
    "run_curves",
    "format_table",
    "record_trajectory",
    "ascii_plot",
    "ascii_scatter",
    "cifar_workload",
    "imagenet_workload",
    "bench_profile",
    "paper_reference",
]
