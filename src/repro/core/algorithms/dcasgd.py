"""DC-ASGD (Zheng et al., 2017) — the paper's strongest baseline.

Formula 3::

    w_{t+tau+1} <- w_{t+tau} - lr (g_m + lambda_t g_m ⊙ g_m ⊙ (w_t - w_bak(m)))

``w_bak(m)`` is the server's snapshot of the parameters worker ``m`` pulled;
``g ⊙ g ⊙ (w - w_bak)`` is the cheap diagonal-Hessian approximation of the
delay's first-order effect.  The adaptive variant rescales ``lambda_t`` by
the running gradient magnitude (DC-ASGD-a in the original paper), which
keeps the compensation proportionate as the loss scale decays.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.algorithms.base import UpdateRule
from repro.core.state import GradientPayload


class DCASGDRule(UpdateRule):
    """Delay-compensated ASGD with constant or magnitude-adaptive lambda."""

    name = "dc-asgd"

    def __init__(
        self,
        lambda0: float = 0.04,
        adaptive: bool = True,
        ema_decay: float = 0.05,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(momentum=momentum)
        if lambda0 < 0:
            raise ValueError("lambda0 must be >= 0")
        if not 0 < ema_decay <= 1:
            raise ValueError("ema_decay must be in (0, 1]")
        self.lambda0 = float(lambda0)
        self.adaptive = bool(adaptive)
        self.ema_decay = float(ema_decay)
        self._backups: Dict[int, np.ndarray] = {}
        self._grad_sq_ema: Optional[float] = None

    def on_pull(self, worker: int, version: int, params: np.ndarray) -> None:
        """Snapshot ``w_bak(m)`` (Formula 3's backup model)."""
        self._backups[worker] = params.copy()

    def _lambda_t(self, grad: np.ndarray) -> float:
        if not self.adaptive:
            return self.lambda0
        mean_sq = float(np.mean(grad * grad))
        if self._grad_sq_ema is None:
            self._grad_sq_ema = mean_sq
        else:
            d = self.ema_decay
            self._grad_sq_ema = (1 - d) * self._grad_sq_ema + d * mean_sq
        return self.lambda0 / np.sqrt(self._grad_sq_ema + 1e-12)

    def apply_gradient(
        self,
        params: np.ndarray,
        payload: GradientPayload,
        lr: float,
        version: int,
    ) -> bool:
        backup = self._backups.get(payload.worker)
        grad = payload.grad
        if backup is None:
            self._sgd_step(params, grad, lr)  # first gradient: nothing to compensate
            return True
        lam = self._lambda_t(grad)
        compensation = grad * grad * (params - backup)
        self._sgd_step(params, grad + lam * compensation, lr)
        return True

    def reset(self) -> None:
        super().reset()
        self._backups.clear()
        self._grad_sq_ema = None
