"""Asynchronous SGD (Formula 2): apply stale gradients as they arrive."""

from __future__ import annotations

import numpy as np

from repro.core.algorithms.base import UpdateRule
from repro.core.state import GradientPayload


class ASGDRule(UpdateRule):
    """``w_{t+tau+1} <- w_{t+tau} - lr g_m`` — no compensation at all.

    The staleness ``tau`` is implicit: the gradient was computed against
    ``pull_version`` but lands on the current version.  This is the rule
    whose degradation with worker count motivates the paper.
    """

    name = "asgd"

    def apply_gradient(
        self,
        params: np.ndarray,
        payload: GradientPayload,
        lr: float,
        version: int,
    ) -> bool:
        self._sgd_step(params, payload.grad, lr)
        return True
