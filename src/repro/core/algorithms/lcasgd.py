"""LC-ASGD — the paper's contribution.

The server-side update is plain asynchronous SGD (Algorithm 2, line 9:
``w_{t+1} = w_t - lr g_m``); what distinguishes LC-ASGD is that the gradient
pushed by the worker was computed from the *compensated* loss
``l_m + lambda l_delay`` (Formula 5), where ``l_delay`` is the loss
predictor's summed ``k_m``-step forecast (Formula 9) and ``k_m`` comes from
the step predictor (Formula 10).

Formula 5 taken literally adds a constant to the loss, which does not
change the gradient; real implementations must couple the compensation to
the backward pass.  :func:`compensation_seed` implements the three couplings
discussed in DESIGN.md §2 — the seed multiplies the backward pass, i.e. the
worker backpropagates ``seed * l_m``:

* ``scale`` — paper-literal surrogate: the compensated loss rescales the
  true loss, seed ``(l_m + lambda l_delay) / l_m``.
* ``sensitivity`` — chain rule through the predictor, seed
  ``1 + lambda d(l_delay)/d(l_m)``.
* ``damping`` (default) — compare the *average predicted future loss*
  against the worker's snapshot loss: when the server has already
  progressed past the worker's state (ratio < 1) the stale gradient is
  damped proportionally.  This is the coupling that reproduces the paper's
  robustness-to-M curves.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms.base import UpdateRule
from repro.core.state import GradientPayload

#: bounds keeping any coupling's seed from exploding a single update
SEED_MIN, SEED_MAX = 0.05, 3.0


def compensation_seed(
    mode: str,
    loss: float,
    l_delay: float,
    k: int,
    lam: float,
    sensitivity: float = 0.0,
) -> float:
    """Backward seed implementing Formula 5 under the chosen coupling.

    Parameters
    ----------
    mode:
        ``"scale"``, ``"sensitivity"`` or ``"damping"`` (DESIGN.md §2).
    loss:
        The worker's own loss ``l_m``.
    l_delay:
        The summed ``k``-step forecast from the loss predictor (Formula 9).
    k:
        The predicted staleness ``k_m``.
    lam:
        The paper's fine-tuning hyper-parameter ``lambda``.
    sensitivity:
        ``d l_delay / d l_m`` (server-computed; used by ``"sensitivity"``).
    """
    safe_loss = max(abs(float(loss)), 1e-8)
    if k <= 0:
        return 1.0
    if mode == "scale":
        seed = (float(loss) + lam * float(l_delay)) / safe_loss
    elif mode == "sensitivity":
        seed = 1.0 + lam * float(sensitivity)
    elif mode == "damping":
        mean_future = float(l_delay) / max(int(k), 1)
        # A stale gradient is damped toward the loss level it will land on;
        # it is never amplified (ratio capped at 1), since an upward loss
        # forecast signals instability, not a need for larger steps.  The
        # square sharpens the contrast between mildly and severely stale
        # gradients (the rollout ratio shrinks with k, so squaring is a
        # monotone re-weighting of the same predicted signal).
        ratio = min(mean_future / safe_loss, 1.0)
        seed = (1.0 - lam) + lam * ratio * ratio
    else:
        raise ValueError(f"unknown compensation mode {mode!r}")
    return float(np.clip(seed, SEED_MIN, SEED_MAX))


class LCASGDRule(UpdateRule):
    """Server-side LC-ASGD update: plain apply of the compensated gradient."""

    name = "lc-asgd"
    requires_compensation = True

    def apply_gradient(
        self,
        params: np.ndarray,
        payload: GradientPayload,
        lr: float,
        version: int,
    ) -> bool:
        self._sgd_step(params, payload.grad, lr)
        return True
