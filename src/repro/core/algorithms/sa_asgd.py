"""Staleness-aware ASGD — an extra baseline from the surrounding literature.

Not in the paper's evaluation, but the standard non-predictive comparator
for LC-ASGD's mechanism (Zhang et al., "Staleness-aware async-SGD", IJCAI
2016): scale each gradient's learning rate by ``1 / (1 + staleness)``.  It
needs the *realized* staleness at landing time (information LC-ASGD's step
predictor must forecast), so comparing the two isolates the value of
prediction: SA-ASGD is LC-ASGD with a perfect step oracle and a trivial
loss model.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms.base import UpdateRule
from repro.core.state import GradientPayload


class StalenessAwareASGDRule(UpdateRule):
    """``w <- w - lr/(1 + tau) * g`` with the realized staleness ``tau``."""

    name = "sa-asgd"

    def __init__(self, momentum: float = 0.0, exponent: float = 1.0) -> None:
        super().__init__(momentum=momentum)
        if exponent < 0:
            raise ValueError("exponent must be >= 0")
        self.exponent = float(exponent)

    def apply_gradient(
        self,
        params: np.ndarray,
        payload: GradientPayload,
        lr: float,
        version: int,
    ) -> bool:
        staleness = max(version - payload.pull_version, 0)
        scale = 1.0 / (1.0 + staleness) ** self.exponent
        self._sgd_step(params, payload.grad * scale, lr)
        return True
