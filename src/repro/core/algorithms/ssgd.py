"""Synchronous SGD (Formula 1): barrier-averaged gradients."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.algorithms.base import UpdateRule
from repro.core.state import GradientPayload


class SSGDRule(UpdateRule):
    """Accumulate one gradient per worker, then apply the average.

    The version advances once per complete round; workers that pull before
    the round completes are queued by the server (the synchronization
    barrier whose cost shows up in the wall-clock figures).
    """

    name = "ssgd"

    def __init__(self, num_workers: int, momentum: float = 0.0) -> None:
        super().__init__(momentum=momentum)
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = int(num_workers)
        self._pending: Dict[int, np.ndarray] = {}

    def round_contributed(self, worker: int) -> bool:
        """Whether ``worker`` already submitted a gradient this round."""
        return worker in self._pending

    def apply_gradient(
        self,
        params: np.ndarray,
        payload: GradientPayload,
        lr: float,
        version: int,
    ) -> bool:
        if payload.worker in self._pending:
            raise RuntimeError(
                f"worker {payload.worker} submitted twice in one synchronous round"
            )
        self._pending[payload.worker] = payload.grad
        if len(self._pending) < self.num_workers:
            return False
        mean_grad = np.mean(list(self._pending.values()), axis=0)
        self._sgd_step(params, mean_grad, lr)
        self._pending.clear()
        return True

    def reset(self) -> None:
        super().reset()
        self._pending.clear()
