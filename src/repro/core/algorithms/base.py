"""Update-rule interface.

A rule owns the *server-side* mathematics of one algorithm: what happens
when a worker pulls (DC-ASGD snapshots a backup model) and when a gradient
lands (plain apply, barrier-averaged apply, or compensated apply).  The
parameter vector itself lives on the :class:`~repro.core.server.ParameterServer`;
rules mutate it in place through the reference they are given.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.state import GradientPayload


class UpdateRule:
    """Base class for server-side update rules.

    All rules share classical-momentum bookkeeping (``momentum=0`` disables
    it).  The paper trains its networks "following [8]" (He et al. 2016),
    whose recipe is SGD with momentum 0.9 — and momentum is also what makes
    gradient staleness damaging in the first place, since a stale direction
    compounds through the velocity.  The velocity lives on the server, as in
    standard parameter-server implementations.
    """

    name = "base"
    #: True when the worker must wait for an ``l_delay`` reply before
    #: computing its gradient (only LC-ASGD).
    requires_compensation = False

    def __init__(self, momentum: float = 0.0) -> None:
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: Optional[np.ndarray] = None

    def _sgd_step(self, params: np.ndarray, grad: np.ndarray, lr: float) -> None:
        """In-place (momentum-)SGD update shared by every rule."""
        if self.momentum == 0.0:
            params -= lr * grad
            return
        if self._velocity is None:
            self._velocity = np.zeros_like(params)
        self._velocity *= self.momentum
        self._velocity += grad
        params -= lr * self._velocity

    def on_pull(self, worker: int, version: int, params: np.ndarray) -> None:
        """Hook invoked when ``worker`` pulls ``params`` at ``version``."""

    def apply_gradient(
        self,
        params: np.ndarray,
        payload: GradientPayload,
        lr: float,
        version: int,
    ) -> bool:
        """Fold one gradient into ``params`` (in place).

        Returns True when the global model version advanced (ASGD-family
        rules always advance; SSGD advances once per complete round).
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Clear internal state (between runs)."""
        self._velocity = None
