"""Update rules for the training algorithms (server-side, plus the
decentralized AD-PSGD rule that lives on each worker replica)."""

from repro.core.algorithms.base import UpdateRule
from repro.core.algorithms.adpsgd import ADPSGDRule, gossip_staleness, pairwise_average
from repro.core.algorithms.asgd import ASGDRule
from repro.core.algorithms.dcasgd import DCASGDRule
from repro.core.algorithms.lcasgd import LCASGDRule, compensation_seed
from repro.core.algorithms.sa_asgd import StalenessAwareASGDRule
from repro.core.algorithms.sgd import SequentialSGDRule
from repro.core.algorithms.ssgd import SSGDRule

__all__ = [
    "UpdateRule",
    "SequentialSGDRule",
    "SSGDRule",
    "ASGDRule",
    "ADPSGDRule",
    "DCASGDRule",
    "LCASGDRule",
    "StalenessAwareASGDRule",
    "compensation_seed",
    "pairwise_average",
    "gossip_staleness",
    "make_update_rule",
]


def make_update_rule(algorithm: str, num_workers: int, momentum: float = 0.0, **kwargs) -> UpdateRule:
    """Build the update rule for ``algorithm``.

    ``kwargs`` are forwarded to the rule constructor (e.g. ``dc_lambda``).
    """
    if algorithm == "sgd":
        return SequentialSGDRule(momentum=momentum)
    if algorithm == "ssgd":
        return SSGDRule(num_workers=num_workers, momentum=momentum)
    if algorithm == "asgd":
        return ASGDRule(momentum=momentum)
    if algorithm == "dc-asgd":
        return DCASGDRule(
            lambda0=kwargs.get("dc_lambda", 0.04),
            adaptive=kwargs.get("dc_adaptive", True),
            momentum=momentum,
        )
    if algorithm == "lc-asgd":
        return LCASGDRule(momentum=momentum)
    if algorithm == "sa-asgd":
        return StalenessAwareASGDRule(momentum=momentum)
    if algorithm == "ad-psgd":
        # per-replica local rule: the gossip runtime builds one per worker
        return ADPSGDRule(momentum=momentum)
    raise ValueError(f"unknown algorithm {algorithm!r}")
