"""Sequential single-machine SGD — the paper's accuracy baseline."""

from __future__ import annotations

import numpy as np

from repro.core.algorithms.base import UpdateRule
from repro.core.state import GradientPayload


class SequentialSGDRule(UpdateRule):
    """Plain ``w <- w - lr g`` with exactly one worker and no staleness.

    In the simulator this is the degenerate cluster: one worker, zero
    communication cost, so the "distributed" run is numerically identical
    to a single-machine training loop.
    """

    name = "sgd"

    def apply_gradient(
        self,
        params: np.ndarray,
        payload: GradientPayload,
        lr: float,
        version: int,
    ) -> bool:
        self._sgd_step(params, payload.grad, lr)
        return True
