"""Asynchronous Decentralized Parallel SGD (AD-PSGD, Lian et al. 2018).

There is no parameter server: every worker keeps its own copy of the model,
takes local (momentum-)SGD steps, and once per step averages its parameter
vector with one randomly chosen neighbor on a fixed peer graph
(:mod:`repro.cluster.topology`).  Per-worker communication is therefore one
weight exchange per step regardless of cluster size — the serverless
scaling behaviour the gossip benchmark measures against ASGD.

The rule is split to mirror the physical split of the algorithm:

* :class:`ADPSGDRule` — the *local* optimizer.  It subclasses
  :class:`~repro.core.algorithms.base.UpdateRule` so it plugs into the
  algorithm registry and reuses the shared momentum bookkeeping, but it is
  instantiated once **per worker** (each replica owns its velocity), not
  once on a server.
* :func:`pairwise_average` — the *gossip* step.  Pure array math on two
  flat parameter vectors, symmetric in its arguments, applied by both
  members of a pair so their replicas agree bit-for-bit afterwards.

Deadlock freedom is a runtime property, not an algorithm property: the
gossip backends pair workers through an atomic matchmaker before anyone
blocks, so two workers never hold-and-wait on each other (see
``repro.runtime.gossip_backend.PairingBoard``).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.algorithms.base import UpdateRule
from repro.core.state import GradientPayload


class ADPSGDRule(UpdateRule):
    """Local update rule of one AD-PSGD worker.

    ``apply_gradient`` performs the worker's local step ``x_i <- x_i - lr
    g_i`` (with optional momentum, tracked per replica).  The decentralized
    half — averaging with a neighbor — is :func:`pairwise_average`, invoked
    by the gossip runtime between local steps; the server-based backends
    refuse the algorithm outright rather than silently running it as ASGD.
    """

    name = "ad-psgd"

    def apply_gradient(
        self,
        params: np.ndarray,
        payload: GradientPayload,
        lr: float,
        version: int,
    ) -> bool:
        self._sgd_step(params, payload.grad, lr)
        return True


def pairwise_average(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """The AD-PSGD gossip update: both replicas move to their midpoint.

    ``x_i, x_j <- (x_i + x_j) / 2`` — the doubly-stochastic mixing matrix
    ``W`` of the paper restricted to one edge.  Inputs are not mutated; the
    two returned arrays are *independent* copies of the midpoint (callers
    on different threads must not share storage).
    """
    if a.shape != b.shape:
        raise ValueError(f"cannot average shapes {a.shape} and {b.shape}")
    mid = (a + b) * 0.5
    return mid, mid.copy()


def gossip_staleness(local_step: int, last_average_step: int) -> int:
    """Steps a replica has taken since it last averaged with anyone.

    This is the decentralized analogue of ASGD's pull-to-push version gap:
    how far the local parameters have drifted, in update counts, since the
    last mixing event.  Feeding it through the existing trace ``staleness``
    field keeps :func:`~repro.cluster.trace.ClusterTrace.staleness_stats`
    and the report columns meaningful for ``ad-psgd`` rows.
    """
    if local_step < last_average_step:
        raise ValueError("local_step precedes last_average_step")
    return local_step - last_average_step
