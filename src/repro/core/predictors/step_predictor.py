"""Algorithm 4: the online multivariate LSTM step predictor.

Predicts the staleness ``k_m`` a worker's in-flight gradient will experience
from three input dimensions (Section 4.4): the worker's previous realized
step, its communication cost ``t_comm`` and its computation cost ``t_comp``.
Architecture: two LSTM layers + linear head (paper hidden size: 128).

One shared model is trained across all workers (they share dynamics); each
worker keeps its own feature window, so per-worker regularities — a
persistently slow node has persistently high ``k_m`` — remain visible to the
LSTM through the feature values themselves.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Tuple

import numpy as np

from repro.core.predictors.base import StepPredictorBase, _RunningNorm
from repro.core.predictors.loss_predictor import _SeriesModel
from repro.nn.module import Module
from repro.optim.sgd import SGD
from repro.tensor import functional as F
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor
from repro.utils.rng import SeedLike, as_generator


class LSTMStepPredictor(StepPredictorBase):
    """The paper's step predictor (Algorithm 4).

    Parameters
    ----------
    hidden_size:
        LSTM width (paper: 128; benches use less for CPU speed).
    window:
        Per-worker feature-history length fed to the LSTM.
    max_step:
        Hard cap on predictions (defaults to ``4 * num_workers`` at the
        call site; here a static cap).
    lr, momentum, train_every, seed:
        Online-training hyper-parameters, as in the loss predictor.
    """

    name = "lstm"

    def __init__(
        self,
        hidden_size: int = 128,
        window: int = 8,
        max_step: int = 256,
        lr: float = 0.05,
        momentum: float = 0.9,
        train_every: int = 1,
        seed: SeedLike = 0,
    ) -> None:
        if hidden_size <= 0 or window < 2 or max_step < 1:
            raise ValueError("invalid step-predictor hyper-parameters")
        if train_every < 1:
            raise ValueError("train_every must be >= 1")
        rng = as_generator(seed, "step-predictor")
        self.model = _SeriesModel(3, hidden_size, rng)
        self.optimizer = SGD(self.model.parameters(), lr=lr, momentum=momentum, max_grad_norm=1.0)
        self.window = int(window)
        self.max_step = int(max_step)
        self.train_every = int(train_every)
        self._histories: Dict[int, Deque[Tuple[float, float, float]]] = {}
        self._step_norm = _RunningNorm()
        self._comm_norm = _RunningNorm()
        self._comp_norm = _RunningNorm()
        self._observed = 0

    # ------------------------------------------------------------------ #
    def _window_of(self, worker: int) -> Deque[Tuple[float, float, float]]:
        if worker not in self._histories:
            self._histories[worker] = deque(maxlen=self.window)
        return self._histories[worker]

    def _features(self, step: float, t_comm: float, t_comp: float) -> Tuple[float, float, float]:
        return (
            self._step_norm.normalize(step),
            self._comm_norm.normalize(t_comm),
            self._comp_norm.normalize(t_comp),
        )

    def observe(self, worker: int, step: float, t_comm: float, t_comp: float) -> None:
        """Algorithm 4, line 2: train with the newly realized staleness."""
        self._step_norm.update(float(step))
        self._comm_norm.update(float(t_comm))
        self._comp_norm.update(float(t_comp))
        history = self._window_of(worker)
        self._observed += 1
        if len(history) >= 2 and self._observed % self.train_every == 0:
            inputs = np.array(history, dtype=np.float32).reshape(1, -1, 3)
            target = np.array([[self._step_norm.normalize(float(step))]], dtype=np.float32)
            pred_seq = self.model(Tensor(inputs))
            pred_last = pred_seq[:, -1, :]
            loss_t = F.mse_loss(pred_last, target)
            self.optimizer.zero_grad()
            loss_t.backward()
            self.optimizer.step()
        history.append(self._features(float(step), float(t_comm), float(t_comp)))

    def predict(self, worker: int, t_comm: float, t_comp: float) -> int:
        """Algorithm 4, line 3 / Formula 10: forecast the next ``k_m``."""
        history = self._window_of(worker)
        if len(history) < 2:
            # Cold start: with M workers interleaving uniformly the expected
            # staleness is M-1; before any data we fall back to the mean.
            if self._step_norm.count == 0:
                return 0
            return self._clip_step(self._step_norm.mean, self.max_step)
        last_step_feature = history[-1][0]  # most recent realized step (normalized)
        window = list(history)[1:] + [
            (last_step_feature, self._comm_norm.normalize(float(t_comm)), self._comp_norm.normalize(float(t_comp)))
        ]
        inputs = np.array(window, dtype=np.float32).reshape(1, -1, 3)
        with no_grad():
            pred = self.model(Tensor(inputs))
        z = float(pred.data[0, -1, 0])
        return self._clip_step(self._step_norm.denormalize(z), self.max_step)
