"""Algorithm 3: the online LSTM loss predictor.

Architecture per Section 4.3: two LSTM layers followed by a linear layer
(hidden size 64 in the paper's CIFAR experiments).  The model is trained
online on the parameter server: every arriving loss is the label for the
previous window, and ``l_delay`` is the sum of the ``k``-step autoregressive
rollout (Formula 9).

Inputs/outputs are z-normalized with streaming statistics; the raw loss
scale drifts over two orders of magnitude during training, which an
un-normalized LSTM tracks poorly.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.core.predictors.base import LossPredictorBase, _RunningNorm
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.rnn import LSTM
from repro.optim.sgd import SGD
from repro.tensor import functional as F
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor
from repro.utils.rng import SeedLike, as_generator


class _SeriesModel(Module):
    """Two LSTM layers + linear head over scalar series (shared by Alg. 3/4)."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.lstm = LSTM(input_size, hidden_size, num_layers=2, rng=rng)
        self.head = Linear(hidden_size, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Map (N, T, input_size) to (N, T, 1) per-step forecasts."""
        outs, _ = self.lstm(x)
        n, t, h = outs.data.shape
        flat = outs.reshape(n * t, h)
        return self.head(flat).reshape(n, t, 1)

    def rollout(self, window: np.ndarray, k: int) -> List[float]:
        """Autoregressive ``k``-step forecast from a (T,) normalized window."""
        with no_grad():
            state = None
            seq = Tensor(window.reshape(1, -1, 1).astype(np.float32))
            outs, state = self.lstm(seq)
            last_hidden = outs[:, -1, :]
            preds: List[float] = []
            next_in = self.head(last_hidden)
            preds.append(float(next_in.data[0, 0]))
            for _ in range(k - 1):
                step_in = next_in.reshape(1, 1, 1)
                outs, state = self.lstm(step_in, state)
                next_in = self.head(outs[:, -1, :])
                preds.append(float(next_in.data[0, 0]))
        return preds


class LSTMLossPredictor(LossPredictorBase):
    """The paper's loss predictor (two LSTM layers + linear, trained online).

    Parameters
    ----------
    hidden_size:
        LSTM width (paper: 64).
    window:
        History length fed per online-training step.
    lr, momentum:
        Online-SGD hyper-parameters for the predictor itself.
    train_every:
        Train once per this many observations (1 = every arrival, as in the
        paper; larger values trade accuracy for server overhead).
    seed:
        Determinism root for weight init.
    """

    name = "lstm"

    def __init__(
        self,
        hidden_size: int = 64,
        window: int = 16,
        lr: float = 0.05,
        momentum: float = 0.9,
        train_every: int = 1,
        rollout_cap: int = 32,
        seed: SeedLike = 0,
    ) -> None:
        if hidden_size <= 0 or window < 2:
            raise ValueError("hidden_size must be > 0 and window >= 2")
        if train_every < 1 or rollout_cap < 1:
            raise ValueError("train_every and rollout_cap must be >= 1")
        rng = as_generator(seed, "loss-predictor")
        self.model = _SeriesModel(1, hidden_size, rng)
        self.optimizer = SGD(self.model.parameters(), lr=lr, momentum=momentum, max_grad_norm=1.0)
        self.window = int(window)
        self.train_every = int(train_every)
        self.rollout_cap = int(rollout_cap)
        self._history: Deque[float] = deque(maxlen=window + 1)
        self._norm = _RunningNorm()
        self._observed = 0

    # ------------------------------------------------------------------ #
    def observe(self, loss: float) -> None:
        """Algorithm 3, line 1: one online step with (prev window -> loss)."""
        loss = float(loss)
        self._norm.update(loss)
        self._history.append(self._norm.normalize(loss))
        self._observed += 1
        if len(self._history) < 3 or self._observed % self.train_every:
            return
        series = np.array(self._history, dtype=np.float32)
        inputs = series[:-1].reshape(1, -1, 1)
        targets = series[1:].reshape(1, -1, 1)
        pred = self.model(Tensor(inputs))
        loss_t = F.mse_loss(pred, targets)
        self.optimizer.zero_grad()
        loss_t.backward()
        self.optimizer.step()

    def predict_next(self) -> Optional[float]:
        """One-step forecast in raw loss units (None before warm-up)."""
        if len(self._history) < 2:
            return None
        window = np.array(self._history, dtype=np.float64)
        z = self.model.rollout(window, 1)[0]
        return self._norm.denormalize(z)

    def predict_delay(self, loss: float, k: int) -> float:
        """Formula 9: sum of the ``k`` rollout forecasts after ``loss``.

        Rollouts are capped at ``rollout_cap`` steps (CPU cost is linear in
        the rollout length); beyond the cap the tail is extrapolated at the
        last predicted level, which is also where autoregressive LSTM
        forecasts flatten anyway.
        """
        if k <= 0:
            return 0.0
        if len(self._history) < 2:
            # Cold start: flat forecast, as good as any before data arrives.
            return float(loss) * k
        steps = min(int(k), self.rollout_cap)
        window = list(self._history)[-(self.window - 1) :] + [self._norm.normalize(float(loss))]
        preds = self.model.rollout(np.array(window, dtype=np.float64), steps)
        values = [self._norm.denormalize(z) for z in preds]
        total = float(sum(values))
        if k > steps:
            total += values[-1] * (k - steps)
        return total
