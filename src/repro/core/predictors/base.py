"""Predictor interfaces shared by the LSTM models and the baselines.

Both predictors are *online*: they are trained sample-by-sample as losses
and step observations arrive at the parameter server, "without disturbing
workers' progress" (Section 4.3).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


class _RunningNorm:
    """Streaming mean/std normalizer (Welford), used to stabilize the LSTMs."""

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        """Fold one observation into the running statistics."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def std(self) -> float:
        """Running standard deviation (>= 1e-6 floor)."""
        if self.count < 2:
            return 1.0
        return max(np.sqrt(self._m2 / (self.count - 1)), 1e-6)

    def normalize(self, value: float) -> float:
        """Map ``value`` to z-score under the running statistics."""
        return (value - self.mean) / self.std

    def denormalize(self, z: float) -> float:
        """Inverse of :meth:`normalize`."""
        return z * self.std + self.mean


class LossPredictorBase:
    """Interface of Algorithm 3: online next-loss forecasting.

    Protocol per state arrival at the server (loss ``l_m``):

    1. ``predict_next()`` — optional, the one-step forecast made *before*
       seeing ``l_m`` (recorded for Figure 7).
    2. ``observe(l_m)`` — online training step using the previous loss as
       input and ``l_m`` as the label (Algorithm 3, line 1).
    3. ``predict_delay(l_m, k)`` — the summed ``k``-step-ahead forecast
       ``l_delay`` (Formula 9).
    """

    name = "base"

    def observe(self, loss: float) -> None:
        """Consume the newest loss and take one online-training step."""
        raise NotImplementedError

    def predict_next(self) -> Optional[float]:
        """One-step-ahead forecast from current history (None if cold)."""
        raise NotImplementedError

    def predict_delay(self, loss: float, k: int) -> float:
        """Sum of the ``k`` future loss forecasts starting after ``loss``."""
        raise NotImplementedError

    def delay_sensitivity(self, loss: float, k: int, eps: float = 1e-3) -> float:
        """Finite-difference ``d l_delay / d loss`` (the "sensitivity" coupling)."""
        hi = self.predict_delay(loss + eps, k)
        lo = self.predict_delay(loss - eps, k)
        return (hi - lo) / (2 * eps)


class StepPredictorBase:
    """Interface of Algorithm 4: online staleness forecasting.

    Per worker ``m`` the server calls:

    * ``observe(worker, step, t_comm, t_comp)`` when the true staleness of a
      landed gradient becomes known (one online-training step);
    * ``predict(worker, t_comm, t_comp)`` at state-arrival time to forecast
      the staleness ``k_m`` the in-flight gradient will experience.
    """

    name = "base"

    def observe(self, worker: int, step: float, t_comm: float, t_comp: float) -> None:
        """Consume one realized (staleness, costs) observation."""
        raise NotImplementedError

    def predict(self, worker: int, t_comm: float, t_comp: float) -> int:
        """Forecast the next staleness for ``worker`` (non-negative int)."""
        raise NotImplementedError

    @staticmethod
    def _clip_step(value: float, max_step: int) -> int:
        """Round and clamp a raw forecast into ``[0, max_step]``."""
        return int(np.clip(round(value), 0, max_step))
