"""Server-side online predictors (Algorithms 3-4) and ablation baselines."""

from repro.core.predictors.base import LossPredictorBase, StepPredictorBase
from repro.core.predictors.baselines import (
    EMALossPredictor,
    EMAStepPredictor,
    LastValueLossPredictor,
    LastValueStepPredictor,
    LinearTrendLossPredictor,
)
from repro.core.predictors.loss_predictor import LSTMLossPredictor
from repro.core.predictors.step_predictor import LSTMStepPredictor

__all__ = [
    "LossPredictorBase",
    "StepPredictorBase",
    "LSTMLossPredictor",
    "LSTMStepPredictor",
    "EMALossPredictor",
    "LastValueLossPredictor",
    "LinearTrendLossPredictor",
    "EMAStepPredictor",
    "LastValueStepPredictor",
    "make_loss_predictor",
    "make_step_predictor",
]


def make_loss_predictor(variant: str, **kwargs) -> LossPredictorBase:
    """Factory over loss-predictor variants (``lstm`` is the paper's)."""
    variants = {
        "lstm": LSTMLossPredictor,
        "ema": EMALossPredictor,
        "last": LastValueLossPredictor,
        "linear": LinearTrendLossPredictor,
    }
    if variant not in variants:
        raise ValueError(f"unknown loss predictor {variant!r}; options {sorted(variants)}")
    return variants[variant](**kwargs)


def make_step_predictor(variant: str, **kwargs) -> StepPredictorBase:
    """Factory over step-predictor variants (``lstm`` is the paper's)."""
    variants = {
        "lstm": LSTMStepPredictor,
        "ema": EMAStepPredictor,
        "last": LastValueStepPredictor,
    }
    if variant not in variants:
        raise ValueError(f"unknown step predictor {variant!r}; options {sorted(variants)}")
    return variants[variant](**kwargs)
