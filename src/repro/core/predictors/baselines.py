"""Non-learned predictor baselines for the ablation benchmarks.

The paper only evaluates the LSTM predictors; these baselines quantify how
much the LSTM matters (``benchmarks/bench_ablation_predictors.py``).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

import numpy as np

from repro.core.predictors.base import LossPredictorBase, StepPredictorBase


class LastValueLossPredictor(LossPredictorBase):
    """Forecasts a flat continuation of the last observed loss."""

    name = "last"

    def __init__(self) -> None:
        self._last: Optional[float] = None

    def observe(self, loss: float) -> None:
        self._last = float(loss)

    def predict_next(self) -> Optional[float]:
        return self._last

    def predict_delay(self, loss: float, k: int) -> float:
        return float(loss) * max(k, 0)


class EMALossPredictor(LossPredictorBase):
    """Forecasts the exponential moving average of the loss series."""

    name = "ema"

    def __init__(self, decay: float = 0.3) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.decay = float(decay)
        self._ema: Optional[float] = None

    def observe(self, loss: float) -> None:
        loss = float(loss)
        self._ema = loss if self._ema is None else (1 - self.decay) * self._ema + self.decay * loss

    def predict_next(self) -> Optional[float]:
        return self._ema

    def predict_delay(self, loss: float, k: int) -> float:
        if k <= 0:
            return 0.0
        anchor = self._ema if self._ema is not None else float(loss)
        blended = (1 - self.decay) * anchor + self.decay * float(loss)
        return blended * k


class LinearTrendLossPredictor(LossPredictorBase):
    """Least-squares linear extrapolation over a sliding window."""

    name = "linear"

    def __init__(self, window: int = 16) -> None:
        if window < 3:
            raise ValueError("window must be >= 3")
        self.window = int(window)
        self._history: Deque[float] = deque(maxlen=window)

    def observe(self, loss: float) -> None:
        self._history.append(float(loss))

    def _fit(self) -> Optional[np.ndarray]:
        if len(self._history) < 3:
            return None
        y = np.array(self._history, dtype=np.float64)
        x = np.arange(len(y), dtype=np.float64)
        return np.polyfit(x, y, deg=1)

    def predict_next(self) -> Optional[float]:
        coeffs = self._fit()
        if coeffs is None:
            return self._history[-1] if self._history else None
        return float(np.polyval(coeffs, len(self._history)))

    def predict_delay(self, loss: float, k: int) -> float:
        if k <= 0:
            return 0.0
        coeffs = self._fit()
        if coeffs is None:
            return float(loss) * k
        n = len(self._history)
        future = np.polyval(coeffs, np.arange(n, n + k, dtype=np.float64))
        # losses cannot extrapolate below zero
        return float(np.maximum(future, 0.0).sum())


class LastValueStepPredictor(StepPredictorBase):
    """Predicts each worker's previous realized staleness."""

    name = "last"

    def __init__(self, max_step: int = 256) -> None:
        self.max_step = int(max_step)
        self._last: Dict[int, float] = {}

    def observe(self, worker: int, step: float, t_comm: float, t_comp: float) -> None:
        self._last[worker] = float(step)

    def predict(self, worker: int, t_comm: float, t_comp: float) -> int:
        return self._clip_step(self._last.get(worker, 0.0), self.max_step)


class EMAStepPredictor(StepPredictorBase):
    """Per-worker EMA of realized staleness."""

    name = "ema"

    def __init__(self, decay: float = 0.3, max_step: int = 256) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.decay = float(decay)
        self.max_step = int(max_step)
        self._ema: Dict[int, float] = {}

    def observe(self, worker: int, step: float, t_comm: float, t_comp: float) -> None:
        step = float(step)
        if worker in self._ema:
            self._ema[worker] = (1 - self.decay) * self._ema[worker] + self.decay * step
        else:
            self._ema[worker] = step

    def predict(self, worker: int, t_comm: float, t_comp: float) -> int:
        return self._clip_step(self._ema.get(worker, 0.0), self.max_step)
