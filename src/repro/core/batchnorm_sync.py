"""Server-side batch-normalization statistic aggregation.

The paper compares two policies (Section 5.3):

* **replace-BN** ("regular BN" in Table 1): "the parameter server replaces
  the mean and variance of all BN layers using the parameter values
  received from the latest worker."
* **Async-BN** (Formulas 6-7): exponential accumulation
  ``E_z <- (1-d) E_z + d mean_z``, ``Var_z <- (1-d) Var_z + d var_z``
  across all workers, giving every worker consistent statistics.

Strategies hold the global per-layer ``(E, Var)`` initialized to
``E=0, Var=1`` (Algorithm 2's Initialize line).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.state import BnStats


class BnSyncStrategy:
    """Interface: fold worker batch statistics into global running stats."""

    name = "base"

    def __init__(self, feature_sizes: Sequence[int]) -> None:
        self.feature_sizes = tuple(int(s) for s in feature_sizes)
        self._means: List[np.ndarray] = [np.zeros(s, dtype=np.float64) for s in self.feature_sizes]
        self._vars: List[np.ndarray] = [np.ones(s, dtype=np.float64) for s in self.feature_sizes]

    def update(self, stats: BnStats) -> None:
        """Fold one worker's per-layer ``(mean, var)`` payload."""
        raise NotImplementedError

    def current(self) -> BnStats:
        """Copy of the current global ``(E, Var)`` per layer."""
        return [(m.copy(), v.copy()) for m, v in zip(self._means, self._vars)]

    def _check(self, stats: BnStats) -> None:
        if len(stats) != len(self.feature_sizes):
            raise ValueError(
                f"expected {len(self.feature_sizes)} BN layers, payload has {len(stats)}"
            )
        for i, (mean, var) in enumerate(stats):
            if np.asarray(mean).shape != (self.feature_sizes[i],):
                raise ValueError(f"layer {i}: mean shape mismatch")
            if np.asarray(var).shape != (self.feature_sizes[i],):
                raise ValueError(f"layer {i}: var shape mismatch")


class ReplaceBn(BnSyncStrategy):
    """Regular BN: overwrite globals with the latest worker's statistics."""

    name = "replace"

    def update(self, stats: BnStats) -> None:
        self._check(stats)
        for i, (mean, var) in enumerate(stats):
            self._means[i] = np.asarray(mean, dtype=np.float64).copy()
            self._vars[i] = np.asarray(var, dtype=np.float64).copy()


class AsyncBn(BnSyncStrategy):
    """Async-BN: exponential accumulation across workers (Formulas 6-7)."""

    name = "async"

    def __init__(self, feature_sizes: Sequence[int], decay: float = 0.2) -> None:
        super().__init__(feature_sizes)
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.decay = float(decay)

    def update(self, stats: BnStats) -> None:
        self._check(stats)
        d = self.decay
        for i, (mean, var) in enumerate(stats):
            self._means[i] = (1 - d) * self._means[i] + d * np.asarray(mean, dtype=np.float64)
            self._vars[i] = (1 - d) * self._vars[i] + d * np.asarray(var, dtype=np.float64)


def make_bn_strategy(
    mode: str, feature_sizes: Sequence[int], decay: float = 0.2
) -> Optional[BnSyncStrategy]:
    """Build the strategy for ``mode`` (``local`` returns None: no syncing)."""
    if mode == "local":
        return None
    if mode == "replace":
        return ReplaceBn(feature_sizes)
    if mode == "async":
        return AsyncBn(feature_sizes, decay=decay)
    raise ValueError(f"unknown bn_mode {mode!r}")
