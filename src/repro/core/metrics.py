"""Run results: learning curves, staleness stats, predictor accuracy.

The fields map onto the paper's evaluation artifacts:

* ``curve`` — (epoch, virtual seconds, train/test error+loss) points, the
  raw material of Figures 3-6;
* ``final_test_error`` + :func:`degradation` — Table 1;
* ``loss_prediction_pairs`` / ``step_prediction_pairs`` — Figures 7-8;
* ``timers`` — the per-iteration predictor overhead of Tables 2-3;
* ``staleness`` — the delay distribution that motivates the whole paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor import no_grad
from repro.tensor.tensor import Tensor


@dataclass(frozen=True)
class CurvePoint:
    """One evaluation snapshot during training."""

    epoch: int
    time: float  # virtual seconds
    train_error: float
    train_loss: float
    test_error: float
    test_loss: float

    def to_dict(self) -> Dict[str, float]:
        """JSON-ready mapping of every field."""
        return {
            "epoch": self.epoch,
            "time": self.time,
            "train_error": self.train_error,
            "train_loss": self.train_loss,
            "test_error": self.test_error,
            "test_loss": self.test_loss,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, float]) -> "CurvePoint":
        """Inverse of :meth:`to_dict`."""
        return cls(
            epoch=int(payload["epoch"]),
            time=float(payload["time"]),
            train_error=float(payload["train_error"]),
            train_loss=float(payload["train_loss"]),
            test_error=float(payload["test_error"]),
            test_loss=float(payload["test_loss"]),
        )


@dataclass
class RunResult:
    """Everything one distributed-training run produced."""

    algorithm: str
    num_workers: int
    bn_mode: str
    curve: List[CurvePoint] = field(default_factory=list)
    staleness: Dict[str, float] = field(default_factory=dict)
    loss_prediction_pairs: List[Tuple[float, float]] = field(default_factory=list)
    step_prediction_pairs: List[Tuple[int, int]] = field(default_factory=list)
    finishing_order: List[int] = field(default_factory=list)
    timers: Dict[str, float] = field(default_factory=dict)  # mean ms per call
    total_updates: int = 0
    # the executing backend's clock at run end: virtual seconds under the
    # simulator, real elapsed seconds under the thread runtime
    total_virtual_time: float = 0.0
    seed: int = 0
    backend: str = "sim"  # which execution backend produced this result
    wall_time: float = 0.0  # real elapsed seconds, whatever the backend
    topology: str = ""  # peer graph for decentralized runs, "" for server-based
    # gradient codec the run's transport honored ("" when the backend moves
    # no bytes and ignored the configured comm_codec, e.g. the simulator)
    codec: str = ""
    # communication accounting: the unified CommStats keys, e.g.
    # {"messages": ..., "logical_bytes": ..., "wire_bytes": ...,
    #  "server_bytes": ..., "max_worker_bytes": ..., "total_bytes": ...}
    comm: Dict[str, float] = field(default_factory=dict)
    # observability block ({} when the run traced nothing): record/drop
    # counts, per-phase "spans_ms" attribution, and a "hub" MetricsHub
    # snapshot carrying the staleness / wire-byte histograms
    obs: Dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def final_test_error(self) -> float:
        """Test error at the last evaluation point."""
        if not self.curve:
            raise ValueError("run has no evaluation points")
        return self.curve[-1].test_error

    @property
    def final_train_error(self) -> float:
        """Train error at the last evaluation point."""
        if not self.curve:
            raise ValueError("run has no evaluation points")
        return self.curve[-1].train_error

    @property
    def best_test_error(self) -> float:
        """Minimum test error over the run."""
        if not self.curve:
            raise ValueError("run has no evaluation points")
        return min(p.test_error for p in self.curve)

    def epochs(self) -> np.ndarray:
        """Epoch axis of the curve."""
        return np.array([p.epoch for p in self.curve])

    def times(self) -> np.ndarray:
        """Virtual-seconds axis of the curve."""
        return np.array([p.time for p in self.curve])

    def series(self, name: str) -> np.ndarray:
        """A named curve series: train_error, test_error, train_loss, test_loss."""
        if name not in ("train_error", "test_error", "train_loss", "test_loss"):
            raise ValueError(f"unknown series {name!r}")
        return np.array([getattr(p, name) for p in self.curve])

    def loss_prediction_error(self) -> float:
        """Mean |predicted - actual| of the loss predictor (Figure 7 metric)."""
        if not self.loss_prediction_pairs:
            return float("nan")
        arr = np.array(self.loss_prediction_pairs, dtype=np.float64)
        return float(np.abs(arr[:, 1] - arr[:, 0]).mean())

    def step_prediction_error(self) -> float:
        """Mean |predicted - actual| of the step predictor (Figure 8 metric)."""
        if not self.step_prediction_pairs:
            return float("nan")
        arr = np.array(self.step_prediction_pairs, dtype=np.float64)
        return float(np.abs(arr[:, 1] - arr[:, 0]).mean())

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        """JSON-ready mapping of the full result (the result-store format).

        Pair lists become lists-of-lists; :meth:`from_dict` restores the
        tuples.  Derived summaries (``final_test_error`` etc.) are *not*
        included — they recompute from the curve on load.
        """
        return {
            "algorithm": self.algorithm,
            "num_workers": self.num_workers,
            "bn_mode": self.bn_mode,
            "curve": [p.to_dict() for p in self.curve],
            "staleness": dict(self.staleness),
            "loss_prediction_pairs": [list(p) for p in self.loss_prediction_pairs],
            "step_prediction_pairs": [list(p) for p in self.step_prediction_pairs],
            "finishing_order": list(self.finishing_order),
            "timers": dict(self.timers),
            "total_updates": self.total_updates,
            "total_virtual_time": self.total_virtual_time,
            "seed": self.seed,
            "backend": self.backend,
            "wall_time": self.wall_time,
            "topology": self.topology,
            "codec": self.codec,
            "comm": dict(self.comm),
            "obs": dict(self.obs),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "RunResult":
        """Inverse of :meth:`to_dict` (how the result store rehydrates runs)."""
        return cls(
            algorithm=payload["algorithm"],
            num_workers=int(payload["num_workers"]),
            bn_mode=payload["bn_mode"],
            curve=[CurvePoint.from_dict(p) for p in payload["curve"]],
            staleness={k: float(v) for k, v in payload["staleness"].items()},
            loss_prediction_pairs=[tuple(p) for p in payload["loss_prediction_pairs"]],
            step_prediction_pairs=[tuple(p) for p in payload["step_prediction_pairs"]],
            finishing_order=[int(m) for m in payload["finishing_order"]],
            timers={k: float(v) for k, v in payload["timers"].items()},
            total_updates=int(payload["total_updates"]),
            total_virtual_time=float(payload["total_virtual_time"]),
            seed=int(payload["seed"]),
            backend=payload["backend"],
            wall_time=float(payload["wall_time"]),
            # absent in results stored before decentralized runs / codecs existed
            topology=payload.get("topology", ""),
            codec=payload.get("codec", ""),
            comm={k: float(v) for k, v in payload.get("comm", {}).items()},
            # absent in results stored before the observability layer existed
            obs=dict(payload.get("obs", {})),
        )


def degradation(error: float, baseline_error: float) -> float:
    """Table 1's "Perf. Deg. (%)": relative error increase over the baseline."""
    if baseline_error <= 0:
        raise ValueError("baseline error must be positive")
    return 100.0 * (error - baseline_error) / baseline_error


def evaluate_model(
    model: Module,
    inputs: np.ndarray,
    targets: np.ndarray,
    batch_size: int = 256,
) -> Tuple[float, float]:
    """Error rate and mean loss of ``model`` on a labelled array pair.

    Runs in eval mode (BN uses running statistics) with gradients disabled.
    Returns ``(error, loss)`` where error is ``1 - accuracy``.
    """
    if len(inputs) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    was_training = model.training
    model.eval()
    correct = 0
    loss_sum = 0.0
    try:
        with no_grad():
            for start in range(0, len(inputs), batch_size):
                xb = inputs[start : start + batch_size]
                yb = targets[start : start + batch_size]
                logits = model(Tensor(xb))
                loss = F.cross_entropy(logits, yb, reduction="sum")
                loss_sum += float(loss.data)
                correct += int((logits.data.argmax(axis=1) == yb).sum())
    finally:
        if was_training:
            model.train()
    n = len(inputs)
    return 1.0 - correct / n, loss_sum / n
