"""Experiment configuration.

A single :class:`TrainingConfig` fully determines a run: algorithm, model,
dataset, cluster timing model, predictor hyper-parameters and seed.  The
named constructors encode the paper's settings (scaled to laptop size where
noted) so benches and examples stay declarative.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, Optional, Sequence, Tuple

ALGORITHMS = ("sgd", "ssgd", "asgd", "dc-asgd", "lc-asgd", "sa-asgd", "ad-psgd")
BN_MODES = ("local", "replace", "async")
COMPENSATION_MODES = ("scale", "sensitivity", "damping")
TOPOLOGIES = ("ring", "bipartite", "complete")
COMM_CODECS = ("raw32", "fp16", "topk")


@dataclass
class PredictorConfig:
    """Hyper-parameters for the two server-side predictors.

    Paper values: loss hidden 64, step hidden 128 (Section 5.1).  The
    defaults here are the paper's; benches shrink them for CPU speed —
    the overhead tables report whatever is configured.
    """

    loss_variant: str = "lstm"  # lstm | ema | last | linear
    step_variant: str = "lstm"  # lstm | ema | last
    loss_hidden: int = 64
    step_hidden: int = 128
    loss_window: int = 16
    step_window: int = 8
    lr: float = 0.05
    momentum: float = 0.9
    train_every: int = 1

    def __post_init__(self) -> None:
        if self.loss_variant not in ("lstm", "ema", "last", "linear"):
            raise ValueError(f"unknown loss_variant {self.loss_variant!r}")
        if self.step_variant not in ("lstm", "ema", "last"):
            raise ValueError(f"unknown step_variant {self.step_variant!r}")
        if min(self.loss_hidden, self.step_hidden) <= 0:
            raise ValueError("predictor hidden sizes must be positive")
        if self.train_every < 1:
            raise ValueError("train_every must be >= 1")


@dataclass
class ClusterConfig:
    """Virtual-cluster timing model (see repro.cluster).

    ``mean_batch_time`` is the average seconds one worker spends on one
    batch (forward+backward); communication uses latency + size/bandwidth.
    Defaults approximate a commodity GPU cluster: ~30 ms batches, ~1 ms
    one-way latency, 1 GB/s links.
    """

    mean_batch_time: float = 0.03
    compute_heterogeneity: float = 0.15
    compute_jitter: float = 0.05
    straggler_probability: float = 0.0
    straggler_slowdown: float = 4.0
    link_latency: float = 1e-3
    link_bandwidth: float = 1e9
    link_jitter: float = 0.1
    network_heterogeneity: float = 0.1

    def __post_init__(self) -> None:
        if self.mean_batch_time <= 0:
            raise ValueError("mean_batch_time must be positive")
        if not 0 <= self.straggler_probability <= 1:
            raise ValueError("straggler_probability must be in [0, 1]")


@dataclass
class TrainingConfig:
    """Complete specification of one distributed-training run."""

    # algorithm
    algorithm: str = "lc-asgd"
    num_workers: int = 4
    bn_mode: str = "async"  # local | replace | async
    bn_decay: float = 0.2  # the d of Formulas 6-7

    # optimization (paper defaults: lr 0.3, /10 at 80 and 120 of 160 epochs)
    base_lr: float = 0.3
    momentum: float = 0.0
    weight_decay: float = 0.0
    lr_milestones: Tuple[int, ...] = (80, 120)
    lr_gamma: float = 0.1
    batch_size: int = 128
    epochs: int = 160
    max_updates: Optional[int] = None  # hard cap overriding epochs (tests)

    # LC-ASGD specifics
    lc_lambda: float = 0.5  # the lambda of Formula 5
    compensation: str = "damping"  # scale | sensitivity | damping (DESIGN.md §2)
    predictor: PredictorConfig = field(default_factory=PredictorConfig)

    # DC-ASGD specifics
    dc_lambda: float = 0.04
    dc_adaptive: bool = True

    # AD-PSGD specifics: the peer graph decentralized runs gossip over.
    # Ignored by the server-based algorithms (kept in the spec hash anyway:
    # one canonical serialization for every algorithm).
    topology: str = "ring"

    # Gradient codec applied on the wire (repro.runtime.codecs): raw32 keeps
    # the float32 framing, fp16 halves every array, topk ships the top 10%
    # of gradient coordinates with error feedback.  Honored by the backends
    # that move bytes (thread/proc/fleet); the pure simulator ignores it
    # (kept in the spec hash anyway, like ``topology``).
    comm_codec: str = "raw32"

    # model / dataset
    model: str = "mlp"  # any name in repro.nn.registry (mlp, resnet18, ...)
    model_kwargs: Dict = field(default_factory=dict)
    dataset: str = "cifar"  # any name in repro.data.registry (cifar, imagenet, spirals)
    dataset_kwargs: Dict = field(default_factory=dict)

    # cluster
    cluster: ClusterConfig = field(default_factory=ClusterConfig)

    # evaluation
    eval_train_samples: int = 512
    eval_test_samples: int = 1024
    eval_every_epochs: int = 1

    seed: int = 0

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ValueError(f"algorithm must be one of {ALGORITHMS}, got {self.algorithm!r}")
        if self.bn_mode not in BN_MODES:
            raise ValueError(f"bn_mode must be one of {BN_MODES}, got {self.bn_mode!r}")
        if self.compensation not in COMPENSATION_MODES:
            raise ValueError(
                f"compensation must be one of {COMPENSATION_MODES}, got {self.compensation!r}"
            )
        if self.topology not in TOPOLOGIES:
            raise ValueError(f"topology must be one of {TOPOLOGIES}, got {self.topology!r}")
        if self.comm_codec not in COMM_CODECS:
            raise ValueError(
                f"comm_codec must be one of {COMM_CODECS}, got {self.comm_codec!r}"
            )
        if self.algorithm == "sgd":
            # sequential SGD runs with exactly one worker.  Normalizing here
            # (rather than raising) is what lets sweep grids include "sgd"
            # alongside multi-worker counts — every caller used to repeat
            # ``num_workers=1 if algorithm == "sgd" else n`` by hand.
            self.num_workers = 1
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.batch_size < 1 or self.epochs < 1:
            raise ValueError("batch_size and epochs must be >= 1")
        if not 0 < self.bn_decay <= 1:
            raise ValueError("bn_decay must be in (0, 1]")
        if self.lc_lambda < 0:
            raise ValueError("lc_lambda must be >= 0")

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready nested dict: dataclasses recurse, tuples become lists.

        One serialization serves ``repro info``, the experiment-spec hash
        and the result store, so it must stay deterministic: field order is
        declaration order and every value is a JSON scalar/list/dict.
        """

        def convert(value: Any) -> Any:
            if isinstance(value, dict):
                return {k: convert(v) for k, v in value.items()}
            if isinstance(value, (list, tuple)):
                return [convert(v) for v in value]
            return value

        return convert(asdict(self))

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TrainingConfig":
        """Exact inverse of :meth:`to_dict`.

        This is how a config crosses process boundaries (the proc backend
        hands each worker child its config as JSON) and how stored specs
        could be rehydrated: nested dataclasses are rebuilt and
        list-encoded tuples restored, so ``from_dict(c.to_dict()) == c``.
        Unknown keys raise — a silently-dropped field would let two
        processes disagree about the experiment they are running.
        """
        data = dict(payload)
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown TrainingConfig field(s): {', '.join(unknown)}")
        if isinstance(data.get("predictor"), dict):
            data["predictor"] = PredictorConfig(**data["predictor"])
        if isinstance(data.get("cluster"), dict):
            data["cluster"] = ClusterConfig(**data["cluster"])
        if "lr_milestones" in data and data["lr_milestones"] is not None:
            data["lr_milestones"] = tuple(data["lr_milestones"])
        return cls(**data)

    # ------------------------------------------------------------------ #
    # named experiment presets
    # ------------------------------------------------------------------ #
    @classmethod
    def small_cifar(cls, algorithm: str = "lc-asgd", num_workers: int = 4, **overrides) -> "TrainingConfig":
        """Laptop-scale CIFAR-10 stand-in: MLP+BN on 8x8 synthetic images.

        This is the workhorse configuration of the benches (DESIGN.md
        substitution table): same loss/staleness dynamics, minutes not days.
        """
        defaults = dict(
            algorithm=algorithm,
            num_workers=num_workers,
            model="mlp",
            model_kwargs={"hidden": (96, 48), "batch_norm": True},
            dataset="cifar",
            dataset_kwargs={"train_size": 2048, "test_size": 1024, "side": 8, "noise": 1.2},
            batch_size=64,
            epochs=24,
            base_lr=0.075,
            momentum=0.9,
            lr_milestones=(12, 18),
            bn_mode="local" if algorithm == "sgd" else "async",
            lc_lambda=0.7,
            compensation="damping",
            predictor=PredictorConfig(loss_hidden=16, step_hidden=16, loss_window=10, step_window=5),
            cluster=ClusterConfig(
                compute_heterogeneity=0.3,
                compute_jitter=0.25,
                straggler_probability=0.08,
                straggler_slowdown=10.0,
            ),
            eval_train_samples=512,
            eval_test_samples=1024,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def small_imagenet(cls, algorithm: str = "lc-asgd", num_workers: int = 4, **overrides) -> "TrainingConfig":
        """Laptop-scale ImageNet stand-in: 27 classes, 12x12 images."""
        defaults = dict(
            algorithm=algorithm,
            num_workers=num_workers,
            model="mlp",
            model_kwargs={"hidden": (160, 64), "batch_norm": True},
            dataset="imagenet",
            dataset_kwargs={"train_size": 2700, "test_size": 1350, "side": 12, "noise": 1.1},
            batch_size=64,
            epochs=18,
            base_lr=0.06,
            momentum=0.9,
            lr_milestones=(9, 14),
            bn_mode="local" if algorithm == "sgd" else "async",
            lc_lambda=0.7,
            compensation="damping",
            predictor=PredictorConfig(loss_hidden=16, step_hidden=16, loss_window=10, step_window=5),
            cluster=ClusterConfig(
                mean_batch_time=0.18,  # ImageNet batches ~6x CIFAR (paper Tables 2-3)
                compute_heterogeneity=0.3,
                compute_jitter=0.25,
                straggler_probability=0.08,
                straggler_slowdown=10.0,
            ),
            eval_train_samples=512,
            eval_test_samples=1350,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def paper_cifar10(cls, algorithm: str = "lc-asgd", num_workers: int = 4, **overrides) -> "TrainingConfig":
        """The paper's CIFAR-10 setting: ResNet-18, 160 epochs, lr 0.3/{80,120}.

        Heavy in pure NumPy — provided for completeness and long runs.
        """
        defaults = dict(
            algorithm=algorithm,
            num_workers=num_workers,
            model="resnet18",
            model_kwargs={"base_width": 16},
            dataset="cifar",
            dataset_kwargs={"train_size": 8192, "test_size": 2048, "side": 16, "noise": 0.6},
            batch_size=128,
            epochs=160,
            base_lr=0.3,
            lr_milestones=(80, 120),
            bn_mode="local" if algorithm == "sgd" else "async",
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def paper_imagenet(cls, algorithm: str = "lc-asgd", num_workers: int = 4, **overrides) -> "TrainingConfig":
        """The paper's ImageNet setting: ResNet-50, 120 epochs, /10 at {60,90}."""
        defaults = dict(
            algorithm=algorithm,
            num_workers=num_workers,
            model="resnet50",
            model_kwargs={"base_width": 16},
            dataset="imagenet",
            dataset_kwargs={"train_size": 16384, "test_size": 4096, "side": 16, "noise": 0.7},
            batch_size=128,
            epochs=120,
            base_lr=0.3,
            lr_milestones=(60, 90),
            bn_mode="local" if algorithm == "sgd" else "async",
            cluster=ClusterConfig(mean_batch_time=0.18),
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def tiny(cls, algorithm: str = "asgd", num_workers: int = 2, **overrides) -> "TrainingConfig":
        """Seconds-scale config for unit/integration tests."""
        defaults = dict(
            algorithm=algorithm,
            num_workers=num_workers,
            model="mlp",
            model_kwargs={"hidden": (32,), "batch_norm": True},
            dataset="cifar",
            dataset_kwargs={"train_size": 256, "test_size": 128, "side": 6, "noise": 0.5},
            batch_size=32,
            epochs=3,
            base_lr=0.1,
            lr_milestones=(),
            bn_mode="local" if algorithm == "sgd" else "async",
            predictor=PredictorConfig(loss_hidden=8, step_hidden=8, loss_window=6, step_window=4),
            eval_train_samples=128,
            eval_test_samples=128,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def spirals(cls, algorithm: str = "lc-asgd", num_workers: int = 4, **overrides) -> "TrainingConfig":
        """Seconds-scale 2-D spirals scenario: the non-image workload.

        Exercises the same staleness dynamics on a dataset with no channel
        structure — useful for sweeps that vary cluster timing rather than
        model capacity.
        """
        defaults = dict(
            algorithm=algorithm,
            num_workers=num_workers,
            model="mlp",
            model_kwargs={"hidden": (32, 16), "batch_norm": True},
            dataset="spirals",
            dataset_kwargs={"num_samples": 900, "noise": 0.25},
            batch_size=32,
            epochs=6,
            base_lr=0.1,
            momentum=0.9,
            lr_milestones=(4,),
            bn_mode="local" if algorithm == "sgd" else "async",
            predictor=PredictorConfig(loss_hidden=8, step_hidden=8, loss_window=6, step_window=4),
            eval_train_samples=256,
            eval_test_samples=180,
        )
        defaults.update(overrides)
        return cls(**defaults)

    def with_overrides(self, **overrides) -> "TrainingConfig":
        """Return a copy with fields replaced."""
        return replace(self, **overrides)
