"""The paper's contribution: LC-ASGD and its baselines.

Components map one-to-one onto the paper:

* :mod:`repro.core.worker` — Algorithm 1 (worker computations).
* :mod:`repro.core.server` — Algorithm 2 (parameter server).
* :mod:`repro.core.predictors.loss_predictor` — Algorithm 3 (online LSTM
  loss predictor).
* :mod:`repro.core.predictors.step_predictor` — Algorithm 4 (online
  multivariate LSTM step predictor).
* :mod:`repro.core.batchnorm_sync` — Formulas 6-7 (Async-BN) plus the
  replace-mode baseline BN.
* :mod:`repro.core.algorithms` — the update rules: sequential SGD, SSGD
  (Formula 1), ASGD (Formula 2), DC-ASGD (Formula 3) and LC-ASGD
  (Formulas 4-5, 9-10).
* :mod:`repro.core.trainer` — the DistributedTrainer executing an
  :class:`~repro.runtime.session.ExperimentPlan` (built in
  :mod:`repro.runtime.session`) on the cluster simulator; the thread
  runtime in :mod:`repro.runtime` executes the same plan concurrently.
"""

from repro.core.checkpoint import load_model_from_checkpoint, save_run_checkpoint
from repro.core.config import ClusterConfig, PredictorConfig, TrainingConfig
from repro.core.metrics import CurvePoint, RunResult, evaluate_model
from repro.core.trainer import DistributedTrainer

__all__ = [
    "TrainingConfig",
    "ClusterConfig",
    "PredictorConfig",
    "DistributedTrainer",
    "RunResult",
    "CurvePoint",
    "evaluate_model",
    "save_run_checkpoint",
    "load_model_from_checkpoint",
]
