"""The DistributedTrainer: Algorithms 1-4 on the virtual-time simulator.

Execution model (DESIGN.md §5): real mathematics runs inside virtual-time
event callbacks.  One worker cycle is

1. **pull request** — worker -> server (small message up the link);
2. **pull reply** — server -> worker (full model down the link);
   ``t_comm`` = reply arrival minus request issue (Algorithm 1, line 3);
3. **forward** — real forward pass; virtual duration is 1/3 of the
   worker's sampled batch time;
4. **state push** — ``state_m`` up the link (loss + BN stats + costs);
5. *(LC-ASGD only)* **compensation reply** — the server's ``l_delay``
   travels back down before backward can start (the extra round trip whose
   cost appears in the wall-clock figures);
6. **backward** — real backward pass (seeded with the compensation);
   virtual duration is 2/3 of the batch time; the worker then immediately
   begins its next cycle (it never waits for the server to apply);
7. **gradient push** — gradient up the link; the server applies the
   update rule, advancing the version.

For the non-LC algorithms, steps 4-6 fuse: state and gradient travel
together and no reply is awaited.  SSGD additionally queues pulls at the
server until the round's barrier closes.

Backend split (``repro.runtime``): the experiment *wiring* — datasets,
identically-initialized replicas, the server with its predictors and BN
strategy, the cluster timing models — lives in
:class:`repro.runtime.session.ExperimentPlan`, and the shared evaluation/
trace/result machinery in :class:`repro.runtime.session.ExperimentSession`.
This module is now only the **sim flavor** of executing a plan: it maps the
seven arrows above onto :class:`~repro.cluster.simulator.Simulator` events.
The thread flavor (:class:`repro.runtime.thread_backend.ThreadBackend`)
runs the *same* plan on real threads with wall-clock staleness; both are
selected by name through :func:`repro.runtime.run_experiment` or
``repro run --backend {sim,thread}``.  ``build_dataset``/``build_model``
are re-exported here for backward compatibility.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from repro.cluster.simulator import Simulator
from repro.core.config import TrainingConfig
from repro.core.metrics import CurvePoint, RunResult
from repro.core.state import CompensationReply, GradientPayload, WorkerState
from repro.utils.logging import get_logger

logger = get_logger("core.trainer")

_REQUEST_BYTES = 256  # pull request / small control messages


def build_dataset(config: TrainingConfig):
    """Return (train, test, num_classes); see :mod:`repro.runtime.session`."""
    from repro.runtime.session import build_dataset as _build_dataset

    return _build_dataset(config)


def build_model(config: TrainingConfig, input_shape: Tuple[int, ...], num_classes: int):
    """Build one seeded model replica; see :mod:`repro.runtime.session`."""
    from repro.runtime.session import build_model as _build_model

    return _build_model(config, input_shape, num_classes)


class DistributedTrainer:
    """Run one configured experiment end to end and return a RunResult.

    Accepts either a :class:`~repro.core.config.TrainingConfig` (a plan is
    built internally) or a pre-built :class:`~repro.runtime.session.
    ExperimentPlan` via ``plan=`` (how :class:`~repro.runtime.backends.
    SimBackend` drives it).  Plan components are exposed as attributes
    (``workers``, ``server``, ``compute``, ...) for tests and tooling.
    """

    def __init__(self, config: Optional[TrainingConfig] = None, plan=None) -> None:
        from repro.runtime.session import ExperimentPlan, ExperimentSession

        if plan is None:
            if config is None:
                raise ValueError("DistributedTrainer needs a config or a plan")
            plan = ExperimentPlan.from_config(config)
        if plan.config.algorithm == "ad-psgd":
            # no parameter server exists in a decentralized run; silently
            # treating the gossip rule as a server rule would "work" but
            # simulate the wrong system
            raise ValueError(
                "DistributedTrainer simulates a parameter server; run "
                "'ad-psgd' through run_experiment(..., backend='sim') so it "
                "dispatches to the gossip runtime"
            )
        self.plan = plan
        self.session = ExperimentSession(plan)

        # plan aliases (stable public surface) -------------------------------------------
        self.config = plan.config
        self.rng_tree = plan.rng_tree
        self.timer = plan.timer
        self.trace = self.session.trace
        self.train_set = plan.train_set
        self.test_set = plan.test_set
        self.num_classes = plan.num_classes
        self.eval_model = plan.eval_model
        self.workers = plan.workers
        self.server = plan.server
        self.compute = plan.compute
        self.network = plan.network
        self.iters_per_epoch = plan.iters_per_epoch
        self.total_updates = plan.total_updates
        self.model_bytes = plan.model_bytes
        self.state_bytes = plan.state_bytes
        self._eval_indices = self.session._eval_indices

        self.sim = Simulator()

    # ------------------------------------------------------------------ #
    # event handlers (the cycle of the module docstring)
    # ------------------------------------------------------------------ #
    def _begin_cycle(self, m: int) -> None:
        if self.server.batches_processed >= self.total_updates:
            return
        t0 = self.sim.now
        up = self.network.transfer_time(m, _REQUEST_BYTES)
        self.sim.schedule(up, lambda: self._server_pull(m, t0), label=f"pull-req-{m}")

    def _server_pull(self, m: int, t0: float) -> None:
        weights = self.server.handle_pull(m, request_time=t0)
        self.trace.record(self.sim.now, "pull", m, version=self.server.version)
        if weights is None:
            return  # queued behind the SSGD barrier
        self._send_weights(m, t0, weights)

    def _send_weights(self, m: int, t0: float, weights: np.ndarray) -> None:
        down = self.network.transfer_time(m, self.model_bytes)
        version = self.server.pull_versions[m]
        self.sim.schedule(
            down, lambda: self._worker_weights(m, t0, weights, version), label=f"weights-{m}"
        )

    def _worker_weights(self, m: int, t0: float, weights: np.ndarray, version: int) -> None:
        worker = self.workers[m]
        t_comm = self.sim.now - t0
        worker.load_params(weights, version, t_comm)
        with self.timer.section("worker-compute"):
            state = worker.forward()
        dur_fwd = self.compute.duration(m, fraction=1.0 / 3.0)
        if self.server.rule.requires_compensation:
            up = self.network.transfer_time(m, self.state_bytes)
            self.sim.schedule(
                dur_fwd + up, lambda: self._server_state(m, state), label=f"state-{m}"
            )
        else:
            with self.timer.section("worker-compute"):
                payload = worker.backward(reply=None, t_comp=0.0)
            dur_bwd = self.compute.duration(m, fraction=2.0 / 3.0)
            worker.last_t_comp = dur_bwd
            up = self.network.transfer_time(m, self.model_bytes + self.state_bytes)
            self.sim.schedule(
                dur_fwd + dur_bwd + up,
                lambda: self._server_combined(m, state, payload),
                label=f"grad-{m}",
            )
            # FIFO per connection: the next pull request leaves with (and is
            # processed after) the gradient push, so a worker always sees its
            # own update — sequential SGD is exactly staleness-0.
            self.sim.schedule(dur_fwd + dur_bwd + up, lambda: self._begin_cycle(m))

    def _server_state(self, m: int, state: WorkerState) -> None:
        reply = self.server.handle_state(state)
        self.trace.record(self.sim.now, "state", m, version=self.server.version, value=state.loss)
        down = self.network.transfer_time(m, _REQUEST_BYTES)
        self.sim.schedule(down, lambda: self._worker_compensation(m, reply), label=f"comp-{m}")

    def _worker_compensation(self, m: int, reply: Optional[CompensationReply]) -> None:
        worker = self.workers[m]
        dur_bwd = self.compute.duration(m, fraction=2.0 / 3.0)
        with self.timer.section("worker-compute"):
            payload = worker.backward(
                reply=reply,
                lc_lambda=self.config.lc_lambda,
                compensation=self.config.compensation,
                t_comp=dur_bwd,
            )
        up = self.network.transfer_time(m, self.model_bytes)
        self.sim.schedule(
            dur_bwd + up, lambda: self._server_gradient(m, payload), label=f"grad-{m}"
        )
        # FIFO per connection (see _worker_weights): pull follows the push.
        self.sim.schedule(dur_bwd + up, lambda: self._begin_cycle(m))

    def _server_combined(self, m: int, state: WorkerState, payload: GradientPayload) -> None:
        """Fused state+gradient arrival for the non-LC algorithms."""
        advanced, staleness = self.server.handle_combined(state, payload)
        self._after_gradient(m, payload, advanced, staleness)

    def _server_gradient(self, m: int, payload: GradientPayload) -> None:
        self.trace.record(self.sim.now, "gradient", m, version=self.server.version)
        advanced, staleness = self.server.handle_gradient(payload)
        self._after_gradient(m, payload, advanced, staleness)

    def _after_gradient(
        self, m: int, payload: GradientPayload, advanced: bool, staleness: int
    ) -> None:
        self.trace.record(
            self.sim.now,
            "update",
            m,
            version=self.server.version,
            staleness=staleness,
            value=payload.loss,
        )
        # same site, same value as the ClusterTrace update event (and as the
        # concurrent server actor's emission), so the trace's staleness
        # histogram matches RunResult.staleness; t is *virtual* seconds,
        # which is what makes sim traces bit-reproducible
        recorder = self.plan.recorder
        if recorder.enabled and staleness >= 0:
            recorder.emit(
                self.sim.now, "staleness", m,
                value=float(int(staleness)), version=self.server.version,
            )
        if advanced:
            for worker_id, t0 in self.server.drain_pending_pulls():
                self._send_weights(worker_id, t0, self.server.params.copy())
        self.session.maybe_evaluate(self.sim.now)
        if self.server.batches_processed >= self.total_updates:
            self.sim.stop()

    # ------------------------------------------------------------------ #
    def run(self) -> RunResult:
        """Execute the configured run and collect the result."""
        # wall_time is reporting-only, never fed back into the simulation
        # (virtual time drives everything else)  # lint-ok: determinism
        wall_start = time.perf_counter()
        start_jitter = self.rng_tree.child("start").generator("jitter")
        for m in range(self.config.num_workers):
            delay = float(start_jitter.uniform(0.0, 1e-4))
            self.sim.schedule(delay, lambda m=m: self._begin_cycle(m))
        # generous event budget: each update takes a bounded handful of events
        self.sim.run(max_events=40 * self.total_updates + 10_000)

        # degenerate runs (e.g. max_updates smaller than one epoch and the
        # finish-eval raced the stop): take one final snapshot
        self.session.ensure_final_eval(self.sim.now)
        return self.session.build_result(
            self.sim.now,
            backend="sim",
            wall_time=time.perf_counter() - wall_start,  # lint-ok: determinism
        )

    # backward-compat shims (pre-runtime callers/tests) ----------------------------------
    @property
    def _curve(self) -> List[CurvePoint]:
        return self.session.curve

    def _evaluate(self) -> CurvePoint:
        return self.session.evaluate(self.sim.now)

    def _sync_eval_model(self) -> None:
        self.session.sync_eval_model()
