"""The DistributedTrainer: wires Algorithms 1-4 into the cluster simulator.

Execution model (DESIGN.md §5): real mathematics runs inside virtual-time
event callbacks.  One worker cycle is

1. **pull request** — worker -> server (small message up the link);
2. **pull reply** — server -> worker (full model down the link);
   ``t_comm`` = reply arrival minus request issue (Algorithm 1, line 3);
3. **forward** — real forward pass; virtual duration is 1/3 of the
   worker's sampled batch time;
4. **state push** — ``state_m`` up the link (loss + BN stats + costs);
5. *(LC-ASGD only)* **compensation reply** — the server's ``l_delay``
   travels back down before backward can start (the extra round trip whose
   cost appears in the wall-clock figures);
6. **backward** — real backward pass (seeded with the compensation);
   virtual duration is 2/3 of the batch time; the worker then immediately
   begins its next cycle (it never waits for the server to apply);
7. **gradient push** — gradient up the link; the server applies the
   update rule, advancing the version.

For the non-LC algorithms, steps 4-6 fuse: state and gradient travel
together and no reply is awaited.  SSGD additionally queues pulls at the
server until the round's barrier closes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.network import LinkModel, NetworkModel
from repro.cluster.node import ComputeModel, StragglerModel
from repro.cluster.simulator import Simulator
from repro.cluster.trace import ClusterTrace
from repro.core.algorithms import make_update_rule
from repro.core.batchnorm_sync import make_bn_strategy
from repro.core.config import TrainingConfig
from repro.core.metrics import CurvePoint, RunResult, evaluate_model
from repro.core.predictors import make_loss_predictor, make_step_predictor
from repro.core.server import ParameterServer
from repro.core.state import CompensationReply, GradientPayload, WorkerState
from repro.core.worker import DistributedWorker
from repro.data.dataset import ArrayDataset
from repro.data.loader import DataLoader
from repro.data.synthetic import SyntheticCIFAR10, SyntheticImageNet, make_spirals
from repro.nn.mlp import MLP
from repro.nn.module import Module, get_flat_params
from repro.nn.norm import bn_layers, load_bn_running_stats
from repro.nn.resnet import resnet18, resnet50, resnet_tiny
from repro.optim.lr_scheduler import MultiStepLR
from repro.utils.logging import get_logger
from repro.utils.rng import RngTree
from repro.utils.timer import Timer

logger = get_logger("core.trainer")

_REQUEST_BYTES = 256  # pull request / small control messages
_STATE_OVERHEAD_BYTES = 1024  # loss + costs; BN stats added per feature


def build_dataset(config: TrainingConfig) -> Tuple[ArrayDataset, ArrayDataset, int]:
    """Return (train, test, num_classes) for the configured dataset."""
    kwargs = dict(config.dataset_kwargs)
    kwargs.setdefault("seed", config.seed)
    if config.dataset == "cifar":
        bundle = SyntheticCIFAR10(**kwargs)
        return bundle.train, bundle.test, SyntheticCIFAR10.num_classes
    if config.dataset == "imagenet":
        bundle = SyntheticImageNet(**kwargs)
        return bundle.train, bundle.test, SyntheticImageNet.num_classes
    if config.dataset == "spirals":
        kwargs.setdefault("num_samples", 600)
        num_classes = kwargs.pop("num_classes", 3)
        test_size = kwargs.pop("test_size", max(1, kwargs["num_samples"] // 5))
        full = make_spirals(num_classes=num_classes, **kwargs)
        train = full.subset(np.arange(len(full) - test_size))
        test = full.subset(np.arange(len(full) - test_size, len(full)))
        return train, test, num_classes
    raise ValueError(f"unknown dataset {config.dataset!r}")


def build_model(config: TrainingConfig, input_shape: Tuple[int, ...], num_classes: int) -> Module:
    """Build one model replica with init seeded by ``config.seed``.

    Every call returns an identically initialized model (fresh RngTree from
    the same seed), which is how all replicas and the server start from
    "the same randomly initialized model" (Section 5).
    """
    rng = RngTree(config.seed).child("model-init").generator("weights")
    kwargs = dict(config.model_kwargs)
    if config.model == "mlp":
        input_dim = int(np.prod(input_shape))
        hidden = tuple(kwargs.pop("hidden", (64,)))
        batch_norm = kwargs.pop("batch_norm", True)
        if kwargs:
            raise ValueError(f"unknown mlp kwargs {sorted(kwargs)}")
        return MLP((input_dim, *hidden, num_classes), batch_norm=batch_norm, rng=rng)
    if config.model in ("resnet18", "resnet50", "resnet_tiny"):
        factory = {"resnet18": resnet18, "resnet50": resnet50, "resnet_tiny": resnet_tiny}[config.model]
        in_channels = input_shape[0] if len(input_shape) == 3 else 3
        return factory(num_classes=num_classes, in_channels=in_channels, rng=rng, **kwargs)
    raise ValueError(f"unknown model {config.model!r}")


class DistributedTrainer:
    """Run one configured experiment end to end and return a RunResult."""

    def __init__(self, config: TrainingConfig) -> None:
        self.config = config
        self.rng_tree = RngTree(config.seed)
        self.timer = Timer()
        self.trace = ClusterTrace()

        self.train_set, self.test_set, self.num_classes = build_dataset(config)
        input_shape = self.train_set.input_shape

        # model replicas (identical init) ------------------------------------------------
        self.eval_model = build_model(config, input_shape, self.num_classes)
        self.workers: List[DistributedWorker] = []
        for m in range(config.num_workers):
            model = build_model(config, input_shape, self.num_classes)
            loader = DataLoader(
                self.train_set,
                config.batch_size,
                shuffle=True,
                seed=self.rng_tree.child(f"worker-{m}").generator("batches"),
            )
            self.workers.append(
                DistributedWorker(m, model, loader, collect_bn=config.bn_mode != "local")
            )

        # server --------------------------------------------------------------------------
        iters_per_epoch = max(1, int(np.ceil(len(self.train_set) / config.batch_size)))
        self.iters_per_epoch = iters_per_epoch
        if config.max_updates is not None:
            self.total_updates = int(config.max_updates)
        else:
            self.total_updates = config.epochs * iters_per_epoch

        feature_sizes = [layer.num_features for layer in bn_layers(self.eval_model)]
        bn_strategy = make_bn_strategy(config.bn_mode, feature_sizes, decay=config.bn_decay)

        loss_predictor = step_predictor = None
        if config.algorithm == "lc-asgd":
            p = config.predictor
            pred_seed = self.rng_tree.child("predictors").seed
            loss_kwargs = {}
            step_kwargs = {"max_step": max(4 * config.num_workers, 8)}
            if p.loss_variant == "lstm":
                loss_kwargs = dict(
                    hidden_size=p.loss_hidden, window=p.loss_window,
                    lr=p.lr, momentum=p.momentum, train_every=p.train_every, seed=pred_seed,
                )
            elif p.loss_variant == "linear":
                loss_kwargs = dict(window=p.loss_window)
            if p.step_variant == "lstm":
                step_kwargs.update(
                    hidden_size=p.step_hidden, window=p.step_window,
                    lr=p.lr, momentum=p.momentum, train_every=p.train_every, seed=pred_seed,
                )
            loss_predictor = make_loss_predictor(p.loss_variant, **loss_kwargs)
            step_predictor = make_step_predictor(p.step_variant, **step_kwargs)

        rule = make_update_rule(
            config.algorithm,
            num_workers=config.num_workers,
            momentum=config.momentum,
            dc_lambda=config.dc_lambda,
            dc_adaptive=config.dc_adaptive,
        )
        schedule = MultiStepLR(config.base_lr, config.lr_milestones, config.lr_gamma)
        init_params = get_flat_params(self.workers[0].model)
        self.server = ParameterServer(
            init_params,
            rule,
            schedule,
            iters_per_epoch,
            bn_strategy=bn_strategy,
            loss_predictor=loss_predictor,
            step_predictor=step_predictor,
            lc_lambda=config.lc_lambda,
            compensation=config.compensation,
            timer=self.timer,
        )
        self.model_bytes = init_params.size * 4  # float32 wire format
        bn_payload = sum(2 * s * 4 for s in feature_sizes)
        self.state_bytes = _STATE_OVERHEAD_BYTES + (bn_payload if config.bn_mode != "local" else 0)

        # cluster --------------------------------------------------------------------------
        cl = config.cluster
        sequential = config.algorithm == "sgd"
        self.compute = ComputeModel(
            config.num_workers,
            mean_batch_time=cl.mean_batch_time,
            heterogeneity=0.0 if sequential else cl.compute_heterogeneity,
            jitter_sigma=0.0 if sequential else cl.compute_jitter,
            straggler=StragglerModel(cl.straggler_probability, cl.straggler_slowdown),
            seed=self.rng_tree.child("compute"),
        )
        link = LinkModel(
            base_latency=0.0 if sequential else cl.link_latency,
            bandwidth=cl.link_bandwidth,
            jitter_sigma=0.0 if sequential else cl.link_jitter,
        )
        self.network = NetworkModel(
            config.num_workers,
            link=link,
            heterogeneity=0.0 if sequential else cl.network_heterogeneity,
            seed=self.rng_tree.child("network"),
        )

        self.sim = Simulator()
        self._curve: List[CurvePoint] = []
        self._last_eval_epoch = -1
        self._eval_indices = self._pick_eval_indices()

    # ------------------------------------------------------------------ #
    def _pick_eval_indices(self) -> Tuple[np.ndarray, np.ndarray]:
        """Fixed train/test evaluation subsets (same across all epochs)."""
        rng = self.rng_tree.child("eval").generator("subsets")
        n_train = min(self.config.eval_train_samples, len(self.train_set))
        n_test = min(self.config.eval_test_samples, len(self.test_set))
        train_idx = rng.permutation(len(self.train_set))[:n_train]
        test_idx = rng.permutation(len(self.test_set))[:n_test]
        return np.sort(train_idx), np.sort(test_idx)

    def _sync_eval_model(self) -> None:
        """Install the server's weights + the appropriate BN stats for eval."""
        from repro.nn.module import set_flat_params

        set_flat_params(self.eval_model, self.server.params)
        if self.server.bn_strategy is not None:
            load_bn_running_stats(self.eval_model, self.server.bn_strategy.current())
        else:  # local mode: sequential SGD's own running statistics
            source_layers = bn_layers(self.workers[0].model)
            stats = [(l.running_mean.copy(), l.running_var.copy()) for l in source_layers]
            load_bn_running_stats(self.eval_model, stats)

    def _evaluate(self) -> CurvePoint:
        """One evaluation snapshot at the current virtual time."""
        self._sync_eval_model()
        train_idx, test_idx = self._eval_indices
        train_err, train_loss = evaluate_model(
            self.eval_model, self.train_set.inputs[train_idx], self.train_set.targets[train_idx]
        )
        test_err, test_loss = evaluate_model(
            self.eval_model, self.test_set.inputs[test_idx], self.test_set.targets[test_idx]
        )
        return CurvePoint(
            epoch=self.server.epoch,
            time=self.sim.now,
            train_error=train_err,
            train_loss=train_loss,
            test_error=test_err,
            test_loss=test_loss,
        )

    # ------------------------------------------------------------------ #
    # event handlers (the cycle of the module docstring)
    # ------------------------------------------------------------------ #
    def _begin_cycle(self, m: int) -> None:
        if self.server.batches_processed >= self.total_updates:
            return
        t0 = self.sim.now
        up = self.network.transfer_time(m, _REQUEST_BYTES)
        self.sim.schedule(up, lambda: self._server_pull(m, t0), label=f"pull-req-{m}")

    def _server_pull(self, m: int, t0: float) -> None:
        weights = self.server.handle_pull(m, request_time=t0)
        self.trace.record(self.sim.now, "pull", m, version=self.server.version)
        if weights is None:
            return  # queued behind the SSGD barrier
        self._send_weights(m, t0, weights)

    def _send_weights(self, m: int, t0: float, weights: np.ndarray) -> None:
        down = self.network.transfer_time(m, self.model_bytes)
        version = self.server.pull_versions[m]
        self.sim.schedule(
            down, lambda: self._worker_weights(m, t0, weights, version), label=f"weights-{m}"
        )

    def _worker_weights(self, m: int, t0: float, weights: np.ndarray, version: int) -> None:
        worker = self.workers[m]
        t_comm = self.sim.now - t0
        worker.load_params(weights, version, t_comm)
        with self.timer.section("worker-compute"):
            state = worker.forward()
        dur_fwd = self.compute.duration(m, fraction=1.0 / 3.0)
        if self.server.rule.requires_compensation:
            up = self.network.transfer_time(m, self.state_bytes)
            self.sim.schedule(
                dur_fwd + up, lambda: self._server_state(m, state), label=f"state-{m}"
            )
        else:
            with self.timer.section("worker-compute"):
                payload = worker.backward(reply=None, t_comp=0.0)
            dur_bwd = self.compute.duration(m, fraction=2.0 / 3.0)
            worker.last_t_comp = dur_bwd
            up = self.network.transfer_time(m, self.model_bytes + self.state_bytes)
            self.sim.schedule(
                dur_fwd + dur_bwd + up,
                lambda: self._server_combined(m, state, payload),
                label=f"grad-{m}",
            )
            # FIFO per connection: the next pull request leaves with (and is
            # processed after) the gradient push, so a worker always sees its
            # own update — sequential SGD is exactly staleness-0.
            self.sim.schedule(dur_fwd + dur_bwd + up, lambda: self._begin_cycle(m))

    def _server_state(self, m: int, state: WorkerState) -> None:
        reply = self.server.handle_state(state)
        self.trace.record(self.sim.now, "state", m, version=self.server.version, value=state.loss)
        down = self.network.transfer_time(m, _REQUEST_BYTES)
        self.sim.schedule(down, lambda: self._worker_compensation(m, reply), label=f"comp-{m}")

    def _worker_compensation(self, m: int, reply: Optional[CompensationReply]) -> None:
        worker = self.workers[m]
        dur_bwd = self.compute.duration(m, fraction=2.0 / 3.0)
        with self.timer.section("worker-compute"):
            payload = worker.backward(
                reply=reply,
                lc_lambda=self.config.lc_lambda,
                compensation=self.config.compensation,
                t_comp=dur_bwd,
            )
        up = self.network.transfer_time(m, self.model_bytes)
        self.sim.schedule(
            dur_bwd + up, lambda: self._server_gradient(m, payload), label=f"grad-{m}"
        )
        # FIFO per connection (see _worker_weights): pull follows the push.
        self.sim.schedule(dur_bwd + up, lambda: self._begin_cycle(m))

    def _server_combined(self, m: int, state: WorkerState, payload: GradientPayload) -> None:
        """Fused state+gradient arrival for the non-LC algorithms."""
        self.server.iter_log.append(state.worker)
        if self.server.bn_strategy is not None and state.bn_stats:
            self.server.bn_strategy.update(state.bn_stats)
        self._apply_gradient(m, payload)

    def _server_gradient(self, m: int, payload: GradientPayload) -> None:
        self.trace.record(self.sim.now, "gradient", m, version=self.server.version)
        self._apply_gradient(m, payload)

    def _apply_gradient(self, m: int, payload: GradientPayload) -> None:
        advanced, staleness = self.server.handle_gradient(payload)
        self.trace.record(
            self.sim.now,
            "update",
            m,
            version=self.server.version,
            staleness=staleness,
            value=payload.loss,
        )
        if advanced:
            for worker_id, t0 in self.server.drain_pending_pulls():
                self._send_weights(worker_id, t0, self.server.params.copy())
        self._maybe_evaluate()
        if self.server.batches_processed >= self.total_updates:
            self.sim.stop()

    def _maybe_evaluate(self) -> None:
        epoch = self.server.epoch
        boundary = (
            self.server.batches_processed % self.iters_per_epoch == 0
            and self.server.batches_processed > 0
        )
        finished = self.server.batches_processed >= self.total_updates
        if not boundary and not finished:
            return
        completed_epoch = epoch - 1 if boundary else epoch
        if completed_epoch <= self._last_eval_epoch and not finished:
            return
        if (
            not finished
            and self.config.eval_every_epochs > 1
            and (completed_epoch + 1) % self.config.eval_every_epochs != 0
        ):
            self._last_eval_epoch = completed_epoch
            return
        point = self._evaluate()
        self._curve.append(point)
        self._last_eval_epoch = completed_epoch
        logger.info(
            "algo=%s M=%d epoch=%d t=%.1fs train_err=%.4f test_err=%.4f",
            self.config.algorithm,
            self.config.num_workers,
            point.epoch,
            point.time,
            point.train_error,
            point.test_error,
        )

    # ------------------------------------------------------------------ #
    def run(self) -> RunResult:
        """Execute the configured run and collect the result."""
        start_jitter = self.rng_tree.child("start").generator("jitter")
        for m in range(self.config.num_workers):
            delay = float(start_jitter.uniform(0.0, 1e-4))
            self.sim.schedule(delay, lambda m=m: self._begin_cycle(m))
        # generous event budget: each update takes a bounded handful of events
        self.sim.run(max_events=40 * self.total_updates + 10_000)

        if not self._curve:
            # degenerate runs (e.g. max_updates smaller than one epoch and
            # the finish-eval raced the stop): take one final snapshot
            self._curve.append(self._evaluate())

        # Tables 2-3 report cost *per training iteration*: total section time
        # divided by the number of gradients processed (one iteration = one
        # batch = one server update attempt).
        updates = max(self.server.batches_processed, 1)
        timers = {
            "loss_pred_ms": self.timer.total("loss-pred") * 1e3 / updates,
            "step_pred_ms": self.timer.total("step-pred") * 1e3 / updates,
            "worker_compute_ms": self.timer.total("worker-compute") * 1e3 / updates,
        }
        return RunResult(
            algorithm=self.config.algorithm,
            num_workers=self.config.num_workers,
            bn_mode=self.config.bn_mode,
            curve=list(self._curve),
            staleness=self.trace.staleness_stats(),
            loss_prediction_pairs=list(self.server.loss_prediction_pairs),
            step_prediction_pairs=list(self.server.step_prediction_pairs),
            finishing_order=self.trace.finishing_order(),
            timers=timers,
            total_updates=self.server.batches_processed,
            total_virtual_time=self.sim.now,
            seed=self.config.seed,
        )
