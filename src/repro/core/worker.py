"""The worker — Algorithm 1.

Each worker owns a model replica and a mini-batch stream over the shared
training set.  Its cycle (pull -> forward -> state push -> [compensation]
-> backward -> gradient push) is driven by the trainer's event handlers;
this class holds the *real* mathematics of each step.

The compensation enters as a backward *seed* (Formula 5 couplings; see
:func:`repro.core.algorithms.lcasgd.compensation_seed`): the worker
backpropagates ``seed * l_m`` instead of ``l_m``.
"""

from __future__ import annotations

import threading
from typing import Optional, Tuple

import numpy as np

from repro.analysis.lockorder import make_lock
from repro.core.algorithms.lcasgd import compensation_seed
from repro.core.state import CompensationReply, GradientPayload, WorkerState
from repro.data.loader import DataLoader
from repro.nn.module import Module, get_flat_grads, set_flat_params
from repro.nn.norm import collect_bn_stats
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class DistributedWorker:
    """Algorithm 1's computations for one worker ``m``."""

    def __init__(
        self,
        worker_id: int,
        model: Module,
        loader: DataLoader,
        collect_bn: bool = True,
    ) -> None:
        self.worker_id = int(worker_id)
        self.model = model
        self.loader = loader
        self.collect_bn = collect_bn
        # Guards replica mutation for concurrent runtimes: the thread
        # backend holds it during forward/backward, and local-BN-mode eval
        # acquires it to snapshot this replica's running statistics
        # consistently.  Uncontended (and thus free) under the simulator.
        self.model_lock = make_lock("DistributedWorker.model_lock")
        self.pull_version = -1
        self.last_t_comm = 0.0
        self.last_t_comp = 0.0
        self._pending_loss: Optional[Tensor] = None
        self._pending_loss_value = 0.0

    # ------------------------------------------------------------------ #
    def load_params(self, flat: np.ndarray, version: int, t_comm: float) -> None:
        """Algorithm 1, lines 1-3: install pulled weights, record ``t_comm``."""
        set_flat_params(self.model, flat)
        self.pull_version = int(version)
        self.last_t_comm = float(t_comm)

    def forward(self) -> WorkerState:
        """Algorithm 1, lines 4-8: one forward pass; returns ``state_m``.

        The loss tensor (with its autograd graph) is retained so backward
        can run later, after the compensation reply arrives.
        """
        self.model.train()
        inputs, targets = self.loader.next_batch()
        logits = self.model(Tensor(inputs))
        loss = F.cross_entropy(logits, targets)
        self._pending_loss = loss
        self._pending_loss_value = float(loss.data)
        bn_stats = collect_bn_stats(self.model) if self.collect_bn else []
        return WorkerState(
            worker=self.worker_id,
            loss=self._pending_loss_value,
            bn_stats=bn_stats,
            t_comm=self.last_t_comm,
            t_comp=self.last_t_comp,
            pull_version=self.pull_version,
        )

    def backward(
        self,
        reply: Optional[CompensationReply] = None,
        lc_lambda: float = 0.5,
        compensation: str = "damping",
        t_comp: float = 0.0,
    ) -> GradientPayload:
        """Algorithm 1, lines 9-12: backward pass, optionally compensated.

        Parameters
        ----------
        reply:
            The server's ``l_delay`` reply; None for the uncompensated
            algorithms (plain seed of 1).
        lc_lambda, compensation:
            Formula 5's lambda and the coupling mode.
        t_comp:
            The (virtual) duration of this computation, recorded as the
            worker's ``t_comp`` feature for the next state push.
        """
        if self._pending_loss is None:
            raise RuntimeError("backward() called before forward()")
        seed = 1.0
        if reply is not None:
            seed = compensation_seed(
                compensation,
                self._pending_loss_value,
                reply.l_delay,
                reply.predicted_step,
                lc_lambda,
                sensitivity=getattr(reply, "sensitivity", 0.0),
            )
        self.model.zero_grad()
        self._pending_loss.backward(np.asarray(seed, dtype=self._pending_loss.data.dtype))
        grad = get_flat_grads(self.model)
        payload = GradientPayload(
            worker=self.worker_id,
            grad=grad,
            pull_version=self.pull_version,
            loss=self._pending_loss_value,
        )
        self._pending_loss = None
        self.last_t_comp = float(t_comp)
        return payload

    def forward_backward(self, t_comp: float = 0.0) -> Tuple[WorkerState, GradientPayload]:
        """Fused cycle for the algorithms without a compensation round trip."""
        state = self.forward()
        payload = self.backward(reply=None, t_comp=t_comp)
        return state, payload
