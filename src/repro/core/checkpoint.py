"""Checkpointing for distributed runs.

Saves the server's global model (flat parameter vector + BN running
statistics + version counters) so a trained model can be reloaded for
evaluation or fine-tuning without re-running the simulation.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.config import TrainingConfig
from repro.core.trainer import DistributedTrainer, build_dataset, build_model
from repro.nn.module import Module, set_flat_params
from repro.nn.norm import bn_layers, load_bn_running_stats
from repro.utils.serialization import load_checkpoint, save_checkpoint


def save_run_checkpoint(trainer: DistributedTrainer, path: str) -> None:
    """Persist the trainer's current global model to an ``.npz`` file."""
    tensors = {"params": trainer.server.params}
    if trainer.server.bn_strategy is not None:
        for i, (mean, var) in enumerate(trainer.server.bn_strategy.current()):
            tensors[f"bn_mean_{i}"] = mean
            tensors[f"bn_var_{i}"] = var
        bn_layers_count = len(trainer.server.bn_strategy.current())
    else:
        layers = bn_layers(trainer.workers[0].model)
        for i, layer in enumerate(layers):
            tensors[f"bn_mean_{i}"] = layer.running_mean
            tensors[f"bn_var_{i}"] = layer.running_var
        bn_layers_count = len(layers)
    save_checkpoint(
        path,
        tensors,
        version=trainer.server.version,
        batches=trainer.server.batches_processed,
        algorithm=trainer.config.algorithm,
        seed=trainer.config.seed,
        bn_layers=bn_layers_count,
    )


def load_model_from_checkpoint(config: TrainingConfig, path: str) -> Tuple[Module, dict]:
    """Rebuild the model architecture from ``config`` and load a checkpoint.

    Returns ``(model_in_eval_mode, metadata)``.  The config must describe
    the same architecture/dataset the checkpoint was trained with.
    """
    tensors, metadata = load_checkpoint(path)
    train_set, _, num_classes = build_dataset(config)
    model = build_model(config, train_set.input_shape, num_classes)
    set_flat_params(model, tensors["params"])
    n_layers = int(metadata.get("bn_layers", 0))
    if n_layers:
        stats = [(tensors[f"bn_mean_{i}"], tensors[f"bn_var_{i}"]) for i in range(n_layers)]
        load_bn_running_stats(model, stats)
    model.eval()
    return model, metadata
