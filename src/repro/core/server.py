"""The parameter server — Algorithm 2.

Responsibilities, matching the paper line by line:

* maintain the global weights ``w_t`` (one flat float64 vector) and the
  model version ``t``;
* on a ``state_m`` arrival (lines 1-7): append ``m`` to ``iter``, predict
  ``k_m`` with the step predictor, predict ``l_delay`` with the loss
  predictor, fold the worker's BN statistics into the global running stats
  (Formulas 6-7 or replace-mode), and reply the compensation;
* on a gradient arrival (lines 8-10): apply the algorithm's update rule,
  advance the version, and feed the realized staleness back into the step
  predictor's online training;
* on a pull request (lines 11-12): hand out the current weights — or queue
  the request when the SSGD barrier is still open.

Predictor invocations are timed with real (CPU) timers because Tables 2-3
report their per-iteration overhead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.algorithms.base import UpdateRule
from repro.core.algorithms.ssgd import SSGDRule
from repro.core.batchnorm_sync import BnSyncStrategy
from repro.core.predictors.base import LossPredictorBase, StepPredictorBase
from repro.core.state import CompensationReply, GradientPayload, WorkerState
from repro.optim.lr_scheduler import LRSchedule
from repro.utils.timer import Timer


class ParameterServer:
    """Algorithm 2's server over a flat parameter vector."""

    def __init__(
        self,
        init_params: np.ndarray,
        rule: UpdateRule,
        lr_schedule: LRSchedule,
        iters_per_epoch: int,
        bn_strategy: Optional[BnSyncStrategy] = None,
        loss_predictor: Optional[LossPredictorBase] = None,
        step_predictor: Optional[StepPredictorBase] = None,
        lc_lambda: float = 0.5,
        compensation: str = "damping",
        timer: Optional[Timer] = None,
    ) -> None:
        self.params = np.asarray(init_params, dtype=np.float64).copy()
        self.rule = rule
        self.lr_schedule = lr_schedule
        self.iters_per_epoch = int(iters_per_epoch)
        if self.iters_per_epoch < 1:
            raise ValueError("iters_per_epoch must be >= 1")
        self.bn_strategy = bn_strategy
        self.loss_predictor = loss_predictor
        self.step_predictor = step_predictor
        self.lc_lambda = float(lc_lambda)
        self.compensation = compensation
        self.timer = timer or Timer()

        self.version = 0  # the t of Algorithm 2
        self.batches_processed = 0
        self.iter_log: List[int] = []  # the paper's `iter` list
        self.pull_versions: Dict[int, int] = {}
        self.pending_pulls: List[Tuple[int, float]] = []  # (worker, t0) queued by the barrier
        # features stored at state time for the step predictor's label join
        self._inflight_features: Dict[int, Tuple[float, float]] = {}
        self._inflight_predicted_k: Dict[int, int] = {}
        # recorded series for Figures 7-8
        self.loss_prediction_pairs: List[Tuple[float, float]] = []  # (actual, predicted)
        self.step_prediction_pairs: List[Tuple[int, int]] = []  # (actual, predicted)

    # ------------------------------------------------------------------ #
    @property
    def epoch(self) -> int:
        """Current epoch index derived from processed batches."""
        return self.batches_processed // self.iters_per_epoch

    @property
    def current_lr(self) -> float:
        """Learning rate for the current epoch."""
        return self.lr_schedule.lr_at(self.epoch)

    # ------------------------------------------------------------------ #
    # Algorithm 2, lines 11-12
    # ------------------------------------------------------------------ #
    def handle_pull(self, worker: int, request_time: float = 0.0) -> Optional[np.ndarray]:
        """Serve a pull, or return None when the SSGD barrier queues it."""
        if isinstance(self.rule, SSGDRule) and self.rule.round_contributed(worker):
            self.pending_pulls.append((worker, request_time))
            return None
        self.rule.on_pull(worker, self.version, self.params)
        self.pull_versions[worker] = self.version
        return self.params.copy()

    def drain_pending_pulls(self) -> List[Tuple[int, float]]:
        """Flush and serve all barrier-queued pulls (after a round closes)."""
        drained = self.pending_pulls
        self.pending_pulls = []
        for worker, _ in drained:
            self.rule.on_pull(worker, self.version, self.params)
            self.pull_versions[worker] = self.version
        return drained

    # ------------------------------------------------------------------ #
    # Algorithm 2, lines 1-7
    # ------------------------------------------------------------------ #
    def handle_state(self, state: WorkerState) -> Optional[CompensationReply]:
        """Process a ``state_m`` push; returns the compensation for LC-ASGD."""
        self.iter_log.append(state.worker)
        if self.bn_strategy is not None and state.bn_stats:
            self.bn_strategy.update(state.bn_stats)

        if self.loss_predictor is None or self.step_predictor is None:
            return None

        # Record the predictor's genuine one-step forecast before it sees
        # the new loss (the two curves of Figure 7).
        with self.timer.section("loss-pred"):
            forecast = self.loss_predictor.predict_next()
            if forecast is not None:
                self.loss_prediction_pairs.append((state.loss, float(forecast)))
            self.loss_predictor.observe(state.loss)

        with self.timer.section("step-pred"):
            k = self.step_predictor.predict(state.worker, state.t_comm, state.t_comp)
        self._inflight_predicted_k[state.worker] = k
        self._inflight_features[state.worker] = (state.t_comm, state.t_comp)

        with self.timer.section("loss-pred"):
            l_delay = self.loss_predictor.predict_delay(state.loss, k)
            sensitivity = 0.0
            if self.compensation == "sensitivity":
                sensitivity = self.loss_predictor.delay_sensitivity(state.loss, k)

        return CompensationReply(
            worker=state.worker,
            l_delay=float(l_delay),
            predicted_step=int(k),
            sensitivity=float(sensitivity),
        )

    def handle_combined(self, state: WorkerState, payload: GradientPayload) -> Tuple[bool, int]:
        """Fused state+gradient arrival (non-compensated algorithms).

        The non-LC algorithms send ``state_m`` and the gradient in one
        message and await no reply: log the iteration, fold the BN stats,
        then apply the gradient.  Both backends route their fused path
        through here so the server-side bookkeeping cannot drift.
        """
        self.iter_log.append(state.worker)
        if self.bn_strategy is not None and state.bn_stats:
            self.bn_strategy.update(state.bn_stats)
        return self.handle_gradient(payload)

    # ------------------------------------------------------------------ #
    # Algorithm 2, lines 8-10
    # ------------------------------------------------------------------ #
    def handle_gradient(self, payload: GradientPayload) -> Tuple[bool, int]:
        """Apply one gradient; returns (version_advanced, realized staleness)."""
        if payload.grad.shape != self.params.shape:
            raise ValueError(
                f"gradient size {payload.grad.shape} != parameter size {self.params.shape}"
            )
        if not np.all(np.isfinite(payload.grad)):
            raise FloatingPointError(
                f"worker {payload.worker} pushed a non-finite gradient "
                f"(loss {payload.loss}); the run has diverged"
            )
        staleness = max(self.version - payload.pull_version, 0)
        advanced = self.rule.apply_gradient(
            self.params, payload, self.current_lr, self.version
        )
        self.batches_processed += 1
        if advanced:
            self.version += 1

        if self.step_predictor is not None:
            t_comm, t_comp = self._inflight_features.get(payload.worker, (0.0, 0.0))
            predicted = self._inflight_predicted_k.get(payload.worker)
            if predicted is not None:
                self.step_prediction_pairs.append((staleness, int(predicted)))
            with self.timer.section("step-pred"):
                self.step_predictor.observe(payload.worker, staleness, t_comm, t_comp)
        return advanced, staleness
