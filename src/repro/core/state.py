"""Message payloads exchanged between workers and the parameter server.

``WorkerState`` is the ``state_m`` record of Algorithm 1:
``{loss, mean:{}, var:{}, t_comm, t_comp}`` — the loss of the current batch,
per-BN-layer batch statistics, and the measured communication/computation
costs the step predictor consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

BnStats = List[Tuple[np.ndarray, np.ndarray]]


@dataclass
class WorkerState:
    """The ``state_m`` push of Algorithm 1 (line 8)."""

    worker: int
    loss: float
    bn_stats: BnStats = field(default_factory=list)
    t_comm: float = 0.0
    t_comp: float = 0.0
    pull_version: int = -1  # server model version the worker is holding

    def __post_init__(self) -> None:
        if not np.isfinite(self.loss):
            raise ValueError(f"worker {self.worker} produced non-finite loss {self.loss}")


@dataclass
class GradientPayload:
    """The gradient push of Algorithm 1 (line 12)."""

    worker: int
    grad: np.ndarray
    pull_version: int
    loss: float = 0.0
    nbytes: int = 0

    def __post_init__(self) -> None:
        self.grad = np.asarray(self.grad, dtype=np.float64)
        if self.nbytes == 0:
            self.nbytes = self.grad.size * 4  # float32 on the wire


@dataclass
class CompensationReply:
    """The server -> worker reply carrying ``l_delay`` (Algorithm 2, line 5)."""

    worker: int
    l_delay: float
    predicted_step: int
    sensitivity: float = 0.0  # d(l_delay)/d(l_m), used by the "sensitivity" coupling
