"""Process execution backend: real OS-process workers over sockets.

The parameter server runs in the parent exactly as in the thread backend
(the shared :func:`~repro.runtime.server_actor.server_actor_loop` drives
Algorithm 2 from one actor thread); each of the ``M`` workers is a real
child process (:mod:`repro.runtime.proc_worker`) connected over a loopback
TCP socket speaking the :mod:`repro.runtime.wire` protocol.  Unlike the
thread backend there is no shared GIL: staleness and wall-clock numbers
come from genuinely independent compute plus real kernel socket queues.

Startup handshake (typed :class:`~repro.runtime.wire.ControlFrame`
documents, protocol v2)::

    child  -> parent   hello   {"worker": id, "token": ...}
    parent -> child    config  {"config": ..., "codec": ..., scales...}
    child  -> parent   ready   {"worker": id}   (or error {"traceback"})
    parent -> child    start   {}

The config frame names the negotiated gradient codec
(``TrainingConfig.comm_codec``); both directions then run it on every
array payload.  A peer speaking another protocol version is rejected on
its first frame with a reason (best-effort ``reject`` control frame back)
and the run fails fast instead of hanging.

No weights travel at startup: the child rebuilds its replica + loader from
``(TrainingConfig, worker_id)`` via :class:`~repro.runtime.session.
WorkerRuntime` — identical initialization is re-derived from the seed, and
only weights/gradients/BN stats cross the wire afterwards.

Failure containment: a child that dies (crash, OOM-kill, nonzero exit)
surfaces as a run failure within seconds — its socket EOF and its exit
code are both watched — and every child is reaped (terminate, then kill)
before ``run`` returns, so a crashed run can never leave orphan processes
or a hung parent behind.

``bn_mode="local"`` evaluation borrows worker 0's running BN statistics,
which live in a child's address space here; the child streams them back
at shutdown (:class:`~repro.runtime.messages.BnStatsPush`) and the final
evaluation installs them.  Mid-run curve points in this mode use the
parent eval model's own (initial) running statistics — if you need a
faithful local-BN *curve*, use the sim or thread backend.
"""

from __future__ import annotations

import os
import secrets
import socket
import subprocess
import sys
import threading
import time
from typing import Callable, Dict, List, Optional

from repro.analysis.lockorder import make_lock
from repro.cluster.network import NetworkModel
from repro.core.metrics import RunResult
from repro.nn.norm import bn_layers, load_bn_running_stats
from repro.runtime.codecs import make_codec
from repro.obs.recorder import NULL_RECORDER
from repro.runtime.messages import BnStatsPush, Message, Shutdown, TracePush
from repro.runtime.server_actor import RunControl, server_actor_loop
from repro.runtime.session import ExperimentPlan, ExperimentSession
from repro.runtime.transport import CommStats, Mailbox
from repro.runtime.wire import (
    PROTOCOL_VERSION,
    ControlFrame,
    FrameConnection,
    ProtocolMismatch,
    WireError,
)
from repro.utils.logging import get_logger

logger = get_logger("runtime.proc")

#: env var carrying the per-run handshake token to children (env, not argv:
#: command lines are world-readable in ``ps``)
TOKEN_ENV = "REPRO_PROC_TOKEN"


class SocketTransport:
    """The server-side message fabric over per-worker socket links.

    Exposes the same surface as :class:`~repro.runtime.transport.
    InProcTransport` — ``server_inbox`` / ``to_server`` / ``to_worker`` /
    ``wake_all_workers`` — so :func:`server_actor_loop` runs unchanged.
    The link-delay contract also carries over: worker -> server sends
    charge the sender's uplink (the child sleeps before writing), and
    server -> worker messages are stamped with a ``delay`` the child's
    mailbox sleeps out, so the server actor is never blocked by a slow
    emulated downlink.

    One reader thread per attached worker drains its socket into
    ``server_inbox``; an unexpected EOF or garbled frame is reported
    through ``on_worker_failure`` so the backend can fail the run instead
    of hanging on a mailbox that will never fill.
    """

    def __init__(
        self,
        num_workers: int,
        network: Optional[NetworkModel] = None,
        time_scale: float = 0.0,
        recorder=NULL_RECORDER,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if time_scale < 0:
            raise ValueError("time_scale must be >= 0")
        self.num_workers = int(num_workers)
        self.network = network
        self.time_scale = float(time_scale)
        self.server_inbox = Mailbox()
        #: unified byte accounting (uplink frames measured as received,
        #: downlink frames as sent — real socket bytes, codec included)
        self.stats = CommStats(self.num_workers)
        self._conns: List[Optional[FrameConnection]] = [None] * self.num_workers
        self._send_locks = [
            make_lock("SocketTransport._send_lock") for _ in range(self.num_workers)
        ]
        self._readers: List[threading.Thread] = []
        self._closed = threading.Event()
        #: called as (worker, exception) when a link dies mid-run
        self.on_worker_failure: Optional[Callable[[int, Exception], None]] = None
        self._bn_lock = make_lock("SocketTransport._bn_lock")
        #: worker -> BN running stats streamed at shutdown (bn_mode="local");
        #: written by per-worker reader threads, read after bn_stats_ready
        self.bn_stats: Dict[int, tuple] = {}  # guarded-by: _bn_lock
        self.bn_stats_ready = threading.Event()
        #: the plan's recorder; obs children stream their trace rows here
        #: at shutdown (TracePush — same sideband contract as BN stats)
        self.recorder = recorder
        self._trace_lock = make_lock("SocketTransport._trace_lock")
        self._trace_seen = 0  # guarded-by: _trace_lock
        #: set once every worker's TracePush landed (obs runs only)
        self.trace_ready = threading.Event()

    # ------------------------------------------------------------------ #
    def attach(self, worker: int, conn: FrameConnection) -> None:
        """Bind ``worker``'s connection and start draining it."""
        if self._conns[worker] is not None:
            raise ValueError(f"worker {worker} already attached")
        self._conns[worker] = conn
        reader = threading.Thread(
            target=self._reader_loop,
            args=(worker, conn),
            name=f"repro-proc-reader-{worker}",
            daemon=True,
        )
        self._readers.append(reader)
        reader.start()

    def _reader_loop(self, worker: int, conn: FrameConnection) -> None:
        try:
            while True:
                message, _, nbytes, wire_nbytes = conn.recv_info()
                if not isinstance(message, Message):
                    raise WireError(
                        f"worker {worker} sent a control frame mid-run: {message!r}"
                    )
                self.stats.count(worker, nbytes, wire_nbytes)
                if isinstance(message, BnStatsPush):
                    # shutdown-time sideband, not Algorithm-2 traffic: the
                    # server actor has already drained by the time it lands
                    with self._bn_lock:
                        self.bn_stats[worker] = message.stats
                    self.bn_stats_ready.set()
                    continue
                if isinstance(message, TracePush):
                    # same sideband: merge the child's trace rows (each one
                    # re-validated against the event registry on ingestion)
                    if self.recorder.enabled:
                        self.recorder.ingest_rows(message.rows)
                    with self._trace_lock:
                        self._trace_seen += 1
                        if self._trace_seen >= self.num_workers:
                            self.trace_ready.set()
                    continue
                self.server_inbox.put(message)
        except Exception as exc:
            # broad on purpose: any escape (EOF, garbled frame, a decode
            # KeyError from a version-skewed child) must fail the run fast
            # rather than silently kill this thread and hang the server
            # actor until the backend timeout
            if self._closed.is_set():
                return  # expected teardown
            if self.on_worker_failure is not None:
                self.on_worker_failure(worker, exc)

    # ------------------------------------------------------------------ #
    def _link_delay(self, worker: int, nbytes: int) -> float:
        """Real seconds of emulated link occupancy for this message."""
        if self.network is None or self.time_scale == 0.0 or nbytes <= 0:
            return 0.0
        return self.time_scale * self.network.transfer_time(worker, nbytes)

    def to_server(self, worker: int, message: Message, nbytes: int = 0) -> None:
        """Worker -> server send; the emulated uplink delays the caller.

        On the parent side this is a loopback used by tests and tooling —
        live worker traffic arrives through the reader threads, with the
        uplink delay slept in the child (same contract, other process).
        """
        delay = self._link_delay(worker, nbytes)
        if delay > 0:
            time.sleep(delay)
        self.stats.count(worker, nbytes)
        self.server_inbox.put(message)

    def to_worker(self, worker: int, message: Message, nbytes: int = 0) -> None:
        """Server -> worker send; the delay rides the frame, not the caller."""
        conn = self._conns[worker]
        if conn is None:
            raise RuntimeError(f"worker {worker} is not attached")
        delay = self._link_delay(worker, nbytes)
        with self._send_locks[worker]:
            wire_nbytes = conn.send_message(message, delay=delay, nbytes=nbytes)
        self.stats.count(worker, nbytes, wire_nbytes)

    def comm_summary(self) -> Dict[str, float]:
        """The unified :class:`CommStats` keys."""
        return self.stats.summary()

    def wake_all_workers(self, message: Message) -> None:
        """Deliver ``message`` to every live worker; dead links are skipped."""
        for worker, conn in enumerate(self._conns):
            if conn is None:
                continue
            try:
                with self._send_locks[worker]:
                    conn.send_message(message)
            except (OSError, WireError):
                pass  # a dying child already surfaced through its reader

    def close(self) -> None:
        """Tear down every link; reader EOFs after this are expected."""
        self._closed.set()
        for conn in self._conns:
            if conn is not None:
                conn.close()
        for reader in self._readers:
            reader.join(timeout=5.0)


class ProcBackend:
    """Execute an :class:`ExperimentPlan` on real OS-process workers.

    Parameters
    ----------
    time_scale:
        Real seconds of emulated link delay per virtual second of the
        plan's network model (0 disables link emulation).
    compute_scale:
        Real seconds each child sleeps per virtual second of its compute
        model, emulating heterogeneous/straggling nodes (0 disables).
    timeout:
        Hard cap in real seconds on the training phase before the run is
        declared hung (crashed children fail faster, via EOF/exit-code).
    startup_timeout:
        Cap on spawn + import + dataset/replica rebuild + handshake.
    """

    name = "proc"
    #: replicas live in the children; plan builders skip the parent's M
    needs_worker_replicas = False

    def __init__(
        self,
        time_scale: float = 0.0,
        compute_scale: float = 0.0,
        timeout: float = 600.0,
        startup_timeout: float = 120.0,
    ) -> None:
        if time_scale < 0 or compute_scale < 0:
            raise ValueError("time_scale and compute_scale must be >= 0")
        if timeout <= 0 or startup_timeout <= 0:
            raise ValueError("timeout and startup_timeout must be positive")
        self.time_scale = float(time_scale)
        self.compute_scale = float(compute_scale)
        self.timeout = float(timeout)
        self.startup_timeout = float(startup_timeout)

    # ------------------------------------------------------------------ #
    def run(self, plan: ExperimentPlan) -> RunResult:
        """Run the plan on real worker processes and return its RunResult."""
        config = plan.config
        if config.algorithm == "ad-psgd":
            raise ValueError(
                "the proc backend is a parameter-server runtime; run 'ad-psgd' "
                "on the gossip backend (or sim/thread, which delegate to it)"
            )
        # bn_mode="local" evaluation borrows worker 0's running BN stats,
        # which live in a child here: the child streams them back at
        # shutdown (BnStatsPush) and the final evaluation below uses them.
        # Mid-run curve points see the eval model's own (initial) running
        # stats — only the final point is faithful in this mode.
        needs_local_bn = config.bn_mode == "local" and bool(bn_layers(plan.eval_model))
        session = ExperimentSession(plan)
        num_workers = config.num_workers
        transport = SocketTransport(
            num_workers,
            network=plan.network if self.time_scale > 0 else None,
            time_scale=self.time_scale,
            recorder=plan.recorder,
        )
        ctl = RunControl()
        procs: List[subprocess.Popen] = []
        listener: Optional[socket.socket] = None
        server_thread: Optional[threading.Thread] = None
        try:
            listener = socket.create_server(("127.0.0.1", 0))
            listener.settimeout(0.2)
            port = listener.getsockname()[1]
            token = secrets.token_hex(16)
            procs = self._spawn_children(num_workers, port, token)
            conns = self._handshake(
                listener, procs, token, config,
                obs=bool(getattr(plan.recorder, "enabled", False)),
            )

            def worker_link_failed(worker: int, exc: Exception) -> None:
                if not ctl.done.is_set():
                    ctl.fail(
                        RuntimeError(
                            f"worker child {worker} dropped its connection "
                            f"before the run finished ({exc})"
                        )
                    )

            transport.on_worker_failure = worker_link_failed
            # start everyone: frames a child sends before its reader attaches
            # simply buffer in the socket
            for worker, conn in conns.items():
                conn.send_control(ControlFrame("start", {}).to_doc())
            for worker, conn in conns.items():
                transport.attach(worker, conn)

            ctl.start_clock()
            server_thread = threading.Thread(
                target=server_actor_loop,
                args=(session, transport, ctl),
                name="repro-proc-server",
                daemon=True,
            )
            server_thread.start()

            self._supervise(ctl, procs)

            transport.wake_all_workers(Shutdown())
            transport.server_inbox.put(Shutdown())
            server_thread.join(timeout=30.0)
            elapsed = ctl.clock()
            self._reap(procs)

            ctl.raise_if_failed()
            if server_thread.is_alive():
                raise RuntimeError("proc backend failed to join its server actor")

            if plan.recorder.enabled and not transport.trace_ready.wait(timeout=10.0):
                # children are reaped, so a missing push can only mean a
                # crashed-then-restarted run path: degrade, don't fail
                logger.warning(
                    "obs: not every worker child streamed its trace rows"
                )

            if needs_local_bn:
                # children have exited (reaped above), so the stats frame is
                # at worst still in the reader thread's hands — wait for it
                if not transport.bn_stats_ready.wait(timeout=30.0) or 0 not in transport.bn_stats:
                    raise RuntimeError(
                        "bn_mode='local': worker child 0 exited without "
                        "streaming its BN running statistics"
                    )
                load_bn_running_stats(plan.eval_model, list(transport.bn_stats[0]))
                session.record_point(elapsed)  # the one faithful local-BN point
            session.ensure_final_eval(elapsed)
            logger.info(
                "proc backend finished: algo=%s M=%d updates=%d wall=%.2fs",
                config.algorithm, num_workers, plan.server.batches_processed, elapsed,
            )
            return session.build_result(
                elapsed,
                backend=self.name,
                wall_time=elapsed,
                comm=transport.comm_summary(),
                codec=config.comm_codec,
            )
        finally:
            transport.close()
            if listener is not None:
                listener.close()
            self._reap(procs, force=True)

    # ------------------------------------------------------------------ #
    def _spawn_children(
        self, num_workers: int, port: int, token: str
    ) -> List[subprocess.Popen]:
        """Launch one ``python -m repro.runtime.proc_worker`` per worker."""
        import repro

        env = dict(os.environ)
        env[TOKEN_ENV] = token
        # children must import the same repro the parent runs, installed or not
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        existing = env.get("PYTHONPATH", "")
        if src_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
        procs = []
        for worker in range(num_workers):
            procs.append(
                subprocess.Popen(
                    [
                        sys.executable, "-m", "repro.runtime.proc_worker",
                        "--host", "127.0.0.1",
                        "--port", str(port),
                        "--worker-id", str(worker),
                    ],
                    env=env,
                )
            )
        return procs

    def _handshake(
        self,
        listener: socket.socket,
        procs: List[subprocess.Popen],
        token: str,
        config,
        obs: bool = False,
    ) -> Dict[int, FrameConnection]:
        """Accept, authenticate, configure and confirm every worker child."""
        num_workers = len(procs)
        deadline = time.monotonic() + self.startup_timeout
        conns: Dict[int, FrameConnection] = {}
        try:
            while len(conns) < num_workers:
                self._check_startup(procs, deadline, phase="connect")
                try:
                    sock, _ = listener.accept()
                except socket.timeout:
                    continue
                sock.settimeout(self.startup_timeout)
                conn = FrameConnection(sock)
                try:
                    doc, _ = conn.recv()
                    hello = ControlFrame.from_doc(doc, expect_version=PROTOCOL_VERSION)
                except ProtocolMismatch as exc:
                    # a version-skewed child: tell it why (best effort — it
                    # may not parse our frames either), then fail the run
                    # fast rather than time the handshake out
                    self._reject(conn, str(exc))
                    raise RuntimeError(f"proc handshake rejected a peer: {exc}") from exc
                except WireError:
                    logger.warning("rejecting stray connection during handshake")
                    conn.close()
                    continue
                worker_id = hello.body.get("worker")
                if (
                    hello.kind != "hello"
                    or not secrets.compare_digest(
                        str(hello.body.get("token", "")), token
                    )
                    or not isinstance(worker_id, int)
                    or not 0 <= worker_id < num_workers
                    or worker_id in conns
                ):
                    logger.warning("rejecting stray connection during handshake")
                    conn.close()
                    continue
                conns[worker_id] = conn
            frame = ControlFrame(
                "config",
                {
                    "config": config.to_dict(),
                    "codec": config.comm_codec,
                    "time_scale": self.time_scale,
                    "compute_scale": self.compute_scale,
                    "obs": bool(obs),
                },
            )
            for worker, conn in conns.items():
                conn.send_control(frame.to_doc())
            for worker, conn in conns.items():
                self._check_startup(procs, deadline, phase="initialize")
                doc, _ = conn.recv()
                ready = ControlFrame.from_doc(doc, expect_version=PROTOCOL_VERSION)
                if ready.kind == "error":
                    raise RuntimeError(
                        f"worker child {worker} failed to initialize:\n"
                        f"{ready.body.get('traceback', '')}"
                    )
                if ready.kind != "ready" or ready.body.get("worker") != worker:
                    raise RuntimeError(
                        f"worker child {worker} broke the handshake: {doc!r}"
                    )
                # the negotiated downlink codec (per connection: topk keeps
                # per-receiver state, and decode is stateless anyway)
                conn.codec = make_codec(config.comm_codec)
                conn.settimeout(None)  # back to blocking for the run
        except BaseException:
            for conn in conns.values():
                conn.close()
            raise
        return conns

    @staticmethod
    def _reject(conn: FrameConnection, reason: str) -> None:
        """Best-effort reject-with-reason before dropping a bad peer."""
        try:
            conn.send_control(ControlFrame("reject", {"reason": reason}).to_doc())
        except (OSError, WireError):
            pass
        conn.close()

    def _check_startup(
        self, procs: List[subprocess.Popen], deadline: float, phase: str
    ) -> None:
        if time.monotonic() > deadline:
            raise RuntimeError(
                f"proc backend startup ({phase}) exceeded "
                f"startup_timeout={self.startup_timeout}s"
            )
        for worker, proc in enumerate(procs):
            code = proc.poll()
            if code is not None:
                raise RuntimeError(
                    f"worker child {worker} exited with code {code} during startup"
                )

    # ------------------------------------------------------------------ #
    def _supervise(self, ctl: RunControl, procs: List[subprocess.Popen]) -> None:
        """Wait for completion, watching the clock and every child's pulse."""
        deadline = time.monotonic() + self.timeout
        while not ctl.done.wait(timeout=0.1):
            if time.monotonic() > deadline:
                ctl.fail(RuntimeError(f"proc backend exceeded timeout={self.timeout}s"))
                return
            for worker, proc in enumerate(procs):
                code = proc.poll()
                if code is not None and not ctl.done.is_set():
                    # children only exit after a Shutdown, which is only
                    # sent once done is set: any earlier exit is a crash
                    ctl.fail(
                        RuntimeError(
                            f"worker child {worker} exited with code {code} "
                            f"before the run finished"
                        )
                    )
                    return

    def _reap(self, procs: List[subprocess.Popen], force: bool = False) -> None:
        """Collect every child; escalate to SIGKILL rather than leak one."""
        for proc in procs:
            if proc.poll() is not None:
                continue
            if force:
                proc.kill()
            else:
                try:
                    proc.wait(timeout=10.0)
                    continue
                except subprocess.TimeoutExpired:
                    proc.kill()
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - kernel refusal
                logger.error("worker pid %d survived SIGKILL", proc.pid)
