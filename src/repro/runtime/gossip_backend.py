"""Decentralized (serverless) execution: the AD-PSGD gossip runtime.

No parameter server exists here.  Every worker owns an authoritative flat
parameter vector, takes local SGD steps, and once per step averages that
vector with one neighbor on a :class:`~repro.cluster.topology.TopologyModel`
graph (Lian et al. 2018).  Parameters only ever travel worker-to-worker; a
lightweight *coordinator* thread collects per-step reports to drive the
trace / learning curve / epoch evaluation, reusing the plan's
:class:`~repro.core.server.ParameterServer` purely as bookkeeping (its
``batches_processed`` counter and lr schedule — its parameter vector is
never trained against).

Two execution modes, selected by ``mode=``:

* ``sim`` — single-threaded virtual-time rounds.  Each round every worker
  takes one local step (durations sampled from the plan's
  :class:`~repro.cluster.node.ComputeModel`), then the topology's seeded
  :meth:`~repro.cluster.topology.TopologyModel.round_pairs` matching
  exchanges weights over per-edge links.  Everything derives from
  ``config.seed`` via name-keyed RNG streams, so two runs produce
  bit-identical curves.
* ``thread`` — genuinely concurrent workers over a
  :class:`~repro.runtime.transport.GossipTransport`.  Pairing goes through
  the :class:`PairingBoard`, an atomic matchmaker: a worker is either
  *waiting* on the board or *committed* to exactly one partner, never
  holding one partner while waiting for another — which is what makes the
  pairwise averaging deadlock-free (see the class docstring for the
  argument).  Staleness and interleaving are real.

Both modes account communication per endpoint: the busiest endpoint in a
gossip run is a *worker* moving O(1) exchanges per step regardless of
cluster size, versus the server endpoint's O(N) in the centralized
backends — the scaling claim ``benchmarks/bench_gossip_scaling.py``
measures.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.lockorder import make_condition
from repro.cluster.network import LinkModel
from repro.cluster.topology import TopologyModel, make_topology
from repro.core.algorithms import make_update_rule
from repro.core.algorithms.adpsgd import gossip_staleness, pairwise_average
from repro.core.metrics import RunResult
from repro.nn.module import get_flat_params, set_flat_params
from repro.nn.norm import bn_layers, load_bn_running_stats
from repro.obs.recorder import NULL_RECORDER
from repro.runtime.messages import GossipReport, Shutdown, WeightExchange
from repro.runtime.server_actor import RunControl
from repro.runtime.session import REQUEST_BYTES, ExperimentPlan, ExperimentSession
from repro.runtime.transport import CommStats, GossipTransport
from repro.utils.logging import get_logger

logger = get_logger("runtime.gossip")


class PairingBoard:
    """Atomic matchmaker for pairwise averaging (the deadlock-free core).

    Protocol: a worker finishes a local step and calls :meth:`request` with
    its randomly chosen neighbor.  Under one lock, the board either (a)
    matches it immediately — with its desired partner if that partner is
    waiting, else with *any* waiting neighbor (AD-PSGD's passive side
    accepts whoever shows up) — or (b) parks it as waiting.  Matching is
    therefore atomic: both members learn their partner inside the same
    critical section, and a matched worker proceeds to a send-then-receive
    exchange.

    Why no deadlock: a worker never holds one partner while waiting for
    another — it is either unmatched-and-waiting (holding nobody) or
    matched-and-committed (its partner is committed to it and to nobody
    else), so the hold-and-wait condition of the classic cycle cannot
    arise.  Nor can everyone park: a connected topology has an edge inside
    any all-workers waiting set, and the last worker to arrive would have
    matched across it — so some worker is always runnable until the
    coordinator ends the run and :meth:`shutdown` releases the rest.
    """

    def __init__(self, topology: TopologyModel, recorder=None, clock=None) -> None:
        self._topology = topology
        self._cond = make_condition("PairingBoard._cond")
        self._waiting: Dict[int, int] = {}  # guarded-by: _cond — worker -> desired partner
        self._matches: Dict[int, int] = {}  # guarded-by: _cond — worker -> assigned partner
        self._open = True  # guarded-by: _cond
        # optional trace sink: how long each worker parks before matching
        self._recorder = recorder if recorder is not None else NULL_RECORDER
        self._clock = clock if clock is not None else (lambda: 0.0)

    def _pick_partner(self, worker: int, desired: int) -> Optional[int]:
        """Choose a waiting neighbor under the lock (desired first)."""
        if desired in self._waiting:
            return desired
        neighbors = set(self._topology.neighbors(worker))
        candidates = [w for w in self._waiting if w in neighbors]
        return min(candidates) if candidates else None

    def request(self, worker: int, desired: int) -> Optional[int]:
        """Block until matched with a neighbor; None when the run ended."""
        start = self._clock() if self._recorder.enabled else 0.0
        with self._cond:
            partner = self._pick_partner(worker, desired)
            if partner is not None:
                del self._waiting[partner]
                self._matches[partner] = worker
                self._cond.notify_all()
            else:
                self._waiting[worker] = desired
                while self._open and worker not in self._matches:
                    self._cond.wait(timeout=0.05)
                self._waiting.pop(worker, None)
                partner = self._matches.pop(worker, None)
        if self._recorder.enabled:
            now = self._clock()
            self._recorder.emit(
                now, "pairing_wait", worker,
                dur_ms=(now - start) * 1e3,
                partner=-1 if partner is None else partner,
            )
        return partner

    def shutdown(self) -> None:
        """Release every parked worker (they return None)."""
        with self._cond:
            self._open = False
            self._cond.notify_all()


class GossipBackend:
    """Execute an ``ad-psgd`` :class:`ExperimentPlan` without a server.

    Parameters
    ----------
    mode:
        ``"sim"`` (deterministic virtual-time rounds, the default) or
        ``"thread"`` (real concurrent workers).
    time_scale:
        Thread mode only: real seconds of emulated per-edge link delay per
        virtual second (0 disables; nonzero values double as the delay
        injection the deadlock tests use).
    compute_scale:
        Thread mode only: real seconds slept per virtual compute second.
    timeout:
        Thread mode only: hard cap in real seconds before the run is
        declared hung.
    """

    name = "gossip"

    def __init__(
        self,
        mode: str = "sim",
        time_scale: float = 0.0,
        compute_scale: float = 0.0,
        timeout: float = 600.0,
    ) -> None:
        if mode not in ("sim", "thread"):
            raise ValueError(f"mode must be 'sim' or 'thread', got {mode!r}")
        if time_scale < 0 or compute_scale < 0:
            raise ValueError("time_scale and compute_scale must be >= 0")
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.mode = mode
        self.time_scale = float(time_scale)
        self.compute_scale = float(compute_scale)
        self.timeout = float(timeout)

    # ------------------------------------------------------------------ #
    def run(self, plan: ExperimentPlan) -> RunResult:
        """Run the plan to completion and return its RunResult."""
        config = plan.config
        if config.algorithm != "ad-psgd":
            raise ValueError(
                f"gossip backend executes 'ad-psgd' only, got {config.algorithm!r}"
            )
        if not plan.workers:
            raise ValueError("gossip backend needs in-process worker replicas")
        cl = config.cluster
        topology = make_topology(
            config.topology,
            config.num_workers,
            link=LinkModel(
                base_latency=cl.link_latency,
                bandwidth=cl.link_bandwidth,
                jitter_sigma=cl.link_jitter,
            ),
            heterogeneity=cl.network_heterogeneity,
            seed=plan.rng_tree.child("topology").seed,
        )
        session = ExperimentSession(plan)
        local_params = [
            get_flat_params(worker.model) for worker in plan.workers
        ]  # per-worker authoritative vectors (float64, like the server's)
        session.eval_sync = _make_eval_sync(plan, local_params)
        if self.mode == "sim":
            return self._run_sim(plan, session, topology, local_params)
        return self._run_threads(plan, session, topology, local_params)

    # ------------------------------------------------------------------ #
    # deterministic virtual-time mode
    # ------------------------------------------------------------------ #
    def _run_sim(
        self,
        plan: ExperimentPlan,
        session: ExperimentSession,
        topology: TopologyModel,
        local_params: List[np.ndarray],
    ) -> RunResult:
        config = plan.config
        server = plan.server
        n = config.num_workers
        start = time.perf_counter()

        rules = [
            make_update_rule("ad-psgd", num_workers=n, momentum=config.momentum)
            for _ in range(n)
        ]
        match_rng = plan.rng_tree.child("gossip").generator("matching")
        clocks = [0.0] * n
        steps = [0] * n
        last_avg = [0] * n
        last_t_comm = [0.0] * n
        stats = CommStats(n)

        round_index = 0
        while server.batches_processed < plan.total_updates:
            # one local step per worker, in id order (the deterministic
            # schedule; real asynchrony lives in thread mode)
            for m in range(n):
                if server.batches_processed >= plan.total_updates:
                    break
                worker = plan.workers[m]
                duration = plan.compute.duration(m, fraction=1.0)
                lr = server.current_lr
                worker.load_params(local_params[m], version=steps[m], t_comm=last_t_comm[m])
                with plan.timer.section("worker-compute"):
                    _, payload = worker.forward_backward(t_comp=duration)
                rules[m].apply_gradient(local_params[m], payload, lr, version=steps[m])
                steps[m] += 1
                clocks[m] += duration
                server.batches_processed += 1
                server.version += 1
                staleness = gossip_staleness(steps[m], last_avg[m])
                session.trace.record(
                    clocks[m],
                    "update",
                    m,
                    version=server.version,
                    staleness=staleness,
                    value=payload.loss,
                )
                # virtual-time events only in sim mode: the trace stays
                # bit-reproducible run to run
                if plan.recorder.enabled and staleness >= 0:
                    plan.recorder.emit(
                        clocks[m], "staleness", m,
                        value=float(int(staleness)), version=server.version,
                    )
                session.maybe_evaluate(max(clocks))

            # gossip: a conflict-free matching over the topology
            for i, j in topology.round_pairs(round_index, match_rng):
                t_done = max(clocks[i], clocks[j]) + topology.transfer_time(
                    i, j, plan.model_bytes
                )
                last_t_comm[i] = last_t_comm[j] = t_done - max(clocks[i], clocks[j])
                clocks[i] = clocks[j] = t_done
                avg_i, avg_j = pairwise_average(local_params[i], local_params[j])
                local_params[i][:] = avg_i
                local_params[j][:] = avg_j
                _average_bn_pair(plan.workers[i].model, plan.workers[j].model)
                last_avg[i] = steps[i]
                last_avg[j] = steps[j]
                session.trace.record(t_done, "gossip", i, version=server.version)
                # full-duplex exchange: one model payload each way
                stats.count_peer(i, j, plan.model_bytes)
                stats.count_peer(j, i, plan.model_bytes)
                if plan.recorder.enabled:
                    for sender in (i, j):
                        plan.recorder.emit(
                            t_done, "wire_bytes", sender, direction="peer",
                            logical=int(plan.model_bytes), wire=int(plan.model_bytes),
                        )
            round_index += 1

        total_time = max(clocks) if clocks else 0.0
        session.ensure_final_eval(total_time)
        elapsed = time.perf_counter() - start
        comm = stats.summary()
        logger.info(
            "gossip sim finished: topology=%s M=%d updates=%d rounds=%d t=%.1fs",
            config.topology, n, server.batches_processed, round_index, total_time,
        )
        return session.build_result(
            total_time, backend=self.name, wall_time=elapsed, comm=comm
        )

    # ------------------------------------------------------------------ #
    # concurrent thread mode
    # ------------------------------------------------------------------ #
    def _run_threads(
        self,
        plan: ExperimentPlan,
        session: ExperimentSession,
        topology: TopologyModel,
        local_params: List[np.ndarray],
    ) -> RunResult:
        config = plan.config
        n = config.num_workers
        ctl = RunControl()
        transport = GossipTransport(
            n,
            topology=topology if self.time_scale > 0 else None,
            time_scale=self.time_scale,
            recorder=plan.recorder,
            clock=ctl.clock,
        )
        board = PairingBoard(topology, recorder=plan.recorder, clock=ctl.clock)

        coordinator = threading.Thread(
            target=self._coordinator_loop,
            args=(session, transport, ctl, board),
            name="repro-gossip-coordinator",
            daemon=True,
        )
        workers = [
            threading.Thread(
                target=self._worker_loop,
                args=(m, session, transport, ctl, board, topology, local_params),
                name=f"repro-gossip-worker-{m}",
                daemon=True,
            )
            for m in range(n)
        ]

        ctl.start_clock()
        coordinator.start()
        for t in workers:
            t.start()

        if not ctl.done.wait(timeout=self.timeout):
            ctl.fail(RuntimeError(f"gossip backend exceeded timeout={self.timeout}s"))
        board.shutdown()
        transport.wake_all_workers(Shutdown())
        for t in workers:
            t.join(timeout=30.0)
        transport.coordinator_inbox.put(Shutdown())
        coordinator.join(timeout=30.0)
        elapsed = ctl.clock()

        ctl.raise_if_failed()
        stuck = [t.name for t in (*workers, coordinator) if t.is_alive()]
        if stuck:
            raise RuntimeError(f"gossip backend failed to join threads: {stuck}")

        session.ensure_final_eval(elapsed)
        logger.info(
            "gossip thread finished: topology=%s M=%d updates=%d wall=%.2fs",
            config.topology, n, plan.server.batches_processed, elapsed,
        )
        return session.build_result(
            elapsed, backend=self.name, wall_time=elapsed, comm=transport.comm_summary()
        )

    # ------------------------------------------------------------------ #
    def _coordinator_loop(
        self,
        session: ExperimentSession,
        transport: GossipTransport,
        ctl: RunControl,
        board: PairingBoard,
    ) -> None:
        """Bookkeeping actor: counts steps, drives the trace/curve/eval.

        Mirrors the server actor's role without ever touching parameters;
        ends the run once the update budget is met.
        """
        plan = session.plan
        server = plan.server
        try:
            while True:
                msg = transport.coordinator_inbox.get()
                if isinstance(msg, Shutdown):
                    return
                if ctl.done.is_set():
                    continue  # budget met: drop straggler reports
                now = ctl.clock()
                server.batches_processed += 1
                server.version += 1
                session.trace.record(
                    now,
                    "update",
                    msg.worker,
                    version=server.version,
                    staleness=msg.staleness,
                    value=msg.loss,
                )
                if plan.recorder.enabled and msg.staleness >= 0:
                    plan.recorder.emit(
                        now, "staleness", msg.worker,
                        value=float(int(msg.staleness)), version=server.version,
                    )
                session.maybe_evaluate(now)
                if server.batches_processed >= plan.total_updates:
                    ctl.done.set()
                    board.shutdown()
                    transport.wake_all_workers(Shutdown())
        except BaseException as exc:
            ctl.fail(exc)
            board.shutdown()
            transport.wake_all_workers(Shutdown())

    def _worker_loop(
        self,
        m: int,
        session: ExperimentSession,
        transport: GossipTransport,
        ctl: RunControl,
        board: PairingBoard,
        topology: TopologyModel,
        local_params: List[np.ndarray],
    ) -> None:
        plan = session.plan
        config = plan.config
        worker = plan.workers[m]
        inbox = transport.peer_inboxes[m]
        params = local_params[m]
        rule = make_update_rule(
            "ad-psgd", num_workers=config.num_workers, momentum=config.momentum
        )
        partner_rng = plan.rng_tree.child(f"gossip-worker-{m}").generator("partners")
        step = 0
        last_avg = 0
        try:
            while not ctl.done.is_set():
                # local step: the model lock spans all replica/vector math so
                # eval snapshots stay consistent; never held across a wait
                duration = plan.compute.duration(m, fraction=1.0)
                lr = plan.server.current_lr
                with worker.model_lock, plan.timer.section("worker-compute"):
                    worker.load_params(params, version=step, t_comm=0.0)
                    _, payload = worker.forward_backward(t_comp=duration)
                    rule.apply_gradient(params, payload, lr, version=step)
                step += 1
                if self.compute_scale > 0:
                    time.sleep(self.compute_scale * duration)
                transport.to_coordinator(
                    m,
                    GossipReport(
                        m,
                        loss=payload.loss,
                        staleness=gossip_staleness(step, last_avg),
                        local_step=step,
                    ),
                    nbytes=REQUEST_BYTES,
                )

                # gossip: atomic pairing, then send-before-receive
                desired = topology.partner(m, partner_rng)
                if desired is None:
                    continue  # single-worker graph: pure local SGD
                partner = board.request(m, desired)
                if partner is None:
                    break  # run ended while waiting on the board
                with worker.model_lock:
                    snapshot = params.copy()
                    bn_stats = _snapshot_bn(worker.model)
                transport.to_peer(
                    m,
                    partner,
                    WeightExchange(m, weights=snapshot, bn_stats=bn_stats, step=step),
                    nbytes=plan.model_bytes,
                )
                theirs = self._receive_exchange(inbox, ctl)
                if theirs is None:
                    break  # partner died mid-exchange (error path only)
                with worker.model_lock:
                    mine, _ = pairwise_average(params, theirs.weights)
                    params[:] = mine
                    _average_bn_into(worker.model, theirs.bn_stats)
                last_avg = step
        except BaseException as exc:
            ctl.fail(exc)
            board.shutdown()
            transport.wake_all_workers(Shutdown())

    @staticmethod
    def _receive_exchange(inbox, ctl: RunControl) -> Optional[WeightExchange]:
        """Wait for the committed partner's weights.

        A normal-completion Shutdown does not abort the exchange — the
        partner is committed and will send (both sides send before either
        receives); only an error Shutdown (a thread actually died) gives up.
        """
        while True:
            msg = inbox.get()
            if isinstance(msg, WeightExchange):
                return msg
            if isinstance(msg, Shutdown) and ctl.error is not None:
                return None


# ---------------------------------------------------------------------- #
# replica averaging helpers (shared by both modes)
# ---------------------------------------------------------------------- #
def _snapshot_bn(model) -> tuple:
    """Copy a model's BN running statistics (caller holds the lock)."""
    return tuple(
        (layer.running_mean.copy(), layer.running_var.copy())
        for layer in bn_layers(model)
    )


def _average_bn_into(model, partner_stats: tuple) -> None:
    """Average partner BN running stats into ``model`` in place."""
    layers = bn_layers(model)
    if not partner_stats or len(partner_stats) != len(layers):
        return
    for layer, (mean, var) in zip(layers, partner_stats):
        layer.running_mean[:] = 0.5 * (layer.running_mean + mean)
        layer.running_var[:] = 0.5 * (layer.running_var + var)


def _average_bn_pair(model_a, model_b) -> None:
    """Set both models' BN running stats to their elementwise mean."""
    layers_a, layers_b = bn_layers(model_a), bn_layers(model_b)
    for la, lb in zip(layers_a, layers_b):
        mean = 0.5 * (la.running_mean + lb.running_mean)
        var = 0.5 * (la.running_var + lb.running_var)
        la.running_mean[:] = mean
        lb.running_mean[:] = mean.copy()
        la.running_var[:] = var
        lb.running_var[:] = var.copy()


def _make_eval_sync(plan: ExperimentPlan, local_params: List[np.ndarray]):
    """Eval hook: install the mean of all replicas into ``eval_model``.

    Decentralized runs have no authoritative vector, so evaluation uses the
    consensus estimate ``x̄ = (1/N) Σ x_i`` (the quantity AD-PSGD's analysis
    tracks).  BN running statistics are averaged the same way.  Snapshots
    take each replica's lock one at a time — cheap, and workers never hold
    a lock across a wait.
    """

    def eval_sync() -> None:
        acc: Optional[np.ndarray] = None
        bn_acc: Optional[List[Tuple[np.ndarray, np.ndarray]]] = None
        n = len(plan.workers)
        for worker, params in zip(plan.workers, local_params):
            with worker.model_lock:
                vec = params.copy()
                stats = _snapshot_bn(worker.model)
            acc = vec if acc is None else acc + vec
            if bn_acc is None:
                bn_acc = [[mean, var] for mean, var in stats]
            else:
                for slot, (mean, var) in zip(bn_acc, stats):
                    slot[0] = slot[0] + mean
                    slot[1] = slot[1] + var
        if acc is None:
            return
        set_flat_params(plan.eval_model, acc / n)
        if bn_acc:
            load_bn_running_stats(
                plan.eval_model, [(mean / n, var / n) for mean, var in bn_acc]
            )

    return eval_sync
