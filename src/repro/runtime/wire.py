"""Wire layer for the process backend: framing + message (de)serialization.

Every frame on a worker socket is::

    [u32 frame length][u32 header length][header JSON][raw array payloads]

The header is a small JSON document carrying the message kind, its scalar
fields, an optional delivery ``delay`` (the emulated downlink occupancy the
receiver sleeps out — the :class:`~repro.runtime.transport.Mailbox`
contract), and one dtype/shape descriptor per array payload.  Numpy
payloads travel as raw buffers appended after the header in descriptor
order; weights, gradients and BN statistics are cast to the repository's
documented float32 wire format (``model_bytes = params * 4``), never
pickled.

Two frame flavors share the transport:

* **message frames** — one :mod:`repro.runtime.messages` envelope each;
  :func:`encode_message` / :func:`decode` are exact inverses for every
  type (property-tested in ``tests/runtime/test_wire.py``).
* **control frames** — plain JSON documents for the parent/child
  handshake (hello, config, ready, start, error).  :func:`decode` returns
  the dict itself so handshake code never touches the codec tables.

Nothing here is proc-specific: any transport that moves bytes (TCP here,
maybe TLS or shared memory later) can reuse the framing unchanged.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, List, Tuple, Union

import numpy as np

from repro.core.state import CompensationReply, GradientPayload, WorkerState
from repro.runtime.messages import (
    BnStatsPush,
    CombinedPush,
    CompensationMessage,
    GradientPush,
    Message,
    PullReply,
    PullRequest,
    Shutdown,
    StatePush,
)

#: bumped whenever the header schema or codec tables change incompatibly;
#: the handshake rejects children speaking a different version
PROTOCOL_VERSION = 1

#: dtype every float payload is cast to on the wire (matches the
#: ``model_bytes = params * 4`` accounting in repro.runtime.session)
WIRE_DTYPE = np.float32

#: refuse frames beyond this size — a corrupt length prefix must not
#: trigger a gigabyte allocation
MAX_FRAME_BYTES = 1 << 30

_LEN = struct.Struct(">I")


class WireError(RuntimeError):
    """Malformed frame, unknown message kind, or protocol violation."""


class ConnectionClosed(WireError):
    """The peer closed the socket mid-stream (EOF before a full frame)."""


# ---------------------------------------------------------------------- #
# array payloads
# ---------------------------------------------------------------------- #
def _array_meta(arrays: List[np.ndarray]) -> List[Dict[str, Any]]:
    return [{"dtype": a.dtype.name, "shape": list(a.shape)} for a in arrays]


def _wire_array(value: np.ndarray) -> np.ndarray:
    """Contiguous float32 view of a payload array (the wire format)."""
    return np.ascontiguousarray(value, dtype=WIRE_DTYPE)


def _split_arrays(blob: bytes, meta: List[Dict[str, Any]]) -> List[np.ndarray]:
    """Rebuild the payload arrays from the raw bytes after the header."""
    arrays: List[np.ndarray] = []
    offset = 0
    for entry in meta:
        dtype = np.dtype(entry["dtype"])
        shape = tuple(int(s) for s in entry["shape"])
        nbytes = dtype.itemsize * int(np.prod(shape)) if shape else dtype.itemsize
        chunk = blob[offset : offset + nbytes]
        if len(chunk) != nbytes:
            raise WireError(
                f"array payload truncated: expected {nbytes} bytes, got {len(chunk)}"
            )
        # .copy(): frombuffer views are read-only and pin the frame alive
        arrays.append(np.frombuffer(chunk, dtype=dtype).reshape(shape).copy())
        offset += nbytes
    if offset != len(blob):
        raise WireError(f"frame carries {len(blob) - offset} unclaimed payload byte(s)")
    return arrays


# ---------------------------------------------------------------------- #
# per-kind codecs: message -> (fields, arrays) and back
# ---------------------------------------------------------------------- #
def _state_fields(state: WorkerState) -> Dict[str, Any]:
    return {
        "worker": state.worker,
        "loss": float(state.loss),
        "t_comm": float(state.t_comm),
        "t_comp": float(state.t_comp),
        "pull_version": int(state.pull_version),
        "bn_layers": len(state.bn_stats),
    }


def _state_arrays(state: WorkerState) -> List[np.ndarray]:
    arrays: List[np.ndarray] = []
    for mean, var in state.bn_stats:
        arrays.append(_wire_array(mean))
        arrays.append(_wire_array(var))
    return arrays


def _state_from(fields: Dict[str, Any], arrays: List[np.ndarray]) -> WorkerState:
    layers = int(fields["bn_layers"])
    bn_stats = [(arrays[2 * i], arrays[2 * i + 1]) for i in range(layers)]
    return WorkerState(
        worker=int(fields["worker"]),
        loss=float(fields["loss"]),
        bn_stats=bn_stats,
        t_comm=float(fields["t_comm"]),
        t_comp=float(fields["t_comp"]),
        pull_version=int(fields["pull_version"]),
    )


def _payload_fields(payload: GradientPayload) -> Dict[str, Any]:
    return {
        "worker": payload.worker,
        "pull_version": int(payload.pull_version),
        "loss": float(payload.loss),
    }


def _payload_from(fields: Dict[str, Any], grad: np.ndarray) -> GradientPayload:
    # GradientPayload.__post_init__ restores float64 math precision and
    # recomputes nbytes from the float32 wire size
    return GradientPayload(
        worker=int(fields["worker"]),
        grad=grad,
        pull_version=int(fields["pull_version"]),
        loss=float(fields["loss"]),
    )


def _enc_pull_request(msg: PullRequest):
    return {"worker": msg.worker, "sent_at": float(msg.sent_at)}, []


def _dec_pull_request(fields, arrays):
    return PullRequest(int(fields["worker"]), sent_at=float(fields["sent_at"]))


def _enc_pull_reply(msg: PullReply):
    fields = {
        "worker": msg.worker,
        "version": int(msg.version),
        "request_sent_at": float(msg.request_sent_at),
        "has_weights": msg.weights is not None,
    }
    arrays = [] if msg.weights is None else [_wire_array(msg.weights)]
    return fields, arrays


def _dec_pull_reply(fields, arrays):
    weights = arrays[0] if fields["has_weights"] else None
    return PullReply(
        int(fields["worker"]),
        weights=weights,
        version=int(fields["version"]),
        request_sent_at=float(fields["request_sent_at"]),
    )


def _enc_state_push(msg: StatePush):
    return {"worker": msg.worker, "state": _state_fields(msg.state)}, _state_arrays(msg.state)


def _dec_state_push(fields, arrays):
    return StatePush(int(fields["worker"]), state=_state_from(fields["state"], arrays))


def _enc_compensation(msg: CompensationMessage):
    reply = None
    if msg.reply is not None:
        reply = {
            "worker": msg.reply.worker,
            "l_delay": float(msg.reply.l_delay),
            "predicted_step": int(msg.reply.predicted_step),
            "sensitivity": float(msg.reply.sensitivity),
        }
    return {"worker": msg.worker, "reply": reply}, []


def _dec_compensation(fields, arrays):
    reply = None
    if fields["reply"] is not None:
        r = fields["reply"]
        reply = CompensationReply(
            worker=int(r["worker"]),
            l_delay=float(r["l_delay"]),
            predicted_step=int(r["predicted_step"]),
            sensitivity=float(r["sensitivity"]),
        )
    return CompensationMessage(int(fields["worker"]), reply=reply)


def _enc_gradient_push(msg: GradientPush):
    return (
        {"worker": msg.worker, "payload": _payload_fields(msg.payload)},
        [_wire_array(msg.payload.grad)],
    )


def _dec_gradient_push(fields, arrays):
    return GradientPush(int(fields["worker"]), payload=_payload_from(fields["payload"], arrays[0]))


def _enc_combined_push(msg: CombinedPush):
    fields = {
        "worker": msg.worker,
        "state": _state_fields(msg.state),
        "payload": _payload_fields(msg.payload),
    }
    return fields, _state_arrays(msg.state) + [_wire_array(msg.payload.grad)]


def _dec_combined_push(fields, arrays):
    return CombinedPush(
        int(fields["worker"]),
        state=_state_from(fields["state"], arrays[:-1]),
        payload=_payload_from(fields["payload"], arrays[-1]),
    )


def _enc_shutdown(msg: Shutdown):
    return {"worker": msg.worker}, []


def _dec_shutdown(fields, arrays):
    return Shutdown(int(fields["worker"]))


def _enc_bn_stats(msg: BnStatsPush):
    arrays: List[np.ndarray] = []
    for mean, var in msg.stats:
        arrays.append(_wire_array(mean))
        arrays.append(_wire_array(var))
    return {"worker": msg.worker, "bn_layers": len(msg.stats)}, arrays


def _dec_bn_stats(fields, arrays):
    layers = int(fields["bn_layers"])
    stats = tuple((arrays[2 * i], arrays[2 * i + 1]) for i in range(layers))
    return BnStatsPush(int(fields["worker"]), stats=stats)


_CODECS = {
    "PullRequest": (PullRequest, _enc_pull_request, _dec_pull_request),
    "PullReply": (PullReply, _enc_pull_reply, _dec_pull_reply),
    "StatePush": (StatePush, _enc_state_push, _dec_state_push),
    "CompensationMessage": (CompensationMessage, _enc_compensation, _dec_compensation),
    "GradientPush": (GradientPush, _enc_gradient_push, _dec_gradient_push),
    "CombinedPush": (CombinedPush, _enc_combined_push, _dec_combined_push),
    "Shutdown": (Shutdown, _enc_shutdown, _dec_shutdown),
    "BnStatsPush": (BnStatsPush, _enc_bn_stats, _dec_bn_stats),
}
_ENCODERS = {cls: (kind, enc) for kind, (cls, enc, _) in _CODECS.items()}


# ---------------------------------------------------------------------- #
# frame encode/decode
# ---------------------------------------------------------------------- #
def _pack(header: Dict[str, Any], arrays: List[np.ndarray]) -> bytes:
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    parts = [_LEN.pack(len(header_bytes)), header_bytes]
    parts.extend(a.tobytes() for a in arrays)
    return b"".join(parts)


def encode_message(message: Message, delay: float = 0.0) -> bytes:
    """Serialize one envelope (plus its delivery ``delay`` stamp)."""
    try:
        kind, encoder = _ENCODERS[type(message)]
    except KeyError:
        raise WireError(f"no wire codec for {type(message).__name__}")
    fields, arrays = encoder(message)
    header = {
        "v": PROTOCOL_VERSION,
        "kind": kind,
        "delay": float(delay),
        "fields": fields,
        "arrays": _array_meta(arrays),
    }
    return _pack(header, arrays)


def encode_control(doc: Dict[str, Any]) -> bytes:
    """Serialize a handshake document (hello/config/ready/start/error)."""
    header = {"v": PROTOCOL_VERSION, "kind": "control", "delay": 0.0,
              "fields": doc, "arrays": []}
    return _pack(header, [])


def decode(payload: bytes) -> Tuple[Union[Message, Dict[str, Any]], float]:
    """Inverse of :func:`encode_message` / :func:`encode_control`.

    Returns ``(message, delay)`` for message frames and ``(doc, 0.0)``
    for control frames (the caller distinguishes with ``isinstance``).
    """
    if len(payload) < _LEN.size:
        raise WireError(f"frame too short for a header length ({len(payload)} bytes)")
    (header_len,) = _LEN.unpack_from(payload)
    if header_len > len(payload) - _LEN.size:
        raise WireError(f"header length {header_len} exceeds frame size {len(payload)}")
    try:
        header = json.loads(payload[_LEN.size : _LEN.size + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"unparseable frame header: {exc}")
    version = header.get("v")
    if version != PROTOCOL_VERSION:
        raise WireError(f"wire protocol mismatch: got v{version}, speak v{PROTOCOL_VERSION}")
    kind = header.get("kind")
    delay = float(header.get("delay", 0.0))
    if kind == "control":
        return dict(header.get("fields", {})), 0.0
    try:
        _, _, decoder = _CODECS[kind]
    except KeyError:
        raise WireError(f"unknown message kind {kind!r}")
    arrays = _split_arrays(payload[_LEN.size + header_len :], header.get("arrays", []))
    return decoder(header["fields"], arrays), delay


# ---------------------------------------------------------------------- #
# socket framing
# ---------------------------------------------------------------------- #
class FrameConnection:
    """One framed, length-prefixed socket: sendall frames out, read them back.

    Thread contract: at most one sender and one reader at a time; callers
    with multiple sending threads (e.g. the server actor plus a shutdown
    broadcast) hold their own per-connection send lock.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        try:  # latency matters more than throughput for 4-message cycles
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except (OSError, ValueError):
            pass  # not a TCP socket (tests use socketpair)

    # -------------------------------------------------------------- #
    def send_frame(self, payload: bytes) -> None:
        self._sock.sendall(_LEN.pack(len(payload)) + payload)

    def send_message(self, message: Message, delay: float = 0.0) -> None:
        self.send_frame(encode_message(message, delay=delay))

    def send_control(self, doc: Dict[str, Any]) -> None:
        self.send_frame(encode_control(doc))

    # -------------------------------------------------------------- #
    def _read_exact(self, n: int) -> bytes:
        buf = bytearray()
        while len(buf) < n:
            chunk = self._sock.recv(n - len(buf))
            if not chunk:
                raise ConnectionClosed("peer closed the connection mid-frame")
            buf += chunk
        return bytes(buf)

    def read_frame(self) -> bytes:
        (length,) = _LEN.unpack(self._read_exact(_LEN.size))
        if length > MAX_FRAME_BYTES:
            raise WireError(f"frame length {length} exceeds cap {MAX_FRAME_BYTES}")
        return self._read_exact(length)

    def recv(self) -> Tuple[Union[Message, Dict[str, Any]], float]:
        """Read and decode the next frame: ``(message_or_doc, delay)``."""
        return decode(self.read_frame())

    # -------------------------------------------------------------- #
    def settimeout(self, timeout: Union[float, None]) -> None:
        """Deadline for subsequent socket reads/writes (None = blocking)."""
        self._sock.settimeout(timeout)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
