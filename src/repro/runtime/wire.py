"""Wire layer for the process backend: zero-copy framing + codec plumbing.

Every frame on a worker socket is::

    [u32 frame length][u32 header length][header JSON][array part buffers]

The header is a small JSON document carrying the message kind, its scalar
fields, an optional delivery ``delay`` (the emulated downlink occupancy
the receiver sleeps out — the :class:`~repro.runtime.transport.Mailbox`
contract), the sender's *logical* byte count (``nbytes`` — what the run's
accounting charges, independent of compression), and one self-describing
codec entry per array payload (:mod:`repro.runtime.codecs`).  Array data
travels as raw buffers appended after the header in entry order; nothing
is ever pickled.

The data plane is zero-copy in both directions:

* **send** — :func:`encode_message_into` returns ``(prefix, buffers)``
  where the buffers are the codec's contiguous arrays themselves;
  :meth:`FrameConnection.send_message` hands them to a vectored
  ``socket.sendmsg`` with no payload join.
* **receive** — :meth:`FrameConnection.read_frame` fills a reusable
  per-connection buffer via ``recv_into`` and returns a read-only view
  of it (valid until the next read); :func:`decode` builds arrays as
  ``np.frombuffer`` views with ``copy=False``.  Decoders own anything
  that outlives the frame (BN statistics, weights, gradients — the
  float64 math cast copies), so a decoded message never aliases the
  receive buffer.

Two frame flavors share the transport:

* **message frames** — one :mod:`repro.runtime.messages` envelope each;
  :func:`encode_message` / :func:`decode` are exact inverses for every
  type (property-tested in ``tests/runtime/test_wire.py``).
* **control frames** — :class:`ControlFrame` documents for handshakes
  (proc hello/config/ready/start/error and the fleet protocol both ride
  this one typed helper); :func:`decode` returns the doc dict itself.

Version negotiation: the header carries ``v`` and :func:`decode` runs the
single :func:`check_protocol_version` path, so a v1 peer is rejected with
a reason on its first frame rather than failing opaquely mid-run.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.state import CompensationReply, GradientPayload, WorkerState
from repro.runtime import codecs as codecs_mod
from repro.runtime.codecs import (
    GradientCodec,
    RAW32,
    ROLE_BN,
    ROLE_GRAD,
    ROLE_WEIGHTS,
    decode_array,
    entry_nbytes,
)
from repro.runtime.messages import (
    BnStatsPush,
    CombinedPush,
    CompensationMessage,
    GossipReport,
    GradientPush,
    Message,
    PullReply,
    PullRequest,
    Shutdown,
    StatePush,
    TracePush,
    WeightExchange,
)

#: bumped whenever the header schema or codec tables change incompatibly;
#: v2 = codec-entry array metadata + logical ``nbytes`` in the header
PROTOCOL_VERSION = 2

#: dtype the raw32 codec casts float payloads to (matches the
#: ``model_bytes = params * 4`` accounting in repro.runtime.session)
WIRE_DTYPE = np.float32

#: refuse frames beyond this size — enforced on *both* ends: a corrupt
#: length prefix must not trigger a gigabyte allocation, and an oversized
#: send must fail loudly here, not opaquely on the peer
MAX_FRAME_BYTES = 1 << 30

_LEN = struct.Struct(">I")


class WireError(RuntimeError):
    """Malformed frame, unknown message kind, or protocol violation."""


class ConnectionClosed(WireError):
    """The peer closed the socket mid-stream (EOF before a full frame)."""


class ProtocolMismatch(WireError):
    """The peer speaks a different protocol version (reject with reason)."""


def check_protocol_version(
    got: Any, want: int, label: str = "wire", error: type = ProtocolMismatch
) -> None:
    """The one version gate every protocol layer routes through."""
    if got != want:
        raise error(f"{label} protocol mismatch: peer speaks v{got}, we speak v{want}")


# ---------------------------------------------------------------------- #
# typed control frames (proc handshake + fleet protocol share this shape)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ControlFrame:
    """One typed handshake/control document: ``kind`` + ``body`` + version.

    ``v`` defaults to the wire protocol version at serialization time;
    higher-level protocols with their own versioning (fleet) pass theirs
    explicitly.  ``to_doc``/``from_doc`` are exact JSON-able inverses.
    """

    kind: str
    body: Dict[str, Any] = field(default_factory=dict)
    v: Optional[int] = None

    def to_doc(self) -> Dict[str, Any]:
        version = PROTOCOL_VERSION if self.v is None else int(self.v)
        return {"ctl": self.kind, "cv": version, "body": dict(self.body)}

    @classmethod
    def from_doc(
        cls,
        doc: Any,
        expect_version: Optional[int] = None,
        label: str = "control",
        error: type = WireError,
    ) -> "ControlFrame":
        if not isinstance(doc, dict) or "ctl" not in doc:
            raise error(f"not a {label} frame: {doc!r}")
        if expect_version is not None:
            # skew gets the dedicated subclass so handshakes can reject
            # with a reason instead of treating the peer as garbage
            mismatch = ProtocolMismatch if error is WireError else error
            check_protocol_version(doc.get("cv"), expect_version, label, mismatch)
        body = doc.get("body")
        if body is None:
            body = {}
        if not isinstance(body, dict):
            raise error(f"{label} frame body must be a dict, got {type(body).__name__}")
        return cls(str(doc["ctl"]), dict(body), v=doc.get("cv"))


# ---------------------------------------------------------------------- #
# per-kind codecs: message -> (fields, [(role, array), ...]) and back.
# Decoders receive (fields, arrays, owned); any array that outlives the
# frame must be owned (copied when the flag says it is borrowed).
# ---------------------------------------------------------------------- #
def _owned(array: np.ndarray, owned: bool) -> np.ndarray:
    return array if owned else np.array(array)


def _state_fields(state: WorkerState) -> Dict[str, Any]:
    return {
        "worker": state.worker,
        "loss": float(state.loss),
        "t_comm": float(state.t_comm),
        "t_comp": float(state.t_comp),
        "pull_version": int(state.pull_version),
        "bn_layers": len(state.bn_stats),
    }


def _state_arrays(state: WorkerState) -> List[Tuple[str, np.ndarray]]:
    arrays: List[Tuple[str, np.ndarray]] = []
    for mean, var in state.bn_stats:
        arrays.append((ROLE_BN, mean))
        arrays.append((ROLE_BN, var))
    return arrays


def _state_from(fields: Dict[str, Any], arrays, owned) -> WorkerState:
    layers = int(fields["bn_layers"])
    bn_stats = [
        (_owned(arrays[2 * i], owned[2 * i]), _owned(arrays[2 * i + 1], owned[2 * i + 1]))
        for i in range(layers)
    ]
    return WorkerState(
        worker=int(fields["worker"]),
        loss=float(fields["loss"]),
        bn_stats=bn_stats,
        t_comm=float(fields["t_comm"]),
        t_comp=float(fields["t_comp"]),
        pull_version=int(fields["pull_version"]),
    )


def _payload_fields(payload: GradientPayload) -> Dict[str, Any]:
    return {
        "worker": payload.worker,
        "pull_version": int(payload.pull_version),
        "loss": float(payload.loss),
    }


def _payload_from(fields: Dict[str, Any], grad: np.ndarray) -> GradientPayload:
    # GradientPayload.__post_init__ casts to float64 math precision (a
    # copy — safe even from a borrowed frombuffer view) and recomputes
    # nbytes from the float32 wire size
    return GradientPayload(
        worker=int(fields["worker"]),
        grad=grad,
        pull_version=int(fields["pull_version"]),
        loss=float(fields["loss"]),
    )


def _enc_pull_request(msg: PullRequest):
    return {"worker": msg.worker, "sent_at": float(msg.sent_at)}, []


def _dec_pull_request(fields, arrays, owned):
    return PullRequest(int(fields["worker"]), sent_at=float(fields["sent_at"]))


def _enc_pull_reply(msg: PullReply):
    fields = {
        "worker": msg.worker,
        "version": int(msg.version),
        "request_sent_at": float(msg.request_sent_at),
        "has_weights": msg.weights is not None,
    }
    arrays = [] if msg.weights is None else [(ROLE_WEIGHTS, msg.weights)]
    return fields, arrays


def _dec_pull_reply(fields, arrays, owned):
    weights = _owned(arrays[0], owned[0]) if fields["has_weights"] else None
    return PullReply(
        int(fields["worker"]),
        weights=weights,
        version=int(fields["version"]),
        request_sent_at=float(fields["request_sent_at"]),
    )


def _enc_state_push(msg: StatePush):
    return {"worker": msg.worker, "state": _state_fields(msg.state)}, _state_arrays(msg.state)


def _dec_state_push(fields, arrays, owned):
    return StatePush(
        int(fields["worker"]), state=_state_from(fields["state"], arrays, owned)
    )


def _enc_compensation(msg: CompensationMessage):
    reply = None
    if msg.reply is not None:
        reply = {
            "worker": msg.reply.worker,
            "l_delay": float(msg.reply.l_delay),
            "predicted_step": int(msg.reply.predicted_step),
            "sensitivity": float(msg.reply.sensitivity),
        }
    return {"worker": msg.worker, "reply": reply}, []


def _dec_compensation(fields, arrays, owned):
    reply = None
    if fields["reply"] is not None:
        r = fields["reply"]
        reply = CompensationReply(
            worker=int(r["worker"]),
            l_delay=float(r["l_delay"]),
            predicted_step=int(r["predicted_step"]),
            sensitivity=float(r["sensitivity"]),
        )
    return CompensationMessage(int(fields["worker"]), reply=reply)


def _enc_gradient_push(msg: GradientPush):
    return (
        {"worker": msg.worker, "payload": _payload_fields(msg.payload)},
        [(ROLE_GRAD, msg.payload.grad)],
    )


def _dec_gradient_push(fields, arrays, owned):
    return GradientPush(
        int(fields["worker"]), payload=_payload_from(fields["payload"], arrays[0])
    )


def _enc_combined_push(msg: CombinedPush):
    fields = {
        "worker": msg.worker,
        "state": _state_fields(msg.state),
        "payload": _payload_fields(msg.payload),
    }
    return fields, _state_arrays(msg.state) + [(ROLE_GRAD, msg.payload.grad)]


def _dec_combined_push(fields, arrays, owned):
    return CombinedPush(
        int(fields["worker"]),
        state=_state_from(fields["state"], arrays[:-1], owned[:-1]),
        payload=_payload_from(fields["payload"], arrays[-1]),
    )


def _enc_shutdown(msg: Shutdown):
    return {"worker": msg.worker}, []


def _dec_shutdown(fields, arrays, owned):
    return Shutdown(int(fields["worker"]))


def _enc_bn_stats(msg: BnStatsPush):
    arrays: List[Tuple[str, np.ndarray]] = []
    for mean, var in msg.stats:
        arrays.append((ROLE_BN, mean))
        arrays.append((ROLE_BN, var))
    return {"worker": msg.worker, "bn_layers": len(msg.stats)}, arrays


def _dec_bn_stats(fields, arrays, owned):
    layers = int(fields["bn_layers"])
    stats = tuple(
        (_owned(arrays[2 * i], owned[2 * i]), _owned(arrays[2 * i + 1], owned[2 * i + 1]))
        for i in range(layers)
    )
    return BnStatsPush(int(fields["worker"]), stats=stats)


def _enc_trace_push(msg: TracePush):
    # trace rows are small JSON-safe scalars ([t, kind, worker, *fields]):
    # they ride the header, no array part — the data plane stays untouched
    return {"worker": msg.worker, "rows": [list(row) for row in msg.rows]}, []


def _dec_trace_push(fields, arrays, owned):
    return TracePush(
        int(fields["worker"]), rows=tuple(list(row) for row in fields["rows"])
    )


def _enc_weight_exchange(msg: WeightExchange):
    fields = {
        "worker": msg.worker,
        "step": int(msg.step),
        "has_weights": msg.weights is not None,
        "bn_layers": len(msg.bn_stats),
    }
    arrays: List[Tuple[str, np.ndarray]] = []
    if msg.weights is not None:
        arrays.append((ROLE_WEIGHTS, msg.weights))
    for mean, var in msg.bn_stats:
        arrays.append((ROLE_BN, mean))
        arrays.append((ROLE_BN, var))
    return fields, arrays


def _dec_weight_exchange(fields, arrays, owned):
    base = 0
    weights = None
    if fields["has_weights"]:
        weights = _owned(arrays[0], owned[0])
        base = 1
    layers = int(fields["bn_layers"])
    bn_stats = tuple(
        (
            _owned(arrays[base + 2 * i], owned[base + 2 * i]),
            _owned(arrays[base + 2 * i + 1], owned[base + 2 * i + 1]),
        )
        for i in range(layers)
    )
    return WeightExchange(
        int(fields["worker"]),
        weights=weights,
        bn_stats=bn_stats,
        step=int(fields["step"]),
    )


def _enc_gossip_report(msg: GossipReport):
    return {
        "worker": msg.worker,
        "loss": float(msg.loss),
        "staleness": int(msg.staleness),
        "local_step": int(msg.local_step),
    }, []


def _dec_gossip_report(fields, arrays, owned):
    return GossipReport(
        int(fields["worker"]),
        loss=float(fields["loss"]),
        staleness=int(fields["staleness"]),
        local_step=int(fields["local_step"]),
    )


_CODECS = {
    "PullRequest": (PullRequest, _enc_pull_request, _dec_pull_request),
    "PullReply": (PullReply, _enc_pull_reply, _dec_pull_reply),
    "StatePush": (StatePush, _enc_state_push, _dec_state_push),
    "CompensationMessage": (CompensationMessage, _enc_compensation, _dec_compensation),
    "GradientPush": (GradientPush, _enc_gradient_push, _dec_gradient_push),
    "CombinedPush": (CombinedPush, _enc_combined_push, _dec_combined_push),
    "Shutdown": (Shutdown, _enc_shutdown, _dec_shutdown),
    "BnStatsPush": (BnStatsPush, _enc_bn_stats, _dec_bn_stats),
    "TracePush": (TracePush, _enc_trace_push, _dec_trace_push),
    "WeightExchange": (WeightExchange, _enc_weight_exchange, _dec_weight_exchange),
    "GossipReport": (GossipReport, _enc_gossip_report, _dec_gossip_report),
}
_ENCODERS = {cls: (kind, enc) for kind, (cls, enc, _) in _CODECS.items()}


# ---------------------------------------------------------------------- #
# frame encode/decode
# ---------------------------------------------------------------------- #
def _message_parts(message: Message, codec: Optional[GradientCodec]):
    """(kind, fields, entries, buffers) for one envelope."""
    try:
        kind, encoder = _ENCODERS[type(message)]
    except KeyError:
        raise WireError(f"no wire codec for {type(message).__name__}")
    fields, role_arrays = encoder(message)
    codec = codec or RAW32
    entries: List[Dict[str, Any]] = []
    buffers: List[np.ndarray] = []
    for role, array in role_arrays:
        entry, bufs = codec.encode(role, array)
        entries.append(entry)
        buffers.extend(bufs)
    return kind, fields, entries, buffers


def encode_message_into(
    message: Message,
    delay: float = 0.0,
    nbytes: int = 0,
    codec: Optional[GradientCodec] = None,
) -> Tuple[bytes, List[np.ndarray]]:
    """Serialize one envelope without joining the payload.

    Returns ``(prefix, buffers)``: the prefix is the header-length word
    plus the header JSON; the buffers are the codec's contiguous arrays,
    ready for a vectored send.  ``nbytes`` is the sender's logical byte
    count, carried in the header so both ends account identically.
    """
    kind, fields, entries, buffers = _message_parts(message, codec)
    header = {
        "v": PROTOCOL_VERSION,
        "kind": kind,
        "delay": float(delay),
        "nbytes": int(nbytes),
        "fields": fields,
        "arrays": entries,
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return _LEN.pack(len(header_bytes)) + header_bytes, buffers


def encode_message(
    message: Message,
    delay: float = 0.0,
    nbytes: int = 0,
    codec: Optional[GradientCodec] = None,
) -> bytes:
    """Joined-payload variant of :func:`encode_message_into` (tests, and
    transports without vectored sends)."""
    prefix, buffers = encode_message_into(message, delay=delay, nbytes=nbytes, codec=codec)
    return b"".join([prefix] + [memoryview(b).cast("B") for b in buffers])


def encode_control(doc: Dict[str, Any]) -> bytes:
    """Serialize a control document (a :class:`ControlFrame` doc or any
    plain JSON dict)."""
    header = {"v": PROTOCOL_VERSION, "kind": "control", "delay": 0.0,
              "fields": doc, "arrays": []}
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return _LEN.pack(len(header_bytes)) + header_bytes


def _decode_arrays(
    view: memoryview, entries: List[Dict[str, Any]], copy: bool
) -> Tuple[List[np.ndarray], List[bool]]:
    """Split the payload region into per-entry arrays (views when
    ``copy=False``) and decode each entry's encoding."""
    arrays: List[np.ndarray] = []
    owned: List[bool] = []
    offset = 0
    total = view.nbytes
    for entry in entries:
        parts: List[np.ndarray] = []
        for part in entry.get("parts", ()):
            dtype_name = part.get("dtype") if isinstance(part, dict) else None
            if dtype_name not in codecs_mod.PART_DTYPES:
                raise WireError(f"disallowed array part dtype {dtype_name!r}")
            dtype = np.dtype(dtype_name)
            n = int(part.get("n", 0))
            nbytes = n * dtype.itemsize
            if n < 0 or offset + nbytes > total:
                raise WireError(
                    f"array payload truncated: expected {nbytes} bytes, "
                    f"got {total - offset}"
                )
            parts.append(np.frombuffer(view, dtype=dtype, count=n, offset=offset))
            offset += nbytes
        try:
            array, own = decode_array(entry, parts, copy=copy)
        except codecs_mod.CodecError as exc:
            raise WireError(str(exc))
        arrays.append(array)
        owned.append(own)
    if offset != total:
        raise WireError(f"frame carries {total - offset} unclaimed payload byte(s)")
    return arrays, owned


def decode_frame(
    payload: Union[bytes, bytearray, memoryview], copy: bool = True
) -> Tuple[Union[Message, Dict[str, Any]], float, int]:
    """Inverse of :func:`encode_message` / :func:`encode_control`.

    Returns ``(message, delay, logical_nbytes)`` for message frames and
    ``(doc, 0.0, 0)`` for control frames.  With ``copy=False`` array data
    is read straight out of ``payload`` with no intermediate copy; the
    per-kind decoders still own everything a message retains, so decoded
    messages never alias the buffer.
    """
    view = memoryview(payload)
    if view.nbytes < _LEN.size:
        raise WireError(f"frame too short for a header length ({view.nbytes} bytes)")
    (header_len,) = _LEN.unpack_from(view)
    if header_len > view.nbytes - _LEN.size:
        raise WireError(f"header length {header_len} exceeds frame size {view.nbytes}")
    try:
        header = json.loads(bytes(view[_LEN.size : _LEN.size + header_len]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"unparseable frame header: {exc}")
    check_protocol_version(header.get("v"), PROTOCOL_VERSION)
    kind = header.get("kind")
    delay = float(header.get("delay", 0.0))
    nbytes = int(header.get("nbytes", 0))
    if kind == "control":
        return dict(header.get("fields", {})), 0.0, 0
    try:
        _, _, decoder = _CODECS[kind]
    except KeyError:
        raise WireError(f"unknown message kind {kind!r}")
    arrays, owned = _decode_arrays(
        view[_LEN.size + header_len :], header.get("arrays", []), copy
    )
    return decoder(header["fields"], arrays, owned), delay, nbytes


def decode(
    payload: Union[bytes, bytearray, memoryview], copy: bool = True
) -> Tuple[Union[Message, Dict[str, Any]], float]:
    """:func:`decode_frame` without the byte accounting: ``(obj, delay)``."""
    obj, delay, _ = decode_frame(payload, copy=copy)
    return obj, delay


def codec_roundtrip_message(
    message: Message, codec: GradientCodec, nbytes: int
) -> Tuple[Message, int]:
    """Apply a codec's lossy encode/decode to an in-memory message.

    What the in-process transports use to emulate compression without a
    socket: returns the message as the peer would decode it, plus the
    wire byte count (the logical ``nbytes`` with each array's float32
    footprint swapped for its encoded footprint).
    """
    kind, fields, entries, buffers = _message_parts(message, codec)
    _, _, decoder = _CODECS[kind]
    arrays: List[np.ndarray] = []
    wire_nbytes = int(nbytes)
    cursor = 0
    for entry in entries:
        parts = buffers[cursor : cursor + len(entry["parts"])]
        cursor += len(entry["parts"])
        array, _ = decode_array(entry, parts, copy=False)
        arrays.append(array)
        # logical accounting charges float32 per element; swap that for
        # the encoded footprint to get what a socket would carry
        wire_nbytes += entry_nbytes(entry) - 4 * codecs_mod._shape_size(entry["shape"])
    decoded = decoder(fields, arrays, [True] * len(arrays))
    return decoded, max(0, wire_nbytes)


# ---------------------------------------------------------------------- #
# socket framing
# ---------------------------------------------------------------------- #
class FrameConnection:
    """One framed, length-prefixed socket with a zero-copy data plane.

    Sends are vectored (``sendmsg`` over the codec's buffers, no join);
    reads fill a reusable per-connection buffer via ``recv_into`` and
    hand out read-only views of it.  ``codec`` is this connection's
    *outgoing* gradient codec (decode is stateless, so the two directions
    may run different codecs).

    Thread contract: at most one sender and one reader at a time; callers
    with multiple sending threads (e.g. the server actor plus a shutdown
    broadcast) hold their own per-connection send lock.
    """

    def __init__(self, sock: socket.socket, codec: Optional[GradientCodec] = None) -> None:
        self._sock = sock
        self.codec = codec
        self._len_buf = bytearray(_LEN.size)
        self._recv_buf = bytearray(4096)
        try:  # latency matters more than throughput for 4-message cycles
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except (OSError, ValueError):
            pass  # not a TCP socket (tests use socketpair)

    # -------------------------------------------------------------- #
    def send_parts(self, parts: List[Union[bytes, memoryview, np.ndarray]]) -> int:
        """Vectored send of one frame; returns bytes put on the wire.

        Raises :class:`WireError` *here* when the frame exceeds
        :data:`MAX_FRAME_BYTES` — the sender-side half of the cap.
        """
        bufs = [memoryview(p).cast("B") for p in parts]
        total = sum(b.nbytes for b in bufs)
        if total > MAX_FRAME_BYTES:
            raise WireError(
                f"outgoing frame length {total} exceeds cap {MAX_FRAME_BYTES}"
            )
        bufs.insert(0, memoryview(_LEN.pack(total)))
        sendmsg = getattr(self._sock, "sendmsg", None)
        if sendmsg is None:  # pragma: no cover - all supported platforms have it
            self._sock.sendall(b"".join(bufs))
            return total + _LEN.size
        while bufs:
            sent = sendmsg(bufs)
            while sent > 0:
                if sent >= bufs[0].nbytes:
                    sent -= bufs[0].nbytes
                    bufs.pop(0)
                else:
                    bufs[0] = bufs[0][sent:]
                    sent = 0
        return total + _LEN.size

    def send_frame(self, payload: Union[bytes, memoryview]) -> int:
        return self.send_parts([payload])

    def send_message(
        self, message: Message, delay: float = 0.0, nbytes: int = 0
    ) -> int:
        """Encode with this connection's codec and send; returns wire bytes."""
        prefix, buffers = encode_message_into(
            message, delay=delay, nbytes=nbytes, codec=self.codec
        )
        return self.send_parts([prefix] + buffers)

    def send_control(self, doc: Dict[str, Any]) -> int:
        return self.send_frame(encode_control(doc))

    # -------------------------------------------------------------- #
    def _recv_exact_into(self, buf: Union[bytearray, memoryview], n: int) -> None:
        view = memoryview(buf)
        got = 0
        while got < n:
            received = self._sock.recv_into(view[got:n])
            if received == 0:
                raise ConnectionClosed("peer closed the connection mid-frame")
            got += received

    def read_frame(self) -> memoryview:
        """Read one frame into the reusable buffer; returns a read-only
        view of it, valid until the next :meth:`read_frame` call."""
        self._recv_exact_into(self._len_buf, _LEN.size)
        (length,) = _LEN.unpack(self._len_buf)
        if length > MAX_FRAME_BYTES:
            raise WireError(f"frame length {length} exceeds cap {MAX_FRAME_BYTES}")
        if len(self._recv_buf) < length:
            self._recv_buf = bytearray(max(length, 2 * len(self._recv_buf)))
        self._recv_exact_into(self._recv_buf, length)
        view = memoryview(self._recv_buf)[:length]
        return view.toreadonly() if hasattr(view, "toreadonly") else view

    def recv(self) -> Tuple[Union[Message, Dict[str, Any]], float]:
        """Read and decode the next frame: ``(message_or_doc, delay)``."""
        obj, delay, _, _ = self.recv_info()
        return obj, delay

    def recv_info(
        self,
    ) -> Tuple[Union[Message, Dict[str, Any]], float, int, int]:
        """Read and decode one frame with its byte accounting.

        Returns ``(message_or_doc, delay, logical_nbytes, wire_nbytes)``
        where ``wire_nbytes`` is what actually crossed the socket
        (length prefix included).
        """
        view = self.read_frame()
        obj, delay, nbytes = decode_frame(view, copy=False)
        return obj, delay, nbytes, view.nbytes + _LEN.size

    # -------------------------------------------------------------- #
    def settimeout(self, timeout: Union[float, None]) -> None:
        """Deadline for subsequent socket reads/writes (None = blocking)."""
        self._sock.settimeout(timeout)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
