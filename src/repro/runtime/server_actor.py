"""The server actor loop shared by every concurrent backend.

One thread owns the :class:`~repro.core.server.ParameterServer` and is the
only thread that ever calls its handlers — the math needs no locks because
the actor loop serializes every message.  The loop is transport-agnostic:
anything exposing the :class:`~repro.runtime.transport.InProcTransport`
surface (``server_inbox`` / ``to_worker`` / ``wake_all_workers``) can feed
it, which is how the thread backend (in-process mailboxes) and the proc
backend (real sockets) execute the identical Algorithm-2 dispatch.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.analysis.lockorder import make_lock
from repro.runtime.messages import (
    CombinedPush,
    CompensationMessage,
    GradientPush,
    PullReply,
    PullRequest,
    Shutdown,
    StatePush,
)
from repro.runtime.session import REQUEST_BYTES, ExperimentSession


class RunControl:
    """Shared run state: the wall clock, the done flag, the first error."""

    def __init__(self) -> None:
        self.done = threading.Event()
        self._start = 0.0
        self._error: Optional[BaseException] = None  # guarded-by: _error_lock
        self._error_lock = make_lock("RunControl._error_lock")

    def start_clock(self) -> None:
        self._start = time.perf_counter()

    def clock(self) -> float:
        """Real seconds since the run started."""
        return time.perf_counter() - self._start

    def fail(self, exc: BaseException) -> None:
        """Record the first failure and unblock everyone."""
        with self._error_lock:
            if self._error is None:
                self._error = exc
        self.done.set()

    @property
    def error(self) -> Optional[BaseException]:
        with self._error_lock:
            return self._error

    def raise_if_failed(self) -> None:
        """Re-raise the first recorded failure with its original traceback.

        The exception object still carries the frames of the worker/server
        thread that raised it; re-raising via ``with_traceback`` keeps them
        at the head of the chain so the crash site stays visible.
        """
        error = self.error
        if error is not None:
            raise error.with_traceback(error.__traceback__)


def server_actor_loop(session: ExperimentSession, transport, ctl: RunControl) -> None:
    """Drain the server inbox, dispatching Algorithm 2 until Shutdown.

    ``transport`` is anything with the InProcTransport surface.  Failures
    propagate to the backend through ``ctl``; workers are woken so nobody
    blocks on a mailbox that will never fill again.
    """
    plan = session.plan
    server = plan.server
    trace = session.trace
    recorder = plan.recorder
    try:
        while True:
            msg = transport.server_inbox.get()
            if isinstance(msg, Shutdown):
                return
            if ctl.done.is_set():
                continue  # budget met: drop straggler traffic
            now = ctl.clock()
            if recorder.enabled:
                recorder.emit(
                    now, "queue_depth", msg.worker,
                    queue="server_inbox", depth=transport.server_inbox.approx_len(),
                )
            if isinstance(msg, PullRequest):
                weights = server.handle_pull(msg.worker, request_time=msg.sent_at)
                trace.record(now, "pull", msg.worker, version=server.version)
                if weights is not None:  # None: queued behind the SSGD barrier
                    transport.to_worker(
                        msg.worker,
                        PullReply(
                            msg.worker,
                            weights=weights,
                            version=server.pull_versions[msg.worker],
                            request_sent_at=msg.sent_at,
                        ),
                        nbytes=plan.model_bytes,
                    )
            elif isinstance(msg, StatePush):
                reply = server.handle_state(msg.state)
                trace.record(now, "state", msg.worker, version=server.version, value=msg.state.loss)
                transport.to_worker(
                    msg.worker, CompensationMessage(msg.worker, reply=reply), nbytes=REQUEST_BYTES
                )
            elif isinstance(msg, (GradientPush, CombinedPush)):
                if isinstance(msg, CombinedPush):
                    advanced, staleness = server.handle_combined(msg.state, msg.payload)
                else:
                    trace.record(now, "gradient", msg.worker, version=server.version)
                    advanced, staleness = server.handle_gradient(msg.payload)
                trace.record(
                    now, "update", msg.worker,
                    version=server.version, staleness=staleness, value=msg.payload.loss,
                )
                # same site, same value as the ClusterTrace update event, so
                # the trace's staleness histogram matches RunResult.staleness
                if recorder.enabled and staleness >= 0:
                    recorder.emit(
                        now, "staleness", msg.worker,
                        value=float(int(staleness)), version=server.version,
                    )
                if advanced:
                    for worker_id, t0 in server.drain_pending_pulls():
                        transport.to_worker(
                            worker_id,
                            PullReply(
                                worker_id,
                                weights=server.params.copy(),
                                version=server.pull_versions[worker_id],
                                request_sent_at=t0,
                            ),
                            nbytes=plan.model_bytes,
                        )
                session.maybe_evaluate(ctl.clock())
                if server.batches_processed >= plan.total_updates:
                    ctl.done.set()
                    transport.wake_all_workers(Shutdown())
            else:
                raise TypeError(f"server actor received {type(msg).__name__}")
    except BaseException as exc:  # propagate to the caller via ctl
        ctl.fail(exc)
        transport.wake_all_workers(Shutdown())
