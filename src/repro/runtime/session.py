"""Backend-agnostic experiment wiring: the ExperimentPlan and its session.

Historically all of this lived inside ``DistributedTrainer.__init__``, which
welded the experiment *specification* (datasets, model replicas, server,
predictors, timing models) to the virtual-time *executor*.  The runtime
split pulls the wiring out so that any :class:`~repro.runtime.backends.
ExecutionBackend` — the event-loop simulator or the real thread runtime —
consumes one :class:`ExperimentPlan` and produces one
:class:`~repro.core.metrics.RunResult`:

* :class:`ExperimentPlan` — everything a backend needs to execute a
  configured run: the datasets, the identically-initialized model replicas,
  the :class:`~repro.core.server.ParameterServer` (with predictors and BN
  strategy attached), the cluster timing models, and the derived byte/
  iteration budgets.  Building a plan performs no training.
* :class:`ExperimentSession` — the clock-agnostic run state layered on a
  plan: the cluster trace, the learning curve, epoch-boundary evaluation,
  and final :class:`~repro.core.metrics.RunResult` assembly.  Backends feed
  it their own notion of "now" (virtual seconds for the simulator, real
  seconds since start for the thread runtime).

Thread-safety contract: a plan is built single-threaded.  During execution,
``server``, ``eval_model`` and the session's trace/curve must only be
touched by whichever thread drives the server (the actor loop in the thread
backend); each worker replica and its loader belong to exactly one worker
thread.  The ``compute``/``network`` models keep independent per-worker RNG
streams, so per-worker sampling is safe from that worker's thread.  The
one cross-thread read — local-BN-mode evaluation borrowing worker 0's
running statistics — synchronizes on that worker's ``model_lock``.

Process-backend contract: replicas need not share an address space at all.
Because every stochastic component re-derives from ``config.seed`` via
name-keyed :class:`~repro.utils.rng.RngTree` streams (never call order),
a child process can rebuild *just its own* replica + loader with
:class:`WorkerRuntime` and arrive at bit-identical initialization — only
weights travel over the wire after that.  The parent's plan keeps its
replicas untouched; its ``server``/session side is driven exactly as in
the thread backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.network import LinkModel, NetworkModel
from repro.cluster.node import ComputeModel, StragglerModel
from repro.cluster.trace import ClusterTrace
from repro.core.algorithms import make_update_rule
from repro.core.batchnorm_sync import make_bn_strategy
from repro.core.config import TrainingConfig
from repro.core.metrics import CurvePoint, RunResult, evaluate_model
from repro.core.predictors import make_loss_predictor, make_step_predictor
from repro.core.server import ParameterServer
from repro.core.worker import DistributedWorker
from repro.data.dataset import ArrayDataset
from repro.data.loader import DataLoader
from repro.data.registry import build_dataset
from repro.nn.module import Module, get_flat_params, set_flat_params
from repro.nn.norm import bn_layers, load_bn_running_stats
from repro.nn.registry import build_model
from repro.obs.recorder import NULL_RECORDER
from repro.optim.lr_scheduler import MultiStepLR
from repro.utils.logging import get_logger
from repro.utils.rng import RngTree
from repro.utils.timer import Timer

logger = get_logger("runtime.session")

#: pull request / small control messages on the wire
REQUEST_BYTES = 256
#: loss + costs envelope of a ``state_m`` push; BN stats added per feature
STATE_OVERHEAD_BYTES = 1024


# ``build_dataset`` / ``build_model`` used to live here as if/elif chains;
# they are now the name-keyed registries of repro.data.registry and
# repro.nn.registry, imported above and re-exported for existing callers.


def build_worker(
    config: TrainingConfig,
    train_set: ArrayDataset,
    num_classes: int,
    worker_id: int,
    rng_tree: Optional[RngTree] = None,
) -> DistributedWorker:
    """One replica + loader for worker ``worker_id``, derived from the seed.

    ``build_model`` reseeds from ``config.seed`` on every call and loader
    streams are keyed by worker name, so any process can rebuild any single
    worker bit-identically without constructing the other ``M - 1``.
    """
    rng_tree = rng_tree if rng_tree is not None else RngTree(config.seed)
    model = build_model(config, train_set.input_shape, num_classes)
    loader = DataLoader(
        train_set,
        config.batch_size,
        shuffle=True,
        seed=rng_tree.child(f"worker-{worker_id}").generator("batches"),
    )
    return DistributedWorker(
        worker_id, model, loader, collect_bn=config.bn_mode != "local"
    )


def _build_cluster_models(
    config: TrainingConfig, rng_tree: RngTree
) -> Tuple[ComputeModel, NetworkModel]:
    """The virtual compute/network timing models one config implies."""
    cl = config.cluster
    sequential = config.algorithm == "sgd"
    compute = ComputeModel(
        config.num_workers,
        mean_batch_time=cl.mean_batch_time,
        heterogeneity=0.0 if sequential else cl.compute_heterogeneity,
        jitter_sigma=0.0 if sequential else cl.compute_jitter,
        straggler=StragglerModel(cl.straggler_probability, cl.straggler_slowdown),
        seed=rng_tree.child("compute"),
    )
    link = LinkModel(
        base_latency=0.0 if sequential else cl.link_latency,
        bandwidth=cl.link_bandwidth,
        jitter_sigma=0.0 if sequential else cl.link_jitter,
    )
    network = NetworkModel(
        config.num_workers,
        link=link,
        heterogeneity=0.0 if sequential else cl.network_heterogeneity,
        seed=rng_tree.child("network"),
    )
    return compute, network


def _state_bytes_for(config: TrainingConfig, feature_sizes: List[int]) -> int:
    """Wire size of one ``state_m`` push for this config's model."""
    bn_payload = sum(2 * s * 4 for s in feature_sizes)
    return STATE_OVERHEAD_BYTES + (bn_payload if config.bn_mode != "local" else 0)


@dataclass
class ExperimentPlan:
    """Everything a backend needs to execute one configured run.

    Build with :meth:`from_config`; a plan is single-use (its server and
    replicas are mutated by execution).
    """

    config: TrainingConfig
    rng_tree: RngTree
    timer: Timer
    train_set: ArrayDataset
    test_set: ArrayDataset
    num_classes: int
    eval_model: Module
    workers: List[DistributedWorker]
    server: ParameterServer
    compute: ComputeModel
    network: NetworkModel
    iters_per_epoch: int
    total_updates: int
    model_bytes: int
    state_bytes: int
    #: optional observer called with each CurvePoint as it is recorded —
    #: how the campaign layer streams progress without owning the backend.
    #: Called from whichever thread drives the server; keep it cheap.
    on_curve_point: Optional[Callable[[CurvePoint], None]] = field(
        default=None, compare=False
    )
    #: trace event sink (NULL_RECORDER = obs off, a no-op).  Backends and
    #: transports emit spans/events here; like ``on_curve_point`` it is
    #: execution wiring, not run identity, so it never enters spec keys.
    recorder: object = field(default=NULL_RECORDER, compare=False)

    @classmethod
    def from_config(
        cls, config: TrainingConfig, build_workers: bool = True
    ) -> "ExperimentPlan":
        """Wire one experiment: datasets, replicas, server, cluster models.

        ``build_workers=False`` skips the ``M`` in-process replicas for
        backends whose workers live elsewhere (proc children rebuild their
        own from the seed) — the server still starts from the identical
        initialization because ``eval_model`` is built the same way.
        """
        rng_tree = RngTree(config.seed)
        timer = Timer()

        train_set, test_set, num_classes = build_dataset(config)
        input_shape = train_set.input_shape

        # model replicas (identical init) ------------------------------------------------
        eval_model = build_model(config, input_shape, num_classes)
        workers: List[DistributedWorker] = [
            build_worker(config, train_set, num_classes, m, rng_tree)
            for m in range(config.num_workers if build_workers else 0)
        ]

        # server --------------------------------------------------------------------------
        iters_per_epoch = max(1, int(np.ceil(len(train_set) / config.batch_size)))
        if config.max_updates is not None:
            total_updates = int(config.max_updates)
        else:
            total_updates = config.epochs * iters_per_epoch

        feature_sizes = [layer.num_features for layer in bn_layers(eval_model)]
        bn_strategy = make_bn_strategy(config.bn_mode, feature_sizes, decay=config.bn_decay)

        loss_predictor = step_predictor = None
        if config.algorithm == "lc-asgd":
            p = config.predictor
            pred_seed = rng_tree.child("predictors").seed
            loss_kwargs = {}
            step_kwargs = {"max_step": max(4 * config.num_workers, 8)}
            if p.loss_variant == "lstm":
                loss_kwargs = dict(
                    hidden_size=p.loss_hidden, window=p.loss_window,
                    lr=p.lr, momentum=p.momentum, train_every=p.train_every, seed=pred_seed,
                )
            elif p.loss_variant == "linear":
                loss_kwargs = dict(window=p.loss_window)
            if p.step_variant == "lstm":
                step_kwargs.update(
                    hidden_size=p.step_hidden, window=p.step_window,
                    lr=p.lr, momentum=p.momentum, train_every=p.train_every, seed=pred_seed,
                )
            loss_predictor = make_loss_predictor(p.loss_variant, **loss_kwargs)
            step_predictor = make_step_predictor(p.step_variant, **step_kwargs)

        rule = make_update_rule(
            config.algorithm,
            num_workers=config.num_workers,
            momentum=config.momentum,
            dc_lambda=config.dc_lambda,
            dc_adaptive=config.dc_adaptive,
        )
        schedule = MultiStepLR(config.base_lr, config.lr_milestones, config.lr_gamma)
        # eval_model is initialized identically to every replica (same seed
        # path), so it seeds the server when no in-process workers exist
        init_params = get_flat_params(workers[0].model if workers else eval_model)
        server = ParameterServer(
            init_params,
            rule,
            schedule,
            iters_per_epoch,
            bn_strategy=bn_strategy,
            loss_predictor=loss_predictor,
            step_predictor=step_predictor,
            lc_lambda=config.lc_lambda,
            compensation=config.compensation,
            timer=timer,
        )
        model_bytes = init_params.size * 4  # float32 wire format
        state_bytes = _state_bytes_for(config, feature_sizes)

        # cluster --------------------------------------------------------------------------
        compute, network = _build_cluster_models(config, rng_tree)

        return cls(
            config=config,
            rng_tree=rng_tree,
            timer=timer,
            train_set=train_set,
            test_set=test_set,
            num_classes=num_classes,
            eval_model=eval_model,
            workers=workers,
            server=server,
            compute=compute,
            network=network,
            iters_per_epoch=iters_per_epoch,
            total_updates=total_updates,
            model_bytes=model_bytes,
            state_bytes=state_bytes,
        )


@dataclass
class WorkerRuntime:
    """The slice of an :class:`ExperimentPlan` one proc-backend child needs.

    A child process re-derives everything below from ``(config, worker_id)``
    alone: the dataset, its own identically-initialized replica + loader,
    the virtual timing models it uses for delay emulation, and the derived
    wire-size/protocol facts.  No weights are shipped at startup — the seed
    is the contract (see the module docstring's process-backend section).
    """

    config: TrainingConfig
    worker_id: int
    worker: DistributedWorker
    compute: ComputeModel
    network: NetworkModel
    model_bytes: int
    state_bytes: int
    #: whether the algorithm runs the state push -> compensation round trip
    requires_compensation: bool

    @classmethod
    def from_config(cls, config: TrainingConfig, worker_id: int) -> "WorkerRuntime":
        """Rebuild worker ``worker_id``'s runtime from the config alone."""
        if not 0 <= worker_id < config.num_workers:
            raise ValueError(
                f"worker_id {worker_id} out of range for num_workers={config.num_workers}"
            )
        rng_tree = RngTree(config.seed)
        train_set, _, num_classes = build_dataset(config)
        worker = build_worker(config, train_set, num_classes, worker_id, rng_tree)
        compute, network = _build_cluster_models(config, rng_tree)
        init_params = get_flat_params(worker.model)
        feature_sizes = [layer.num_features for layer in bn_layers(worker.model)]
        rule = make_update_rule(
            config.algorithm,
            num_workers=config.num_workers,
            momentum=config.momentum,
            dc_lambda=config.dc_lambda,
            dc_adaptive=config.dc_adaptive,
        )
        return cls(
            config=config,
            worker_id=worker_id,
            worker=worker,
            compute=compute,
            network=network,
            model_bytes=init_params.size * 4,
            state_bytes=_state_bytes_for(config, feature_sizes),
            requires_compensation=rule.requires_compensation,
        )


class ExperimentSession:
    """Run state shared by every backend: trace, curve, evaluation, result.

    The session never reads a clock itself; backends pass their "now"
    (virtual or real seconds) into :meth:`maybe_evaluate` and
    :meth:`build_result`, which is what lets one evaluation/result path
    serve both execution models.
    """

    def __init__(self, plan: ExperimentPlan) -> None:
        self.plan = plan
        self.trace = ClusterTrace()
        self.curve: List[CurvePoint] = []
        self._last_eval_epoch = -1
        self._eval_indices = self._pick_eval_indices()
        #: backend override for installing weights into ``eval_model``.
        #: Server-based backends leave this None (the server's params are
        #: the model); the gossip runtime sets it to average the worker
        #: replicas, since decentralized runs have no single authoritative
        #: parameter vector.
        self.eval_sync: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------ #
    def _pick_eval_indices(self) -> Tuple[np.ndarray, np.ndarray]:
        """Fixed train/test evaluation subsets (same across all epochs)."""
        plan = self.plan
        rng = plan.rng_tree.child("eval").generator("subsets")
        n_train = min(plan.config.eval_train_samples, len(plan.train_set))
        n_test = min(plan.config.eval_test_samples, len(plan.test_set))
        train_idx = rng.permutation(len(plan.train_set))[:n_train]
        test_idx = rng.permutation(len(plan.test_set))[:n_test]
        return np.sort(train_idx), np.sort(test_idx)

    def sync_eval_model(self) -> None:
        """Install the server's weights + the appropriate BN stats for eval."""
        plan = self.plan
        if self.eval_sync is not None:
            self.eval_sync()
            return
        set_flat_params(plan.eval_model, plan.server.params)
        if plan.server.bn_strategy is not None:
            load_bn_running_stats(plan.eval_model, plan.server.bn_strategy.current())
        elif plan.workers:  # local mode: sequential SGD's own running
            # statistics.  The lock keeps the snapshot consistent when
            # worker 0 is a live thread mid-forward (thread backend,
            # bn_mode="local", M > 1).  Worker-replica-free plans (proc)
            # only reach local mode when the model has no BN layers — the
            # proc backend rejects the combination otherwise — so there is
            # nothing to borrow.
            with plan.workers[0].model_lock:
                source_layers = bn_layers(plan.workers[0].model)
                stats = [(l.running_mean.copy(), l.running_var.copy()) for l in source_layers]
            load_bn_running_stats(plan.eval_model, stats)

    def evaluate(self, now: float) -> CurvePoint:
        """One evaluation snapshot stamped with the backend's clock."""
        plan = self.plan
        self.sync_eval_model()
        train_idx, test_idx = self._eval_indices
        train_err, train_loss = evaluate_model(
            plan.eval_model, plan.train_set.inputs[train_idx], plan.train_set.targets[train_idx]
        )
        test_err, test_loss = evaluate_model(
            plan.eval_model, plan.test_set.inputs[test_idx], plan.test_set.targets[test_idx]
        )
        return CurvePoint(
            epoch=plan.server.epoch,
            time=now,
            train_error=train_err,
            train_loss=train_loss,
            test_error=test_err,
            test_loss=test_loss,
        )

    def maybe_evaluate(self, now: float) -> None:
        """Evaluate at epoch boundaries / run end, honouring the cadence."""
        plan = self.plan
        epoch = plan.server.epoch
        boundary = (
            plan.server.batches_processed % plan.iters_per_epoch == 0
            and plan.server.batches_processed > 0
        )
        finished = plan.server.batches_processed >= plan.total_updates
        if not boundary and not finished:
            return
        completed_epoch = epoch - 1 if boundary else epoch
        if completed_epoch <= self._last_eval_epoch and not finished:
            return
        if (
            not finished
            and plan.config.eval_every_epochs > 1
            and (completed_epoch + 1) % plan.config.eval_every_epochs != 0
        ):
            self._last_eval_epoch = completed_epoch
            return
        point = self.evaluate(now)
        self._record_point(point)
        self._last_eval_epoch = completed_epoch
        logger.info(
            "algo=%s M=%d epoch=%d t=%.1fs train_err=%.4f test_err=%.4f",
            plan.config.algorithm,
            plan.config.num_workers,
            point.epoch,
            point.time,
            point.train_error,
            point.test_error,
        )

    def record_point(self, now: float) -> CurvePoint:
        """Evaluate immediately and append the point to the curve.

        Backends use this for out-of-band snapshots — e.g. the proc
        backend's final local-BN evaluation after worker 0's running
        statistics arrive — without going through the epoch-cadence
        logic of :meth:`maybe_evaluate`.
        """
        point = self.evaluate(now)
        self._record_point(point)
        return point

    def ensure_final_eval(self, now: float) -> None:
        """Guarantee at least one curve point (degenerate short runs)."""
        if not self.curve:
            self.record_point(now)

    def _record_point(self, point: CurvePoint) -> None:
        """Append to the curve and notify the plan's observer, if any."""
        self.curve.append(point)
        if self.plan.on_curve_point is not None:
            self.plan.on_curve_point(point)

    # ------------------------------------------------------------------ #
    def build_result(
        self,
        clock: float,
        backend: str = "sim",
        wall_time: float = 0.0,
        comm: Optional[Dict[str, float]] = None,
        codec: str = "",
    ) -> RunResult:
        """Assemble the RunResult from the plan + trace + curve.

        ``clock`` is the backend's final "now" (virtual seconds for the
        simulator, real elapsed seconds for the thread runtime);
        ``wall_time`` is always real elapsed seconds.  ``comm`` is the
        backend's unified :class:`~repro.runtime.transport.CommStats`
        accounting, when it keeps one, and ``codec`` the gradient codec
        its transport honored ("" when it moved no bytes).
        """
        plan = self.plan
        # Tables 2-3 report cost *per training iteration*: total section time
        # divided by the number of gradients processed (one iteration = one
        # batch = one server update attempt).
        updates = max(plan.server.batches_processed, 1)
        timers = {
            "loss_pred_ms": plan.timer.total("loss-pred") * 1e3 / updates,
            "step_pred_ms": plan.timer.total("step-pred") * 1e3 / updates,
            "worker_compute_ms": plan.timer.total("worker-compute") * 1e3 / updates,
        }
        obs: Dict = {}
        recorder = plan.recorder
        if getattr(recorder, "enabled", False):
            # fold the wall-clock Timer totals into the trace meta so
            # per-phase cost lives in one place (spans + timer sections)
            recorder.set_timer_totals(plan.timer.totals())
            from repro.obs.hub import MetricsHub

            hub = MetricsHub()
            records = recorder.records()  # decode once, aggregate twice
            hub.ingest(records)
            obs = {
                "enabled": True,
                "records": len(recorder),
                "dropped": recorder.dropped,
                "spans_ms": recorder.phase_totals_ms(records),
                "hub": hub.snapshot(),
            }
        return RunResult(
            algorithm=plan.config.algorithm,
            num_workers=plan.config.num_workers,
            bn_mode=plan.config.bn_mode,
            curve=list(self.curve),
            staleness=self.trace.staleness_stats(),
            loss_prediction_pairs=list(plan.server.loss_prediction_pairs),
            step_prediction_pairs=list(plan.server.step_prediction_pairs),
            finishing_order=self.trace.finishing_order(),
            timers=timers,
            total_updates=plan.server.batches_processed,
            total_virtual_time=clock,
            seed=plan.config.seed,
            backend=backend,
            wall_time=wall_time,
            topology=plan.config.topology if plan.config.algorithm == "ad-psgd" else "",
            codec=codec,
            comm=dict(comm) if comm else {},
            obs=obs,
        )
