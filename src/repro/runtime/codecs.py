"""Gradient codecs: pluggable array encodings for the wire data plane.

A :class:`GradientCodec` turns one logical array into a self-describing
*entry* (small JSON metadata) plus one or more contiguous numpy buffers
ready for vectored socket writes, and :func:`decode_array` turns them
back.  Entries are stateless to decode — a receiver never needs to know
which codec the sender ran, only the entry — which is what lets the
server accept pushes from workers running different codecs and lets the
in-process transports emulate a codec without a socket in the loop.

Three codecs ship (names are the :data:`repro.core.config.COMM_CODECS`
axis, selected per run by ``TrainingConfig.comm_codec``):

``raw32``
    The historical wire format: every array as contiguous float32.  This
    is the identity codec — in-process transports skip it entirely.
``fp16``
    Every array (gradients, weights and BN statistics) as float16 —
    half the wire bytes for ~2^-11 relative rounding error.
``topk``
    Sparsified gradients with error feedback: each push ships the top
    :data:`TOPK_RATIO` fraction of coordinates of ``residual + grad`` as
    an ``(int32 indices, float32 values)`` pair and keeps what it did not
    send in the residual, so dropped mass is retransmitted later rather
    than lost (the classic EF-SGD construction).  Weights and BN
    statistics stay raw: only the gradient direction tolerates sparsity.

Encoding is *role-aware*: callers tag each array as ``grad``, ``weights``
or ``bn`` and the codec decides per role.  Codecs carrying state (topk's
residual) must be instantiated once per sending peer.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

#: array roles a codec may treat differently
ROLE_GRAD = "grad"
ROLE_WEIGHTS = "weights"
ROLE_BN = "bn"

#: fraction of gradient coordinates the topk codec ships per push
TOPK_RATIO = 0.1

#: dtypes an entry part may name — decode allocates from peer-controlled
#: metadata, so this is a whitelist, not a convention
PART_DTYPES = ("float32", "float16", "int32")


class CodecError(ValueError):
    """Unknown codec name or malformed array entry."""


def _shape_size(shape: Sequence[int]) -> int:
    size = 1
    for s in shape:
        size *= int(s)
    return size


def _flat(array: np.ndarray, dtype) -> np.ndarray:
    """Contiguous 1-D wire buffer (handles non-contiguous/scalar inputs)."""
    return np.ascontiguousarray(array, dtype=dtype).reshape(-1)


def _plain_entry(enc: str, array: np.ndarray, dtype_name: str, n: int) -> Dict[str, Any]:
    return {
        "enc": enc,
        "shape": [int(s) for s in np.shape(array)],
        "parts": [{"dtype": dtype_name, "n": int(n)}],
    }


# ---------------------------------------------------------------------- #
# codecs
# ---------------------------------------------------------------------- #
class GradientCodec:
    """Base class: encode one role-tagged array into (entry, buffers)."""

    name: str = ""

    def encode(self, role: str, array: np.ndarray) -> Tuple[Dict[str, Any], List[np.ndarray]]:
        raise NotImplementedError

    def encode_raw(self, array: np.ndarray) -> Tuple[Dict[str, Any], List[np.ndarray]]:
        buf = _flat(array, np.float32)
        return _plain_entry("raw", array, "float32", buf.size), [buf]


class Raw32Codec(GradientCodec):
    """The identity codec: contiguous float32, exactly the v1 wire bytes."""

    name = "raw32"

    def encode(self, role: str, array: np.ndarray):
        return self.encode_raw(array)


class Fp16Codec(GradientCodec):
    """Half precision for every role — the 2x wire-byte ablation arm."""

    name = "fp16"

    def encode(self, role: str, array: np.ndarray):
        buf = _flat(array, np.float16)
        return _plain_entry("f16", array, "float16", buf.size), [buf]


class TopKCodec(GradientCodec):
    """Top-k gradient sparsification with an error-feedback residual.

    Stateful: the residual accumulates unsent coordinates across pushes,
    so one instance must serve exactly one sending peer.  Non-gradient
    roles pass through raw — sparsifying the server's weight broadcast
    would corrupt the model itself, not just one step's direction.
    """

    name = "topk"

    def __init__(self) -> None:
        self._residual: Optional[np.ndarray] = None

    def encode(self, role: str, array: np.ndarray):
        if role != ROLE_GRAD:
            return self.encode_raw(array)
        flat = np.asarray(array, dtype=np.float64).reshape(-1)
        size = flat.size
        if self._residual is None or self._residual.size != size:
            self._residual = np.zeros(size, dtype=np.float64)
        acc = self._residual + flat
        k = 0 if size == 0 else max(1, math.ceil(size * TOPK_RATIO))
        if k >= size:
            idx = np.arange(size, dtype=np.int32)
        else:
            idx = np.sort(
                np.argpartition(np.abs(acc), size - k)[size - k:]
            ).astype(np.int32)
        vals = acc[idx].astype(np.float32)
        # keep even the float32 rounding error: what was not sent (or was
        # sent imprecisely) is error feedback for the next push
        acc[idx] -= vals.astype(np.float64)
        self._residual = acc
        entry = {
            "enc": "topk",
            "shape": [int(s) for s in np.shape(array)],
            "parts": [{"dtype": "int32", "n": int(k)}, {"dtype": "float32", "n": int(k)}],
        }
        return entry, [idx, vals]

    @property
    def residual(self) -> Optional[np.ndarray]:
        """The unsent gradient mass (tests assert it drains)."""
        return self._residual


# ---------------------------------------------------------------------- #
# stateless decode
# ---------------------------------------------------------------------- #
def entry_nbytes(entry: Dict[str, Any]) -> int:
    """Encoded payload bytes an entry occupies on the wire."""
    try:
        return sum(
            np.dtype(part["dtype"]).itemsize * int(part["n"])
            for part in entry["parts"]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"malformed array entry {entry!r}: {exc}")


def decode_array(
    entry: Dict[str, Any], buffers: Sequence[np.ndarray], copy: bool = True
) -> Tuple[np.ndarray, bool]:
    """Rebuild one logical array from its entry and raw part buffers.

    Returns ``(array, owned)``.  ``owned`` is False only for ``raw``
    entries decoded with ``copy=False`` — the array is then a view into
    the caller's receive buffer, valid until that buffer is reused.
    Every other encoding materializes a fresh array.
    """
    enc = entry.get("enc")
    shape = tuple(int(s) for s in entry.get("shape", ()))
    if enc == "raw":
        array = buffers[0].reshape(shape)
        if copy:
            return array.copy(), True
        return array, False
    if enc == "f16":
        return buffers[0].astype(np.float32).reshape(shape), True
    if enc == "topk":
        out = np.zeros(_shape_size(shape), dtype=np.float32)
        idx, vals = buffers[0], buffers[1]
        if idx.size:
            if int(idx.min()) < 0 or int(idx.max()) >= out.size:
                raise CodecError("topk index out of range for shape")
            out[idx] = vals
        return out.reshape(shape), True
    raise CodecError(f"unknown array encoding {enc!r}")


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #
_REGISTRY: Dict[str, Type[GradientCodec]] = {}


def register_codec(cls: Type[GradientCodec], override: bool = False) -> Type[GradientCodec]:
    if not cls.name:
        raise CodecError("codec classes must set a name")
    if cls.name in _REGISTRY and not override:
        raise CodecError(f"codec {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def make_codec(name: str) -> GradientCodec:
    """Fresh codec instance for one sending peer (topk keeps state)."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise CodecError(
            f"unknown comm codec {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        )
    return cls()


def available_codecs() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


register_codec(Raw32Codec)
register_codec(Fp16Codec)
register_codec(TopKCodec)

#: shared identity instance — safe to share because raw32 is stateless
RAW32 = Raw32Codec()
