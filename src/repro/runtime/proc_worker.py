"""Worker child entrypoint for the proc backend.

Run as ``python -m repro.runtime.proc_worker --host H --port P
--worker-id M`` by :class:`~repro.runtime.proc_backend.ProcBackend` —
never by hand.  The child:

1. connects to the parent and authenticates with the token from the
   ``REPRO_PROC_TOKEN`` environment variable;
2. receives the :class:`~repro.core.config.TrainingConfig` as JSON and
   rebuilds *its own* replica, loader and timing models from
   ``(config, worker_id)`` via :class:`~repro.runtime.session.
   WorkerRuntime` — initialization is re-derived from the seed, so only
   weights travel over the wire after this point — and arms the
   negotiated gradient codec (``comm_codec``) on its uplink;
3. runs the paper's cycle — pull -> forward -> state push ->
   [compensation reply] -> backward -> push — free-running against the
   parent's server actor, sleeping out emulated uplink (``time_scale``)
   and compute (``compute_scale``) delays locally;
4. exits 0 on :class:`~repro.runtime.messages.Shutdown` (or on parent
   EOF — an orphaned child never lingers), nonzero on any failure.
   Under ``bn_mode="local"`` worker 0 first streams its BN running
   statistics back (:class:`~repro.runtime.messages.BnStatsPush`) so the
   parent can evaluate with them.

Fault injection (tests only): ``REPRO_PROC_CRASH_WORKER`` /
``REPRO_PROC_CRASH_AFTER`` make the named worker die mid-run with
``os._exit`` after N cycles, exercising the parent's crash detection.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
import time
import traceback
from typing import List, Optional

from repro.core.config import TrainingConfig
from repro.nn.norm import bn_layers
from repro.obs.recorder import NULL_RECORDER, make_recorder
from repro.runtime.codecs import make_codec
from repro.runtime.proc_backend import TOKEN_ENV
from repro.runtime.messages import (
    BnStatsPush,
    CombinedPush,
    GradientPush,
    Message,
    PullRequest,
    Shutdown,
    StatePush,
    TracePush,
)
from repro.runtime.session import REQUEST_BYTES, WorkerRuntime
from repro.runtime.transport import Mailbox
from repro.runtime.wire import (
    PROTOCOL_VERSION,
    ConnectionClosed,
    ControlFrame,
    FrameConnection,
    WireError,
)

#: exit code for a config/build failure already reported over the socket
EXIT_INIT_FAILURE = 2
#: exit code for an injected test crash
EXIT_CRASH_INJECTED = 3

CRASH_WORKER_ENV = "REPRO_PROC_CRASH_WORKER"
CRASH_AFTER_ENV = "REPRO_PROC_CRASH_AFTER"


class WorkerChannel:
    """The child's half of the link: a delay-honouring inbox plus sends.

    A reader thread pumps frames into a :class:`~repro.runtime.transport.
    Mailbox`, converting each frame's ``delay`` stamp into the mailbox's
    ``not_before`` deadline — the same downlink-emulation contract (and the
    same Shutdown-expedites-delivery fix) as the in-process transport.
    Parent EOF is translated into a Shutdown so an orphaned child exits
    instead of blocking forever.
    """

    def __init__(
        self,
        conn: FrameConnection,
        worker_id: int,
        network=None,
        time_scale: float = 0.0,
    ) -> None:
        self._conn = conn
        self.worker_id = int(worker_id)
        self.network = network
        self.time_scale = float(time_scale)
        self.inbox = Mailbox()
        self._reader = threading.Thread(
            target=self._pump, name="repro-proc-channel", daemon=True
        )
        self._reader.start()

    def _pump(self) -> None:
        try:
            while True:
                message, delay = self._conn.recv()
                if not isinstance(message, Message):
                    continue  # stray control frame: handshake is over, ignore
                not_before = time.monotonic() + delay if delay > 0 else 0.0
                self.inbox.put(message, not_before=not_before)
                if isinstance(message, Shutdown):
                    return
        except (ConnectionClosed, WireError, OSError):
            self.inbox.put(Shutdown())  # parent gone: end the loop, don't hang

    def to_server(self, message: Message, nbytes: int = 0) -> None:
        """Send to the parent; the emulated uplink delays this child.

        ``nbytes`` (the logical float32 accounting) rides the frame header
        so the parent's :class:`~repro.runtime.transport.CommStats` charges
        logical and wire bytes from the same receive.
        """
        if self.network is not None and self.time_scale > 0 and nbytes > 0:
            time.sleep(self.time_scale * self.network.transfer_time(self.worker_id, nbytes))
        self._conn.send_message(message, nbytes=nbytes)


def run_worker(
    channel: WorkerChannel,
    runtime: WorkerRuntime,
    compute_scale: float,
    recorder=NULL_RECORDER,
) -> None:
    """The paper's cycle, free-running until the server says Shutdown.

    With an obs recorder attached, each cycle emits per-phase ``span``
    events — wire (pull/compensation waits), compute (forward/backward),
    encode (uplink serialization + send) — on the child's own clock
    (seconds since its first cycle).  Span *durations* are what the
    parent-side attribution sums, so the clock skew between parent and
    child timebases never matters.
    """
    m = runtime.worker_id
    worker = runtime.worker
    config = runtime.config
    crash_after = _crash_after(m)
    start = time.perf_counter()
    obs = recorder.enabled

    def now() -> float:
        return time.perf_counter() - start

    cycles = 0
    while True:
        if crash_after is not None and cycles >= crash_after:
            os._exit(EXIT_CRASH_INJECTED)  # simulate a SIGKILLed/crashed node
        t0 = now()
        channel.to_server(PullRequest(m, sent_at=t0), nbytes=REQUEST_BYTES)
        msg = channel.inbox.get()
        if isinstance(msg, Shutdown):
            return
        if obs:
            recorder.emit(now(), "span", m, phase="wire", dur_ms=(now() - t0) * 1e3)
        # virtual durations drive emulation sleeps only; features are real
        dur_fwd = runtime.compute.duration(m, fraction=1.0 / 3.0)
        dur_bwd = runtime.compute.duration(m, fraction=2.0 / 3.0)
        t_comm = now() - msg.request_sent_at
        worker.load_params(msg.weights, msg.version, t_comm)

        fwd_start = now()
        state = worker.forward()
        if compute_scale > 0:
            time.sleep(compute_scale * dur_fwd)
        if obs:
            recorder.emit(
                now(), "span", m, phase="compute", dur_ms=(now() - fwd_start) * 1e3
            )

        reply = None
        if runtime.requires_compensation:
            t0 = now()
            channel.to_server(StatePush(m, state=state), nbytes=runtime.state_bytes)
            msg = channel.inbox.get()
            if isinstance(msg, Shutdown):
                return
            reply = msg.reply
            if obs:
                recorder.emit(
                    now(), "span", m, phase="wire", dur_ms=(now() - t0) * 1e3
                )

        bwd_start = time.perf_counter()
        payload = worker.backward(
            reply=reply,
            lc_lambda=config.lc_lambda,
            compensation=config.compensation,
            t_comp=0.0,
        )
        if compute_scale > 0:
            time.sleep(compute_scale * dur_bwd)
        worker.last_t_comp = time.perf_counter() - bwd_start
        if obs:
            recorder.emit(
                now(), "span", m, phase="compute",
                dur_ms=(time.perf_counter() - bwd_start) * 1e3,
            )

        push_start = now()
        if runtime.requires_compensation:
            channel.to_server(GradientPush(m, payload=payload), nbytes=runtime.model_bytes)
        else:
            channel.to_server(
                CombinedPush(m, state=state, payload=payload),
                nbytes=runtime.model_bytes + runtime.state_bytes,
            )
        if obs:
            recorder.emit(
                now(), "span", m, phase="encode", dur_ms=(now() - push_start) * 1e3
            )
        cycles += 1


def _stream_local_bn_stats(conn: FrameConnection, runtime: WorkerRuntime) -> None:
    """After Shutdown: ship worker 0's BN running statistics to the parent.

    Under ``bn_mode="local"`` evaluation borrows worker 0's running
    statistics, which live here, in the child.  Streaming them once at
    shutdown is what lets the proc backend evaluate local-BN configs at
    all (it used to reject them up front).  A vanished parent just means
    nobody is evaluating — exit quietly.
    """
    if runtime.worker_id != 0 or runtime.config.bn_mode != "local":
        return
    layers = bn_layers(runtime.worker.model)
    if not layers:
        return
    stats = tuple(
        (layer.running_mean.copy(), layer.running_var.copy()) for layer in layers
    )
    try:
        conn.send_message(BnStatsPush(0, stats=stats))
    except (OSError, WireError):
        pass


def _stream_trace(conn: FrameConnection, worker_id: int, recorder) -> None:
    """After Shutdown: ship this child's trace rows to the parent.

    An obs child *always* sends exactly one :class:`TracePush` — even with
    zero retained rows — so the parent can wait for all ``M`` pushes
    instead of guessing.  Row timestamps are child-clock seconds; only the
    span durations feed cross-process attribution.  A vanished parent just
    means nobody is aggregating — exit quietly.
    """
    if not recorder.enabled:
        return
    try:
        conn.send_message(TracePush(worker_id, rows=tuple(recorder.rows())))
    except (OSError, WireError):
        pass


def _crash_after(worker_id: int) -> Optional[int]:
    """Cycle count after which this worker should fake a crash, if any."""
    target = os.environ.get(CRASH_WORKER_ENV)
    if target is None or int(target) != worker_id:
        return None
    return int(os.environ.get(CRASH_AFTER_ENV, "1"))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.runtime.proc_worker",
        description="proc-backend worker child (spawned by ProcBackend)",
    )
    parser.add_argument("--host", required=True)
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--worker-id", type=int, required=True)
    args = parser.parse_args(argv)
    worker_id = args.worker_id

    sock = socket.create_connection((args.host, args.port), timeout=60.0)
    conn = FrameConnection(sock)
    try:
        conn.send_control(
            ControlFrame(
                "hello", {"worker": worker_id, "token": os.environ.get(TOKEN_ENV, "")}
            ).to_doc()
        )
        doc, _ = conn.recv()
        frame = ControlFrame.from_doc(doc, expect_version=PROTOCOL_VERSION)
        if frame.kind == "reject":
            print(
                f"worker {worker_id}: parent rejected the handshake: "
                f"{frame.body.get('reason', '')}",
                file=sys.stderr,
            )
            return EXIT_INIT_FAILURE
        if frame.kind != "config" or "config" not in frame.body:
            print(f"worker {worker_id}: bad config frame {doc!r}", file=sys.stderr)
            return EXIT_INIT_FAILURE
        body = frame.body
        try:
            config = TrainingConfig.from_dict(body["config"])
            runtime = WorkerRuntime.from_config(config, worker_id)
            # the negotiated uplink codec: gradients (and, under fp16,
            # everything else) leave this child already compressed
            conn.codec = make_codec(body.get("codec", config.comm_codec))
        except BaseException:
            # report the build failure to the parent, then exit nonzero
            conn.send_control(
                ControlFrame("error", {"traceback": traceback.format_exc()}).to_doc()
            )
            return EXIT_INIT_FAILURE
        conn.send_control(ControlFrame("ready", {"worker": worker_id}).to_doc())

        start_doc, _ = conn.recv()
        start = ControlFrame.from_doc(start_doc, expect_version=PROTOCOL_VERSION)
        if start.kind != "start":
            print(f"worker {worker_id}: expected start, got {start_doc!r}", file=sys.stderr)
            return EXIT_INIT_FAILURE
        conn.settimeout(None)

        time_scale = float(body.get("time_scale", 0.0))
        compute_scale = float(body.get("compute_scale", 0.0))
        recorder = make_recorder(
            bool(body.get("obs", False)), run_id=f"proc-worker-{worker_id}"
        )
        channel = WorkerChannel(
            conn,
            worker_id,
            network=runtime.network if time_scale > 0 else None,
            time_scale=time_scale,
        )
        run_worker(channel, runtime, compute_scale, recorder=recorder)
        _stream_local_bn_stats(conn, runtime)
        _stream_trace(conn, worker_id, recorder)
        return 0
    except (ConnectionClosed, BrokenPipeError, ConnectionResetError):
        # the parent vanished (crash or SIGKILL): exit quietly, never linger
        return 0
    except BaseException:
        traceback.print_exc()
        return 1
    finally:
        conn.close()


if __name__ == "__main__":
    sys.exit(main())
