"""Execution backends: one ExperimentPlan in, one RunResult out.

The :class:`ExecutionBackend` protocol is deliberately tiny — ``run(plan)``
— so the *same* servers, workers, update rules and predictors execute under
completely different schedulers:

* ``sim`` — the deterministic virtual-time event loop
  (:class:`~repro.core.trainer.DistributedTrainer`); staleness comes from
  simulated timing, runs reproduce bit-for-bit.
* ``thread`` — the real concurrent runtime
  (:class:`~repro.runtime.thread_backend.ThreadBackend`); staleness comes
  from genuine thread interleaving and the clock is the wall clock.
* ``proc`` — real OS-process workers over sockets
  (:class:`~repro.runtime.proc_backend.ProcBackend`); no shared GIL, so
  compute overlaps genuinely and communication crosses real kernel queues.

Backends register by name so callers (CLI, benches, tests) select one with
a string::

    from repro.runtime import run_experiment
    result = run_experiment(config, backend="thread")
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.core.config import TrainingConfig
from repro.core.metrics import RunResult
from repro.runtime.proc_backend import ProcBackend
from repro.runtime.session import ExperimentPlan
from repro.runtime.thread_backend import ThreadBackend
from repro.utils.registry import Registry


class ExecutionBackend:
    """Protocol every backend implements: execute a plan, return a result."""

    #: registry key; subclasses override
    name = "abstract"

    #: False for backends whose workers rebuild their replicas in another
    #: process (proc): plan builders then skip the M in-process replicas
    needs_worker_replicas = True

    def run(self, plan: ExperimentPlan) -> RunResult:
        """Execute ``plan`` to completion (mutating it) and build the result."""
        raise NotImplementedError


class SimBackend(ExecutionBackend):
    """The virtual-time event-loop executor, wrapped as a backend.

    Delegates to :class:`~repro.core.trainer.DistributedTrainer`, which owns
    the event-scheduling flavor of the worker cycle.  Imported lazily to
    keep ``repro.runtime`` importable without dragging in the trainer (and
    to avoid a cycle: the trainer itself builds plans from this package).
    """

    name = "sim"

    def run(self, plan: ExperimentPlan) -> RunResult:
        if plan.config.algorithm == "ad-psgd":
            # decentralized runs have no server for the event loop to drive;
            # the gossip runtime's deterministic mode is the sim equivalent,
            # so one sweep grid can span server-based and serverless cells
            from repro.runtime.gossip_backend import GossipBackend

            return GossipBackend(mode="sim").run(plan)
        from repro.core.trainer import DistributedTrainer

        return DistributedTrainer(plan.config, plan=plan).run()


BACKENDS: Registry = Registry("backend")


def register_backend(
    name: str, factory: Callable[..., ExecutionBackend], override: bool = False
) -> None:
    """Register a backend factory under ``name``.

    Duplicate names raise unless ``override=True`` — silently replacing
    ``"sim"`` would change what every stored result key means.
    """
    BACKENDS.register(name, factory, override=override)


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return BACKENDS.names()


def get_backend(name: str, **options) -> ExecutionBackend:
    """Instantiate the backend registered under ``name``.

    ``options`` are forwarded to the factory (e.g. ``deterministic=True``
    for the thread backend).
    """
    return BACKENDS.get(name)(**options)


def run_experiment(
    config: TrainingConfig,
    backend: str = "sim",
    obs: bool = False,
    trace_path: str = "",
    **backend_options,
) -> RunResult:
    """Build a fresh plan from ``config`` and execute it on ``backend``.

    ``obs=True`` attaches a live :class:`~repro.obs.recorder.TraceRecorder`
    to the plan (the default is the no-op recorder, so un-instrumented
    runs pay nothing); ``trace_path`` additionally dumps the finished
    trace as JSONL.  Observability is execution wiring, not run identity —
    it never changes results or spec keys.
    """
    executor = get_backend(backend, **backend_options)
    plan = ExperimentPlan.from_config(
        config, build_workers=getattr(executor, "needs_worker_replicas", True)
    )
    if obs or trace_path:
        from repro.obs.recorder import TraceRecorder

        plan.recorder = TraceRecorder(
            run_id=f"{config.algorithm}-M{config.num_workers}-seed{config.seed}-{backend}"
        )
    result = executor.run(plan)
    if trace_path:
        plan.recorder.dump_jsonl(trace_path)
    return result


def _make_gossip_backend(**options) -> ExecutionBackend:
    """Lazy factory: gossip pulls in the topology layer only when used."""
    from repro.runtime.gossip_backend import GossipBackend

    return GossipBackend(**options)


register_backend("sim", SimBackend)
register_backend("thread", ThreadBackend)
register_backend("proc", ProcBackend)
register_backend("gossip", _make_gossip_backend)
