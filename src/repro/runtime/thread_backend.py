"""Real concurrent execution: a thread-based parameter-server runtime.

Topology: one *server actor* thread owns the :class:`~repro.core.server.
ParameterServer` and is the only thread that ever calls its handlers (the
math needs no locks because the actor loop serializes every message), plus
``M`` worker threads each running the paper's cycle —

    pull -> forward -> state push -> [compensation reply] -> backward -> push

over an :class:`~repro.runtime.transport.InProcTransport`.  Staleness here
is *real*: it is however many gradients the server actor applied between a
worker's pull and its push, as decided by genuine thread interleaving (and,
optionally, by emulated link/compute delays).

Two scheduling modes:

* **free-running** (default) — workers race; clocks, ``t_comm``/``t_comp``
  features and staleness all come from the real wall clock.  Two runs with
  the same seed will differ, exactly like a real cluster.
* **deterministic** — a round-robin turnstile serializes worker cycles
  (worker ``m`` runs one full pull-to-push cycle, then hands the turn to
  ``m+1``), and timing features are sampled from the plan's virtual
  compute/network models instead of the clock.  Message order at the server
  is then a pure function of the seed, so two runs produce bit-identical
  parameters — this is what the parity and reproducibility tests rely on.
  The cost is that the serialized schedule pins observed staleness to 0.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.analysis.lockorder import make_condition
from repro.core.metrics import RunResult
from repro.runtime.messages import (
    CombinedPush,
    GradientPush,
    PullRequest,
    Shutdown,
    StatePush,
)
from repro.runtime.server_actor import RunControl, server_actor_loop
from repro.runtime.session import (
    REQUEST_BYTES,
    ExperimentPlan,
    ExperimentSession,
)
from repro.runtime.transport import InProcTransport
from repro.utils.logging import get_logger

logger = get_logger("runtime.thread")


class RoundRobinTurnstile:
    """Grants worker turns in cyclic id order (deterministic mode).

    A worker holds the turn for one full pull-to-push cycle; exited workers
    are retired from the rotation so the remaining ones keep cycling.
    """

    def __init__(self, num_workers: int) -> None:
        self._cond = make_condition("RoundRobinTurnstile._cond")
        self._order = list(range(num_workers))  # guarded-by: _cond
        self._turn = 0  # guarded-by: _cond — index into _order

    def _holder(self) -> Optional[int]:
        return self._order[self._turn] if self._order else None

    def acquire(self, worker: int, done: threading.Event) -> bool:
        """Block until it is ``worker``'s turn; False if the run ended."""
        with self._cond:
            while self._holder() != worker:
                if done.is_set() or worker not in self._order:
                    return False
                self._cond.wait(timeout=0.05)
            return True

    def release(self, worker: int) -> None:
        """Pass the turn to the next worker in the rotation."""
        with self._cond:
            if self._holder() == worker:
                self._turn = (self._turn + 1) % len(self._order)
            self._cond.notify_all()

    def retire(self, worker: int) -> None:
        """Drop an exiting worker from the rotation."""
        with self._cond:
            if worker in self._order:
                idx = self._order.index(worker)
                self._order.remove(worker)
                if self._order and idx < self._turn:
                    self._turn -= 1
                if self._order:
                    self._turn %= len(self._order)
            self._cond.notify_all()


class ThreadBackend:
    """Execute an :class:`ExperimentPlan` on real threads.

    Parameters
    ----------
    deterministic:
        Serialize worker cycles round-robin and use virtual timing features
        so runs reproduce bit-for-bit (see module docstring).
    time_scale:
        Real seconds of emulated link delay per virtual second of the
        plan's network model (0 disables link emulation).  Ignored in
        deterministic mode.
    compute_scale:
        Real seconds slept per virtual second of the plan's compute model,
        emulating heterogeneous/straggling nodes on top of the real math
        (0 disables).  Ignored in deterministic mode.
    timeout:
        Hard cap in real seconds before the run is declared hung.
    """

    name = "thread"

    def __init__(
        self,
        deterministic: bool = False,
        time_scale: float = 0.0,
        compute_scale: float = 0.0,
        timeout: float = 600.0,
    ) -> None:
        if time_scale < 0 or compute_scale < 0:
            raise ValueError("time_scale and compute_scale must be >= 0")
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.deterministic = bool(deterministic)
        self.time_scale = 0.0 if deterministic else float(time_scale)
        self.compute_scale = 0.0 if deterministic else float(compute_scale)
        self.timeout = float(timeout)

    # ------------------------------------------------------------------ #
    def run(self, plan: ExperimentPlan) -> RunResult:
        """Run the plan to completion and return its RunResult."""
        if plan.config.algorithm == "ad-psgd":
            # decentralized runs exchange weights peer-to-peer: delegate to
            # the gossip runtime's concurrent mode (same thread semantics,
            # no server actor), so `--backend thread` covers both families
            from repro.runtime.gossip_backend import GossipBackend

            return GossipBackend(
                mode="thread",
                time_scale=self.time_scale,
                compute_scale=self.compute_scale,
                timeout=self.timeout,
            ).run(plan)
        session = ExperimentSession(plan)
        num_workers = plan.config.num_workers
        ctl = RunControl()
        transport = InProcTransport(
            num_workers,
            network=plan.network if self.time_scale > 0 else None,
            time_scale=self.time_scale,
            codec_name=plan.config.comm_codec,
            recorder=plan.recorder,
            clock=ctl.clock,
        )
        turnstile = RoundRobinTurnstile(num_workers) if self.deterministic else None

        server_thread = threading.Thread(
            target=server_actor_loop,
            args=(session, transport, ctl),
            name="repro-server",
            daemon=True,
        )
        worker_threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(m, session, transport, ctl, turnstile),
                name=f"repro-worker-{m}",
                daemon=True,
            )
            for m in range(num_workers)
        ]

        ctl.start_clock()
        server_thread.start()
        for t in worker_threads:
            t.start()

        if not ctl.done.wait(timeout=self.timeout):
            ctl.fail(RuntimeError(f"thread backend exceeded timeout={self.timeout}s"))
        # wake any worker still blocked on its mailbox (normal completion
        # already sent Shutdowns; duplicates are harmless)
        transport.wake_all_workers(Shutdown())
        for t in worker_threads:
            t.join(timeout=30.0)
        transport.server_inbox.put(Shutdown())
        server_thread.join(timeout=30.0)
        elapsed = ctl.clock()

        ctl.raise_if_failed()
        stuck = [t.name for t in (*worker_threads, server_thread) if t.is_alive()]
        if stuck:
            raise RuntimeError(f"thread backend failed to join threads: {stuck}")

        session.ensure_final_eval(elapsed)
        logger.info(
            "thread backend finished: algo=%s M=%d updates=%d wall=%.2fs",
            plan.config.algorithm, num_workers, plan.server.batches_processed, elapsed,
        )
        return session.build_result(
            elapsed,
            backend=self.name,
            wall_time=elapsed,
            comm=transport.comm_summary(),
            codec=plan.config.comm_codec,
        )

    # ------------------------------------------------------------------ #
    # worker threads (the server actor loop lives in runtime.server_actor,
    # shared verbatim with the proc backend)
    # ------------------------------------------------------------------ #
    def _worker_loop(
        self,
        m: int,
        session: ExperimentSession,
        transport: InProcTransport,
        ctl: RunControl,
        turnstile: Optional[RoundRobinTurnstile],
    ) -> None:
        try:
            while not ctl.done.is_set():
                if turnstile is not None and not turnstile.acquire(m, ctl.done):
                    break
                try:
                    if ctl.done.is_set() or not self._one_cycle(m, session, transport, ctl):
                        break
                finally:
                    if turnstile is not None:
                        turnstile.release(m)
        except BaseException as exc:
            ctl.fail(exc)
        finally:
            if turnstile is not None:
                turnstile.retire(m)

    def _one_cycle(
        self, m: int, session: ExperimentSession, transport: InProcTransport, ctl: RunControl
    ) -> bool:
        """One pull -> forward -> [state/comp] -> backward -> push cycle.

        Returns False when a Shutdown arrived mid-cycle.
        """
        plan = session.plan
        cfg = plan.config
        worker = plan.workers[m]
        inbox = transport.worker_inboxes[m]

        t0 = ctl.clock()
        transport.to_server(m, PullRequest(m, sent_at=t0), nbytes=REQUEST_BYTES)
        msg = inbox.get()
        if isinstance(msg, Shutdown):
            return False

        # Virtual durations: consumed in deterministic per-worker RNG order,
        # used as predictor features in deterministic mode and as emulation
        # sleep budgets in free-running mode.
        dur_fwd = plan.compute.duration(m, fraction=1.0 / 3.0)
        dur_bwd = plan.compute.duration(m, fraction=2.0 / 3.0)
        if self.deterministic:
            t_comm = plan.network.transfer_time(m, REQUEST_BYTES) + plan.network.transfer_time(
                m, plan.model_bytes
            )
        else:
            t_comm = ctl.clock() - msg.request_sent_at
        worker.load_params(msg.weights, msg.version, t_comm)

        # model_lock spans only the mutating math, never a mailbox wait
        # (holding it across the compensation wait would deadlock against
        # an evaluating server actor in local-BN mode)
        with worker.model_lock, plan.timer.section("worker-compute"):
            state = worker.forward()
        self._emulate_compute(dur_fwd)

        reply = None
        if plan.server.rule.requires_compensation:
            transport.to_server(m, StatePush(m, state=state), nbytes=plan.state_bytes)
            msg = inbox.get()
            if isinstance(msg, Shutdown):
                return False
            reply = msg.reply

        bwd_start = time.perf_counter()
        with worker.model_lock, plan.timer.section("worker-compute"):
            payload = worker.backward(
                reply=reply,
                lc_lambda=cfg.lc_lambda,
                compensation=cfg.compensation,
                t_comp=0.0,
            )
        self._emulate_compute(dur_bwd)
        worker.last_t_comp = (
            dur_bwd if self.deterministic else time.perf_counter() - bwd_start
        )

        if plan.server.rule.requires_compensation:
            transport.to_server(m, GradientPush(m, payload=payload), nbytes=plan.model_bytes)
        else:
            transport.to_server(
                m,
                CombinedPush(m, state=state, payload=payload),
                nbytes=plan.model_bytes + plan.state_bytes,
            )
        return True

    def _emulate_compute(self, virtual_seconds: float) -> None:
        """Sleep out scaled virtual compute time (free-running mode only)."""
        if self.compute_scale > 0:
            time.sleep(self.compute_scale * virtual_seconds)
