"""In-process transport for the thread runtime.

One :class:`InProcTransport` owns a server mailbox plus one mailbox per
worker.  Mailboxes are FIFO queues, which gives the same per-connection
ordering guarantee the simulator relies on (a worker's next pull request is
processed after its own gradient push, because the worker enqueues them
from one thread in that order).

Link emulation: when built with a :class:`~repro.cluster.network.
NetworkModel` and a nonzero ``time_scale``, each message is charged
``time_scale * transfer_time(worker, nbytes)`` of *real* delay — worker ->
server messages delay the sending worker thread (its uplink is busy),
server -> worker messages are stamped with a delivery deadline the
receiving worker sleeps out (so the server actor is never blocked by a slow
downlink).  ``time_scale=0`` disables emulation and messages move at memory
speed.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.analysis.lockorder import make_condition, make_lock
from repro.cluster.network import NetworkModel
from repro.obs.recorder import NULL_RECORDER
from repro.runtime.codecs import make_codec
from repro.runtime.messages import Message

if TYPE_CHECKING:  # avoid a hard import cycle with repro.cluster.topology
    from repro.cluster.topology import TopologyModel


class CommStats:
    """Unified byte accounting shared by every transport.

    One instance per run, whatever moves the bytes (in-process queues,
    loopback sockets, gossip pairs), so ``RunResult.comm`` carries the
    same keys on every backend:

    * ``messages`` — payload-bearing sends.
    * ``logical_bytes`` — what the run's model charges (float32 per
      element plus fixed overheads), independent of any codec.
    * ``wire_bytes`` — bytes that (would) cross the medium after the
      codec ran; equals ``logical_bytes`` under ``raw32``.
    * ``server_bytes`` — wire bytes through the hub endpoint (parameter
      server, or the gossip coordinator — zero when serverless traffic
      dominates, which is the scaling bench's point).
    * ``max_worker_bytes`` — the busiest worker endpoint.
    * ``total_bytes`` — every wire byte exactly once.
    """

    def __init__(self, num_workers: int) -> None:
        self._lock = make_lock("CommStats._lock")
        self.messages = 0  # guarded-by: _lock
        self.logical_bytes = 0  # guarded-by: _lock
        self.wire_bytes = 0  # guarded-by: _lock
        self.server_bytes = 0  # guarded-by: _lock
        self.worker_bytes: List[int] = [0] * int(num_workers)  # guarded-by: _lock

    def count(self, worker: int, nbytes: int, wire_nbytes: Optional[int] = None) -> None:
        """One message between the hub endpoint and ``worker``."""
        wire = int(nbytes if wire_nbytes is None else wire_nbytes)
        if nbytes <= 0 and wire <= 0:
            return
        with self._lock:
            self.messages += 1
            self.logical_bytes += int(nbytes)
            self.wire_bytes += wire
            self.server_bytes += wire
            self.worker_bytes[worker] += wire

    def count_peer(
        self, sender: int, receiver: int, nbytes: int, wire_nbytes: Optional[int] = None
    ) -> None:
        """One worker-to-worker message (no hub endpoint involved)."""
        wire = int(nbytes if wire_nbytes is None else wire_nbytes)
        if nbytes <= 0 and wire <= 0:
            return
        with self._lock:
            self.messages += 1
            self.logical_bytes += int(nbytes)
            self.wire_bytes += wire
            self.worker_bytes[sender] += wire
            self.worker_bytes[receiver] += wire

    def summary(self) -> Dict[str, float]:
        """The unified ``RunResult.comm`` payload."""
        with self._lock:
            return {
                "messages": float(self.messages),
                "logical_bytes": float(self.logical_bytes),
                "wire_bytes": float(self.wire_bytes),
                "server_bytes": float(self.server_bytes),
                "max_worker_bytes": float(max(self.worker_bytes, default=0)),
                "total_bytes": float(self.wire_bytes),
            }


class Mailbox:
    """FIFO of (message, delivery deadline) pairs with blocking receive.

    Delivery honours each message's ``not_before`` deadline — that is how
    emulated downlink delay reaches the receiver without blocking the
    sender.  Control messages (``Shutdown.expedite``) cancel every pending
    deadline the moment they are enqueued: once the run is over, a receiver
    must not sleep out an emulated link delay that is queued ahead of the
    news.  Receivers blocked mid-deadline are woken immediately.
    """

    def __init__(self) -> None:
        self._cond = make_condition("Mailbox._cond")
        self._items: Deque[Tuple[Message, float]] = deque()  # guarded-by: _cond
        self._expedited = False  # guarded-by: _cond

    def put(self, message: Message, not_before: float = 0.0) -> None:
        """Enqueue ``message``, deliverable no earlier than ``not_before``."""
        with self._cond:
            if message.expedite:
                self._expedited = True
            self._items.append((message, not_before))
            self._cond.notify_all()

    def get(self, timeout: Optional[float] = None) -> Message:
        """Block for the next message, honouring its delivery deadline.

        Raises ``queue.Empty`` when ``timeout`` (seconds) elapses first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                now = time.monotonic()
                wake: Optional[float] = None
                if self._items:
                    message, not_before = self._items[0]
                    if self._expedited or not_before <= now:
                        self._items.popleft()
                        return message
                    wake = not_before
                if deadline is not None:
                    if now >= deadline:
                        raise queue.Empty
                    wake = deadline if wake is None else min(wake, deadline)
                self._cond.wait(timeout=None if wake is None else max(0.0, wake - now))

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    def approx_len(self) -> int:
        """Lock-free depth for gauges/tracing (``len(deque)`` is GIL-atomic).

        The trace's queue_depth emit runs once per server message; taking
        ``_cond`` there would contend with every producer on the hot path.
        A depth read without the lock can be off by in-flight puts — fine
        for a backpressure gauge, never for logic.
        """
        return len(self._items)


class InProcTransport:
    """Queue-based message fabric emulating per-worker links."""

    def __init__(
        self,
        num_workers: int,
        network: Optional[NetworkModel] = None,
        time_scale: float = 0.0,
        codec_name: str = "raw32",
        recorder=NULL_RECORDER,
        clock=None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if time_scale < 0:
            raise ValueError("time_scale must be >= 0")
        self.num_workers = int(num_workers)
        self.network = network
        self.time_scale = float(time_scale)
        # trace sink + the backend's clock ("now" provider); the recorder
        # never reads time itself, so the no-op default costs one branch
        self.recorder = recorder
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.server_inbox = Mailbox()
        self.worker_inboxes: List[Mailbox] = [Mailbox() for _ in range(self.num_workers)]
        self.stats = CommStats(self.num_workers)
        # Codec emulation: raw32 is the identity — messages pass by
        # reference at full float64 precision, exactly the historical
        # thread-backend behavior (sim/thread parity depends on it).  Any
        # other codec round-trips each message through its lossy encode so
        # thread runs see the same numerics and wire-byte accounting a
        # socket run would.  Uplink codecs are per worker (topk keeps a
        # residual per sender); the downlink never carries gradients, so
        # one stateless instance serves all workers.
        self.codec_name = str(codec_name or "raw32")
        if self.codec_name == "raw32":
            self._uplink_codecs = None
            self._downlink_codec = None
        else:
            self._uplink_codecs = [make_codec(self.codec_name) for _ in range(self.num_workers)]
            self._downlink_codec = make_codec(self.codec_name)

    def comm_summary(self) -> Dict[str, float]:
        """The unified :class:`CommStats` keys."""
        return self.stats.summary()

    # ------------------------------------------------------------------ #
    def _link_delay(self, worker: int, nbytes: int) -> float:
        """Real seconds of emulated link occupancy for this message."""
        if self.network is None or self.time_scale == 0.0 or nbytes <= 0:
            return 0.0
        return self.time_scale * self.network.transfer_time(worker, nbytes)

    def to_server(self, worker: int, message: Message, nbytes: int = 0) -> None:
        """Worker -> server send; the emulated uplink delays the caller."""
        wire = nbytes
        if self._uplink_codecs is not None:
            from repro.runtime.wire import codec_roundtrip_message

            message, wire = codec_roundtrip_message(
                message, self._uplink_codecs[worker], nbytes
            )
        self.stats.count(worker, nbytes, wire)
        if self.recorder.enabled and nbytes > 0:
            self.recorder.emit(
                self.clock(), "wire_bytes", worker,
                direction="up", logical=int(nbytes), wire=int(wire),
            )
        # a compressed message occupies the emulated uplink for its wire
        # footprint, not its logical one — that is the ablation's point
        delay = self._link_delay(worker, wire)
        if delay > 0:
            time.sleep(delay)
        self.server_inbox.put(message)

    def to_worker(self, worker: int, message: Message, nbytes: int = 0) -> None:
        """Server -> worker send; the emulated downlink delays delivery.

        Never sleeps in the caller: the server actor must keep draining its
        inbox, so the delay is carried as a deadline the receiver sleeps out.
        """
        wire = nbytes
        if self._downlink_codec is not None:
            from repro.runtime.wire import codec_roundtrip_message

            message, wire = codec_roundtrip_message(message, self._downlink_codec, nbytes)
        self.stats.count(worker, nbytes, wire)
        if self.recorder.enabled and nbytes > 0:
            self.recorder.emit(
                self.clock(), "wire_bytes", worker,
                direction="down", logical=int(nbytes), wire=int(wire),
            )
        delay = self._link_delay(worker, wire)
        not_before = time.monotonic() + delay if delay > 0 else 0.0
        self.worker_inboxes[worker].put(message, not_before=not_before)

    def wake_all_workers(self, message: Message) -> None:
        """Deliver ``message`` to every worker mailbox immediately."""
        for inbox in self.worker_inboxes:
            inbox.put(message)


class GossipTransport:
    """Peer-to-peer message fabric for the decentralized (gossip) runtime.

    Same mailbox machinery as :class:`InProcTransport`, different wiring:
    there is no server endpoint.  Each worker owns a *peer* inbox (where a
    matched partner's :class:`~repro.runtime.messages.WeightExchange`
    lands) and a lightweight *coordinator* inbox collects per-step
    :class:`~repro.runtime.messages.GossipReport` control messages — the
    coordinator does bookkeeping only (trace/curve/eval), no parameters
    ever flow through it, which is the architectural point the scaling
    bench measures.

    Link emulation charges ``time_scale * edge transfer_time`` of real
    delay in the *sender* for peer sends (its uplink is busy shipping the
    weights), using the topology's per-edge link models.
    """

    def __init__(
        self,
        num_workers: int,
        topology: Optional["TopologyModel"] = None,
        time_scale: float = 0.0,
        recorder=NULL_RECORDER,
        clock=None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if time_scale < 0:
            raise ValueError("time_scale must be >= 0")
        self.num_workers = int(num_workers)
        self.topology = topology
        self.time_scale = float(time_scale)
        self.recorder = recorder
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.coordinator_inbox = Mailbox()
        self.peer_inboxes: List[Mailbox] = [Mailbox() for _ in range(self.num_workers)]
        # the coordinator is this architecture's hub endpoint: CommStats'
        # server_bytes counts its (control-only) traffic
        self.stats = CommStats(self.num_workers)

    # ------------------------------------------------------------------ #
    def to_peer(self, sender: int, receiver: int, message: Message, nbytes: int = 0) -> None:
        """Worker -> worker send; the emulated uplink delays the caller."""
        self.stats.count_peer(sender, receiver, nbytes)
        if self.recorder.enabled and nbytes > 0:
            self.recorder.emit(
                self.clock(), "wire_bytes", sender,
                direction="peer", logical=int(nbytes), wire=int(nbytes),
            )
        if self.topology is not None and self.time_scale > 0 and nbytes > 0:
            time.sleep(self.time_scale * self.topology.transfer_time(sender, receiver, nbytes))
        self.peer_inboxes[receiver].put(message)

    def to_coordinator(self, worker: int, message: Message, nbytes: int = 0) -> None:
        """Worker -> coordinator control send (reports, never parameters)."""
        self.stats.count(worker, nbytes)
        self.coordinator_inbox.put(message)

    def wake_all_workers(self, message: Message) -> None:
        """Deliver ``message`` to every peer mailbox immediately."""
        for inbox in self.peer_inboxes:
            inbox.put(message)

    def comm_summary(self) -> Dict[str, float]:
        """The unified :class:`CommStats` keys (busiest endpoint is a worker)."""
        return self.stats.summary()
