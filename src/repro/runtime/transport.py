"""In-process transport for the thread runtime.

One :class:`InProcTransport` owns a server mailbox plus one mailbox per
worker.  Mailboxes are FIFO queues, which gives the same per-connection
ordering guarantee the simulator relies on (a worker's next pull request is
processed after its own gradient push, because the worker enqueues them
from one thread in that order).

Link emulation: when built with a :class:`~repro.cluster.network.
NetworkModel` and a nonzero ``time_scale``, each message is charged
``time_scale * transfer_time(worker, nbytes)`` of *real* delay — worker ->
server messages delay the sending worker thread (its uplink is busy),
server -> worker messages are stamped with a delivery deadline the
receiving worker sleeps out (so the server actor is never blocked by a slow
downlink).  ``time_scale=0`` disables emulation and messages move at memory
speed.
"""

from __future__ import annotations

import queue
import time
from typing import List, Optional, Tuple

from repro.cluster.network import NetworkModel
from repro.runtime.messages import Message


class Mailbox:
    """FIFO of (message, delivery deadline) pairs with blocking receive."""

    def __init__(self) -> None:
        self._queue: "queue.Queue[Tuple[Message, float]]" = queue.Queue()

    def put(self, message: Message, not_before: float = 0.0) -> None:
        """Enqueue ``message``, deliverable no earlier than ``not_before``."""
        self._queue.put((message, not_before))

    def get(self, timeout: Optional[float] = None) -> Message:
        """Block for the next message, honouring its delivery deadline.

        Raises ``queue.Empty`` when ``timeout`` (seconds) elapses first.
        """
        message, not_before = self._queue.get(timeout=timeout)
        remaining = not_before - time.monotonic()
        if remaining > 0:
            time.sleep(remaining)
        return message

    def __len__(self) -> int:
        return self._queue.qsize()


class InProcTransport:
    """Queue-based message fabric emulating per-worker links."""

    def __init__(
        self,
        num_workers: int,
        network: Optional[NetworkModel] = None,
        time_scale: float = 0.0,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if time_scale < 0:
            raise ValueError("time_scale must be >= 0")
        self.num_workers = int(num_workers)
        self.network = network
        self.time_scale = float(time_scale)
        self.server_inbox = Mailbox()
        self.worker_inboxes: List[Mailbox] = [Mailbox() for _ in range(self.num_workers)]

    # ------------------------------------------------------------------ #
    def _link_delay(self, worker: int, nbytes: int) -> float:
        """Real seconds of emulated link occupancy for this message."""
        if self.network is None or self.time_scale == 0.0 or nbytes <= 0:
            return 0.0
        return self.time_scale * self.network.transfer_time(worker, nbytes)

    def to_server(self, worker: int, message: Message, nbytes: int = 0) -> None:
        """Worker -> server send; the emulated uplink delays the caller."""
        delay = self._link_delay(worker, nbytes)
        if delay > 0:
            time.sleep(delay)
        self.server_inbox.put(message)

    def to_worker(self, worker: int, message: Message, nbytes: int = 0) -> None:
        """Server -> worker send; the emulated downlink delays delivery.

        Never sleeps in the caller: the server actor must keep draining its
        inbox, so the delay is carried as a deadline the receiver sleeps out.
        """
        delay = self._link_delay(worker, nbytes)
        not_before = time.monotonic() + delay if delay > 0 else 0.0
        self.worker_inboxes[worker].put(message, not_before=not_before)

    def wake_all_workers(self, message: Message) -> None:
        """Deliver ``message`` to every worker mailbox immediately."""
        for inbox in self.worker_inboxes:
            inbox.put(message)
