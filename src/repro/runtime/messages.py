"""Typed message envelopes exchanged over a runtime Transport.

These mirror the seven arrows of the worker cycle documented in
:mod:`repro.core.trainer`: pull request, pull reply (weights down),
``state_m`` push, compensation reply, gradient push — plus the fused
state+gradient arrival the non-LC algorithms use, and a Shutdown sentinel
that wakes any thread blocked on a mailbox.

Envelope fields carry only what crosses the wire; the mathematics stays in
:class:`~repro.core.state.WorkerState` / :class:`~repro.core.state.
GradientPayload` / :class:`~repro.core.state.CompensationReply`, shared
verbatim with the simulator so both backends speak one protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.state import CompensationReply, GradientPayload, WorkerState


@dataclass(frozen=True)
class Message:
    """Base envelope: every message names its worker endpoint."""

    worker: int

    #: control messages cancel pending delivery deadlines in a Mailbox:
    #: once the run is over, nobody should wait out an emulated link delay
    #: just to learn about it (class attribute, not a wire field)
    expedite = False


@dataclass(frozen=True)
class PullRequest(Message):
    """Worker -> server: ask for the current weights (Algorithm 2, l. 11)."""

    sent_at: float = 0.0  # backend clock when the request left the worker


@dataclass(frozen=True)
class PullReply(Message):
    """Server -> worker: the weights at ``version`` (Algorithm 2, l. 12)."""

    weights: Optional[np.ndarray] = None
    version: int = -1
    request_sent_at: float = 0.0  # echoed so the worker can measure t_comm


@dataclass(frozen=True)
class StatePush(Message):
    """Worker -> server: the ``state_m`` record (Algorithm 1, l. 8)."""

    state: Optional[WorkerState] = None


@dataclass(frozen=True)
class CompensationMessage(Message):
    """Server -> worker: the ``l_delay`` reply (Algorithm 2, l. 5)."""

    reply: Optional[CompensationReply] = None


@dataclass(frozen=True)
class GradientPush(Message):
    """Worker -> server: the compensated gradient (Algorithm 1, l. 12)."""

    payload: Optional[GradientPayload] = None


@dataclass(frozen=True)
class CombinedPush(Message):
    """Worker -> server: fused state+gradient for the non-LC algorithms."""

    state: Optional[WorkerState] = None
    payload: Optional[GradientPayload] = None


@dataclass(frozen=True)
class BnStatsPush(Message):
    """Worker -> parent at shutdown: the replica's BN *running* statistics.

    Only the proc backend uses this, and only under ``bn_mode="local"``:
    evaluation borrows worker 0's running statistics, which live in a
    child's address space there.  The child streams them once, right
    after it receives Shutdown, so the parent can install them into the
    eval model before the final evaluation.  ``stats`` is one
    ``(running_mean, running_var)`` pair per BN layer, in
    :func:`~repro.nn.norm.bn_layers` order.
    """

    stats: tuple = ()


@dataclass(frozen=True)
class TracePush(Message):
    """Worker -> parent at shutdown: the child's retained trace rows.

    Only instrumented (``obs on``) proc runs send this: the child's
    :class:`~repro.obs.recorder.TraceRecorder` lives in its own address
    space, so after Shutdown the child ships its encoded wire rows
    (:func:`~repro.obs.events.encode_record` format) once, and the parent
    merges them into the plan's recorder before the result is built.
    ``rows`` is a tuple of ``[t, kind, worker, *fields]`` lists; each is
    validated against the event registry on ingestion, never trusted.
    An obs child always sends one push — even empty — so the parent can
    wait for all ``M`` of them deterministically.
    """

    rows: tuple = ()


@dataclass(frozen=True)
class WeightExchange(Message):
    """Worker -> worker: one side of an AD-PSGD pairwise average.

    ``worker`` is the *sender*.  Both members of a matched pair send their
    flat parameter vector (plus BN running statistics, so the averaged
    model evaluates consistently) before either blocks on receiving the
    partner's — the send-then-receive ordering that, together with atomic
    pairing, keeps gossip deadlock-free.  ``step`` is the sender's local
    step count, used for the staleness/version-gap accounting.
    """

    weights: Optional[np.ndarray] = None
    bn_stats: tuple = ()
    step: int = 0


@dataclass(frozen=True)
class GossipReport(Message):
    """Worker -> coordinator: one local step finished (gossip runtime).

    The coordinator thread owns the trace/curve/evaluation exactly like
    the server actor does for the centralized backends; workers report
    each completed local step (with its loss and staleness) instead of
    pushing gradients.
    """

    loss: float = 0.0
    staleness: int = 0
    local_step: int = 0


@dataclass(frozen=True)
class Shutdown(Message):
    """Either direction: unblock the receiver and end its loop."""

    worker: int = -1
    expedite = True
