"""repro.runtime — pluggable execution backends for the reproduction.

The paper's claims are about wall-clock behavior under genuine asynchrony;
this package provides the execution layer that makes those runnable two
ways from one experiment specification:

* :mod:`repro.runtime.session` — :class:`ExperimentPlan` (backend-agnostic
  wiring of datasets, replicas, server, predictors and timing models) and
  :class:`ExperimentSession` (clock-agnostic trace/curve/eval/result state).
* :mod:`repro.runtime.backends` — the :class:`ExecutionBackend` protocol,
  the name registry, :class:`SimBackend` (virtual-time event loop) and
  :func:`run_experiment`.
* :mod:`repro.runtime.thread_backend` — :class:`ThreadBackend`: a server
  actor thread plus N worker threads with real wall-clock staleness, an
  optional deterministic round-robin mode, and emulated link/compute
  delays.
* :mod:`repro.runtime.proc_backend` / :mod:`repro.runtime.proc_worker` —
  :class:`ProcBackend`: the same server actor, but every worker is a real
  OS process speaking the :mod:`repro.runtime.wire` protocol over a
  loopback socket — genuinely independent compute, no shared GIL.
* :mod:`repro.runtime.gossip_backend` — :class:`GossipBackend`: the
  decentralized AD-PSGD runtime.  No server at all: workers average
  weights pairwise over a peer topology, in a deterministic virtual-time
  mode and a genuinely concurrent thread mode (atomic pairing via
  :class:`PairingBoard` keeps the averaging deadlock-free).
* :mod:`repro.runtime.messages` / :mod:`repro.runtime.transport` /
  :mod:`repro.runtime.wire` / :mod:`repro.runtime.codecs` — the typed
  envelopes, the in-process delay-injecting message fabric with unified
  :class:`CommStats` byte accounting, the zero-copy socket framing, and
  the pluggable gradient codecs (raw32/fp16/topk) every byte-moving
  backend negotiates via ``TrainingConfig.comm_codec``.
* :mod:`repro.runtime.server_actor` — the Algorithm-2 dispatch loop both
  concurrent backends share.

Quickstart::

    from repro.core import TrainingConfig
    from repro.runtime import run_experiment

    cfg = TrainingConfig.small_cifar(algorithm="lc-asgd", num_workers=8)
    result = run_experiment(cfg, backend="thread")
    print(result.wall_time, result.staleness["mean"])
"""

from repro.runtime.backends import (
    ExecutionBackend,
    SimBackend,
    available_backends,
    get_backend,
    register_backend,
    run_experiment,
)
from repro.runtime.codecs import GradientCodec, available_codecs, make_codec
from repro.runtime.gossip_backend import GossipBackend, PairingBoard
from repro.runtime.proc_backend import ProcBackend, SocketTransport
from repro.runtime.server_actor import RunControl, server_actor_loop
from repro.runtime.session import (
    ExperimentPlan,
    ExperimentSession,
    WorkerRuntime,
    build_dataset,
    build_model,
)
from repro.runtime.thread_backend import RoundRobinTurnstile, ThreadBackend
from repro.runtime.transport import CommStats, GossipTransport, InProcTransport, Mailbox

__all__ = [
    "CommStats",
    "GradientCodec",
    "available_codecs",
    "make_codec",
    "ExecutionBackend",
    "SimBackend",
    "ThreadBackend",
    "ProcBackend",
    "GossipBackend",
    "PairingBoard",
    "GossipTransport",
    "SocketTransport",
    "RoundRobinTurnstile",
    "RunControl",
    "server_actor_loop",
    "ExperimentPlan",
    "ExperimentSession",
    "WorkerRuntime",
    "InProcTransport",
    "Mailbox",
    "available_backends",
    "get_backend",
    "register_backend",
    "run_experiment",
    "build_dataset",
    "build_model",
]
