"""Pooling modules."""

from __future__ import annotations

from typing import Optional

from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class MaxPool2d(Module):
    """Max pooling over square windows."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def extra_repr(self) -> str:
        return f"k={self.kernel_size}, stride={self.stride}"


class AvgPool2d(Module):
    """Average pooling over square windows."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def extra_repr(self) -> str:
        return f"k={self.kernel_size}, stride={self.stride}"


class GlobalAvgPool2d(Module):
    """Spatial mean: (N, C, H, W) -> (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)
