"""Weight initializers (He/Kaiming, Xavier/Glorot, uniform fan-based)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return (fan_in, fan_out) for dense or conv weight shapes."""
    if len(shape) == 2:  # (out, in)
        return shape[1], shape[0]
    if len(shape) == 4:  # (out_c, in_c, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    if len(shape) == 1:
        return shape[0], shape[0]
    raise ValueError(f"cannot infer fans for shape {shape}")


def he_normal(shape, rng: np.random.Generator, dtype=np.float32) -> np.ndarray:
    """Kaiming-normal init (gain for ReLU)."""
    fan_in, _ = _fans(tuple(shape))
    std = np.sqrt(2.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(dtype)


def he_uniform(shape, rng: np.random.Generator, dtype=np.float32) -> np.ndarray:
    """Kaiming-uniform init."""
    fan_in, _ = _fans(tuple(shape))
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, shape).astype(dtype)


def xavier_normal(shape, rng: np.random.Generator, dtype=np.float32) -> np.ndarray:
    """Glorot-normal init (gain for tanh/sigmoid nets)."""
    fan_in, fan_out = _fans(tuple(shape))
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return (rng.standard_normal(shape) * std).astype(dtype)


def xavier_uniform(shape, rng: np.random.Generator, dtype=np.float32) -> np.ndarray:
    """Glorot-uniform init."""
    fan_in, fan_out = _fans(tuple(shape))
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, shape).astype(dtype)


def lecun_uniform(shape, rng: np.random.Generator, dtype=np.float32) -> np.ndarray:
    """LeCun-uniform init (PyTorch's default for Linear/LSTM)."""
    fan_in, _ = _fans(tuple(shape))
    bound = 1.0 / np.sqrt(fan_in)
    return rng.uniform(-bound, bound, shape).astype(dtype)


_INITIALIZERS = {
    "he_normal": he_normal,
    "he_uniform": he_uniform,
    "xavier_normal": xavier_normal,
    "xavier_uniform": xavier_uniform,
    "lecun_uniform": lecun_uniform,
}


def get_initializer(name: str):
    """Look up an initializer by name."""
    if name not in _INITIALIZERS:
        raise ValueError(f"unknown initializer {name!r}; options: {sorted(_INITIALIZERS)}")
    return _INITIALIZERS[name]
