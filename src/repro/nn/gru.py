"""GRU cells and stacked GRU layers.

An alternative recurrent backbone for the server-side predictors: GRUs are
~25% cheaper per step than LSTMs (3 gates vs 4) at similar accuracy on
short windows, which matters for the parameter-server overhead budget
(paper Tables 2-3).  Drop-in shape-compatible with :class:`repro.nn.LSTM`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn import init as init_mod
from repro.nn.container import ModuleList
from repro.nn.module import Module, Parameter
from repro.tensor import stack, zeros
from repro.tensor.tensor import Tensor
from repro.utils.rng import fallback_rng


class GRUCell(Module):
    """A single GRU cell with fused reset/update projections.

    Gate order in the fused weights: ``[reset, update]``; the candidate
    projection is kept separate because it sees the reset-scaled hidden
    state.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("input_size and hidden_size must be positive")
        self.input_size = input_size
        self.hidden_size = hidden_size
        gen = rng if rng is not None else fallback_rng()
        self.w_ih = Parameter(init_mod.lecun_uniform((2 * hidden_size, input_size), gen))
        self.w_hh = Parameter(init_mod.lecun_uniform((2 * hidden_size, hidden_size), gen))
        self.bias = Parameter(np.zeros(2 * hidden_size, dtype=np.float32))
        self.w_in = Parameter(init_mod.lecun_uniform((hidden_size, input_size), gen))
        self.w_hn = Parameter(init_mod.lecun_uniform((hidden_size, hidden_size), gen))
        self.bias_n = Parameter(np.zeros(hidden_size, dtype=np.float32))

    def forward(self, x: Tensor, h_prev: Tensor) -> Tensor:
        """One step: ``x`` (N, input_size), ``h_prev`` (N, H) -> new hidden."""
        gates = x @ self.w_ih.transpose() + h_prev @ self.w_hh.transpose() + self.bias
        hs = self.hidden_size
        r_gate = gates[:, 0:hs].sigmoid()
        z_gate = gates[:, hs : 2 * hs].sigmoid()
        candidate = (
            x @ self.w_in.transpose() + (r_gate * h_prev) @ self.w_hn.transpose() + self.bias_n
        ).tanh()
        return (1.0 - z_gate) * candidate + z_gate * h_prev

    def initial_state(self, batch_size: int) -> Tensor:
        """Zero hidden state for ``batch_size`` sequences."""
        return zeros(batch_size, self.hidden_size)

    def extra_repr(self) -> str:
        return f"in={self.input_size}, hidden={self.hidden_size}"


class GRU(Module):
    """Stacked GRU over batch-first sequences (N, T, input_size)."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_layers <= 0:
            raise ValueError("num_layers must be positive")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        gen = rng if rng is not None else fallback_rng()
        cells: List[GRUCell] = []
        for layer in range(num_layers):
            cells.append(GRUCell(input_size if layer == 0 else hidden_size, hidden_size, rng=gen))
        self.cells = ModuleList(cells)

    def forward(
        self,
        x: Tensor,
        state: Optional[List[Tensor]] = None,
    ) -> Tuple[Tensor, List[Tensor]]:
        """Run the stack; returns (outputs (N, T, H), final per-layer states)."""
        if x.data.ndim != 3:
            raise ValueError(f"GRU expects (N, T, D) input, got shape {x.shape}")
        batch, steps, _ = x.data.shape
        if state is None:
            state = [cell.initial_state(batch) for cell in self.cells]
        if len(state) != self.num_layers:
            raise ValueError(f"state has {len(state)} layers, GRU has {self.num_layers}")
        states = list(state)
        outputs: List[Tensor] = []
        for t in range(steps):
            inp = x[:, t, :]
            for layer, cell in enumerate(self.cells):
                states[layer] = cell(inp, states[layer])
                inp = states[layer]
            outputs.append(inp)
        return stack(outputs, axis=1), states

    def extra_repr(self) -> str:
        return f"in={self.input_size}, hidden={self.hidden_size}, layers={self.num_layers}"
