"""Stateless activation modules."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor.tensor import Tensor


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = float(negative_slope)

    def forward(self, x: Tensor) -> Tensor:
        return x.relu() - (-x).relu() * self.negative_slope

    def extra_repr(self) -> str:
        return f"negative_slope={self.negative_slope}"


class GELU(Module):
    """Gaussian error linear unit (tanh approximation)."""

    _C = float(np.sqrt(2.0 / np.pi))

    def forward(self, x: Tensor) -> Tensor:
        inner = (x + (x * x * x) * 0.044715) * self._C
        return x * (inner.tanh() + 1.0) * 0.5
