"""Fully-connected layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init as init_mod
from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor
from repro.utils.rng import fallback_rng


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with weight shape ``(out, in)``.

    Parameters
    ----------
    in_features, out_features:
        Input / output width.
    bias:
        Whether to learn an additive bias.
    init:
        Initializer name (see :mod:`repro.nn.init`).
    rng:
        Generator used for initialization (fresh default_rng if omitted).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        init: str = "he_normal",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        gen = rng if rng is not None else fallback_rng()
        initializer = init_mod.get_initializer(init)
        self.weight = Parameter(initializer((out_features, in_features), gen))
        if bias:
            self.bias: Optional[Parameter] = Parameter(np.zeros(out_features, dtype=np.float32))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        """Apply the affine map to ``(N, in_features)`` input."""
        return F.linear(x, self.weight, self.bias)

    def extra_repr(self) -> str:
        return f"in={self.in_features}, out={self.out_features}, bias={self.bias is not None}"
