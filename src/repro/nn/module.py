"""Module/Parameter system plus flat-parameter-vector exchange helpers.

The parameter server ships the global model as one flat float64 vector
(:func:`get_flat_params` / :func:`set_flat_params`); workers push gradients
the same way (:func:`get_flat_grads`).  Flattening order is the deterministic
``named_parameters()`` traversal order, so every replica agrees on the
layout.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (``requires_grad=True`` by default)."""

    def __init__(self, data, requires_grad: bool = True) -> None:
        super().__init__(np.asarray(data.data if isinstance(data, Tensor) else data), requires_grad=requires_grad)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter`, :class:`Module` and (via
    :meth:`register_buffer`) NumPy-array buffers as attributes; registration
    is automatic and ordered, which fixes the flat-vector layout.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # -------------------------------------------------------------- #
    # registration
    # -------------------------------------------------------------- #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._modules.pop(name, None)
            self._buffers.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
            self._buffers.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable persistent array (e.g. BN running stats)."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        """Overwrite a registered buffer in place of the registration slot."""
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r}")
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    # -------------------------------------------------------------- #
    # traversal
    # -------------------------------------------------------------- #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` in deterministic order."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        """All parameters in deterministic order."""
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(dotted_name, buffer)`` in deterministic order."""
        for name in self._buffers:
            yield (f"{prefix}{name}", getattr(self, name))
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` including self (empty name)."""
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield all submodules including self."""
        for _, module in self.named_modules():
            yield module

    # -------------------------------------------------------------- #
    # train / eval / grads
    # -------------------------------------------------------------- #
    def train(self, mode: bool = True) -> "Module":
        """Switch the module tree into training (or eval) mode."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        """Switch the module tree into evaluation mode."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear accumulated gradients on every parameter."""
        for param in self.parameters():
            param.grad = None

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # -------------------------------------------------------------- #
    # state dict
    # -------------------------------------------------------------- #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Parameters + buffers as a flat dict of copied arrays."""
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buffer in self.named_buffers():
            state[f"buffer:{name}"] = np.asarray(buffer).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load a dict produced by :meth:`state_dict` (strict)."""
        params = dict(self.named_parameters())
        buffer_owners: Dict[str, Tuple[Module, str]] = {}
        for mod_name, module in self.named_modules():
            for buf_name in module._buffers:
                dotted = f"{mod_name}.{buf_name}" if mod_name else buf_name
                buffer_owners[dotted] = (module, buf_name)
        for key, value in state.items():
            if key.startswith("buffer:"):
                dotted = key[len("buffer:") :]
                if dotted not in buffer_owners:
                    raise KeyError(f"unexpected buffer {dotted!r}")
                owner, buf_name = buffer_owners[dotted]
                owner.set_buffer(buf_name, value.copy())
            else:
                if key not in params:
                    raise KeyError(f"unexpected parameter {key!r}")
                if params[key].data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {key!r}: "
                        f"{params[key].data.shape} vs {value.shape}"
                    )
                params[key].data = value.astype(params[key].data.dtype).copy()

    # -------------------------------------------------------------- #
    # call protocol
    # -------------------------------------------------------------- #
    def forward(self, *args, **kwargs):
        """Compute the module output; must be overridden."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines = [f"  ({name}): {module!r}".replace("\n", "\n  ") for name, module in self._modules.items()]
        body = "\n".join(child_lines)
        head = self.extra_repr()
        if body:
            return f"{type(self).__name__}({head}\n{body}\n)"
        return f"{type(self).__name__}({head})"

    def extra_repr(self) -> str:
        """One-line summary inserted into ``repr``; override in subclasses."""
        return ""


# ---------------------------------------------------------------------- #
# flat parameter-vector exchange (server <-> worker payloads)
# ---------------------------------------------------------------------- #
def get_flat_params(module: Module, dtype=np.float64) -> np.ndarray:
    """Concatenate all parameters into one 1-D vector (deterministic order)."""
    params = module.parameters()
    if not params:
        return np.zeros(0, dtype=dtype)
    return np.concatenate([p.data.ravel().astype(dtype) for p in params])


def set_flat_params(module: Module, flat: np.ndarray) -> None:
    """Write a flat vector produced by :func:`get_flat_params` back in place."""
    flat = np.asarray(flat).ravel()
    offset = 0
    for param in module.parameters():
        size = param.data.size
        if offset + size > flat.size:
            raise ValueError("flat vector too short for this module")
        chunk = flat[offset : offset + size]
        param.data = chunk.reshape(param.data.shape).astype(param.data.dtype)
        offset += size
    if offset != flat.size:
        raise ValueError(f"flat vector has {flat.size} elements, module holds {offset}")


def get_flat_grads(module: Module, dtype=np.float64) -> np.ndarray:
    """Concatenate parameter gradients (zeros where ``grad is None``)."""
    chunks: List[np.ndarray] = []
    for param in module.parameters():
        if param.grad is None:
            chunks.append(np.zeros(param.data.size, dtype=dtype))
        else:
            chunks.append(param.grad.ravel().astype(dtype))
    if not chunks:
        return np.zeros(0, dtype=dtype)
    return np.concatenate(chunks)
