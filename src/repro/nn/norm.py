"""Batch normalization with batch-statistics export for Async-BN.

Algorithm 1 (lines 6-7) has each worker record the batch mean/variance of
every BN layer and push them to the parameter server; Formulas 6-7 define
how the server folds them into global running statistics.  To support that,
these layers expose:

* ``last_batch_mean`` / ``last_batch_var`` — the statistics of the most
  recent training-mode forward pass (what the worker ships);
* :func:`collect_bn_stats` / :func:`load_bn_running_stats` — whole-model
  helpers the distributed worker/server use to exchange statistics in BN
  layer order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class _BatchNorm(Module):
    """Shared implementation for 1-D / 2-D batch normalization."""

    _expected_ndim: int = 2

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        if not 0.0 < momentum <= 1.0:
            raise ValueError("momentum must be in (0, 1]")
        self.num_features = num_features
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.gamma = Parameter(np.ones(num_features, dtype=np.float32))
        self.beta = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float64))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float64))
        # Most recent training-batch statistics (worker -> server payload).
        self.last_batch_mean: Optional[np.ndarray] = None
        self.last_batch_var: Optional[np.ndarray] = None
        # When True the layer skips its own EMA update; the distributed
        # trainer owns the running statistics instead (BN / Async-BN modes).
        self.external_stats: bool = False

    def forward(self, x: Tensor) -> Tensor:
        if x.data.ndim != self._expected_ndim:
            raise ValueError(
                f"{type(self).__name__} expects {self._expected_ndim}-D input, got shape {x.shape}"
            )
        out, mean, var = F.batch_norm(
            x,
            self.gamma,
            self.beta,
            running_mean=self.running_mean,
            running_var=self.running_var,
            training=self.training,
            eps=self.eps,
        )
        if self.training:
            self.last_batch_mean = mean
            self.last_batch_var = var
            if not self.external_stats:
                m = self.momentum
                self.set_buffer("running_mean", (1 - m) * self.running_mean + m * mean)
                self.set_buffer("running_var", (1 - m) * self.running_var + m * var)
        return out

    def extra_repr(self) -> str:
        return f"features={self.num_features}, eps={self.eps}, momentum={self.momentum}"


class BatchNorm1d(_BatchNorm):
    """Batch normalization over (N, C) activations."""

    _expected_ndim = 2


class BatchNorm2d(_BatchNorm):
    """Batch normalization over (N, C, H, W) activations."""

    _expected_ndim = 4


def bn_layers(module: Module) -> List[_BatchNorm]:
    """All BN layers of a model in deterministic traversal order."""
    return [m for m in module.modules() if isinstance(m, _BatchNorm)]


def count_bn_layers(module: Module) -> int:
    """Number of BN layers in the model (the paper's ``Z``)."""
    return len(bn_layers(module))


def collect_bn_stats(module: Module) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Collect ``(batch_mean, batch_var)`` from each BN layer, in order.

    Layers that have not yet seen a training batch report their running
    statistics instead, so the payload shape is always consistent.
    """
    stats: List[Tuple[np.ndarray, np.ndarray]] = []
    for layer in bn_layers(module):
        if layer.last_batch_mean is not None:
            stats.append((layer.last_batch_mean.copy(), layer.last_batch_var.copy()))
        else:
            stats.append((layer.running_mean.copy(), layer.running_var.copy()))
    return stats


def load_bn_running_stats(module: Module, stats: List[Tuple[np.ndarray, np.ndarray]]) -> None:
    """Write per-layer ``(mean, var)`` into the running-stat buffers, in order."""
    layers = bn_layers(module)
    if len(layers) != len(stats):
        raise ValueError(f"model has {len(layers)} BN layers, payload has {len(stats)}")
    for layer, (mean, var) in zip(layers, stats):
        mean = np.asarray(mean, dtype=np.float64)
        var = np.asarray(var, dtype=np.float64)
        if mean.shape != (layer.num_features,) or var.shape != (layer.num_features,):
            raise ValueError("BN statistic shape mismatch")
        layer.set_buffer("running_mean", mean.copy())
        layer.set_buffer("running_var", np.maximum(var, 0.0).copy())


def set_bn_external(module: Module, external: bool = True) -> None:
    """Mark every BN layer's running stats as externally managed."""
    for layer in bn_layers(module):
        layer.external_stats = external
