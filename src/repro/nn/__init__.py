"""Neural-network layers built on :mod:`repro.tensor`.

This subpackage supplies every architecture the paper uses: the ResNet
family trained by the workers (:mod:`repro.nn.resnet`), the 2-layer-LSTM +
linear predictors that live on the parameter server
(:mod:`repro.nn.rnn`), and batch-normalization layers whose batch statistics
are exposed for the Async-BN protocol (:mod:`repro.nn.norm`).
"""

from repro.nn.module import (
    Module,
    Parameter,
    get_flat_grads,
    get_flat_params,
    set_flat_params,
)
from repro.nn.activations import GELU, LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.container import ModuleList, Sequential
from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.nn.loss import CrossEntropyLoss, MSELoss
from repro.nn.mlp import MLP
from repro.nn.norm import (
    BatchNorm1d,
    BatchNorm2d,
    collect_bn_stats,
    count_bn_layers,
    load_bn_running_stats,
)
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.resnet import (
    BasicBlock,
    Bottleneck,
    ResNet,
    resnet18,
    resnet50,
    resnet_tiny,
)
from repro.nn.gru import GRU, GRUCell
from repro.nn.regularization import Dropout, LayerNorm
from repro.nn.registry import MODELS, build_model, model_names, register_model
from repro.nn.rnn import LSTM, LSTMCell
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "get_flat_params",
    "set_flat_params",
    "get_flat_grads",
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "collect_bn_stats",
    "load_bn_running_stats",
    "count_bn_layers",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "LeakyReLU",
    "GELU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Sequential",
    "ModuleList",
    "LSTM",
    "LSTMCell",
    "GRU",
    "GRUCell",
    "Dropout",
    "LayerNorm",
    "CrossEntropyLoss",
    "MSELoss",
    "MLP",
    "ResNet",
    "BasicBlock",
    "Bottleneck",
    "resnet18",
    "resnet50",
    "resnet_tiny",
    "MODELS",
    "build_model",
    "model_names",
    "register_model",
    "init",
]
