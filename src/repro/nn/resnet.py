"""The ResNet family (He et al., 2016) in CIFAR-style form.

The paper trains ResNet-18 on CIFAR-10 and ResNet-50(V2) on ImageNet.  We
implement faithful BasicBlock / Bottleneck residual architectures with a
``base_width`` scale knob so the same topology runs at laptop scale in pure
NumPy (see DESIGN.md substitution table).  ``resnet18()`` / ``resnet50()``
give the paper's depths; ``resnet_tiny()`` is the narrow variant used by
fast tests and the example scripts.

All variants use the CIFAR-style stem (3x3 conv, no max-pool), which matches
the paper's CIFAR configuration and keeps small synthetic images viable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Type

import numpy as np

from repro.nn.activations import ReLU
from repro.nn.container import Sequential
from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.norm import BatchNorm2d
from repro.nn.pooling import GlobalAvgPool2d
from repro.tensor.tensor import Tensor
from repro.utils.rng import fallback_rng


def _conv_bn(
    in_c: int, out_c: int, k: int, stride: int, padding: int, rng: np.random.Generator
) -> Sequential:
    """conv (no bias) followed by BN — the ResNet building idiom."""
    return Sequential(
        Conv2d(in_c, out_c, k, stride=stride, padding=padding, bias=False, rng=rng),
        BatchNorm2d(out_c),
    )


class BasicBlock(Module):
    """Two 3x3 convolutions with identity/projection shortcut (ResNet-18/34)."""

    expansion = 1

    def __init__(self, in_c: int, out_c: int, stride: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.conv1 = _conv_bn(in_c, out_c, 3, stride, 1, rng)
        self.conv2 = _conv_bn(out_c, out_c, 3, 1, 1, rng)
        self.relu = ReLU()
        if stride != 1 or in_c != out_c * self.expansion:
            self.shortcut: Optional[Sequential] = _conv_bn(
                in_c, out_c * self.expansion, 1, stride, 0, rng
            )
        else:
            self.shortcut = None

    def forward(self, x: Tensor) -> Tensor:
        identity = self.shortcut(x) if self.shortcut is not None else x
        out = self.relu(self.conv1(x))
        out = self.conv2(out)
        return self.relu(out + identity)


class Bottleneck(Module):
    """1x1 -> 3x3 -> 1x1(x4) bottleneck block (ResNet-50/101/152)."""

    expansion = 4

    def __init__(self, in_c: int, out_c: int, stride: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.conv1 = _conv_bn(in_c, out_c, 1, 1, 0, rng)
        self.conv2 = _conv_bn(out_c, out_c, 3, stride, 1, rng)
        self.conv3 = _conv_bn(out_c, out_c * self.expansion, 1, 1, 0, rng)
        self.relu = ReLU()
        if stride != 1 or in_c != out_c * self.expansion:
            self.shortcut: Optional[Sequential] = _conv_bn(
                in_c, out_c * self.expansion, 1, stride, 0, rng
            )
        else:
            self.shortcut = None

    def forward(self, x: Tensor) -> Tensor:
        identity = self.shortcut(x) if self.shortcut is not None else x
        out = self.relu(self.conv1(x))
        out = self.relu(self.conv2(out))
        out = self.conv3(out)
        return self.relu(out + identity)


class ResNet(Module):
    """Residual network with a CIFAR-style stem.

    Parameters
    ----------
    block:
        :class:`BasicBlock` or :class:`Bottleneck`.
    layers:
        Blocks per stage, e.g. ``(2, 2, 2, 2)`` for ResNet-18.
    num_classes:
        Classifier width.
    in_channels:
        Input image channels.
    base_width:
        Filters of the first stage; doubles every stage.  64 reproduces the
        paper architecture; small values give the laptop-scale variants.
    rng:
        Generator for weight initialization.
    """

    def __init__(
        self,
        block: Type[Module],
        layers: Sequence[int],
        num_classes: int = 10,
        in_channels: int = 3,
        base_width: int = 64,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if not layers or any(n <= 0 for n in layers):
            raise ValueError("layers must be a non-empty sequence of positive ints")
        gen = rng if rng is not None else fallback_rng()
        self.block_type = block.__name__
        self.stem = _conv_bn(in_channels, base_width, 3, 1, 1, gen)
        self.relu = ReLU()

        stages: List[Module] = []
        in_c = base_width
        width = base_width
        for stage_idx, num_blocks in enumerate(layers):
            stride = 1 if stage_idx == 0 else 2
            blocks: List[Module] = []
            for block_idx in range(num_blocks):
                blocks.append(block(in_c, width, stride if block_idx == 0 else 1, gen))
                in_c = width * block.expansion
            stages.append(Sequential(*blocks))
            width *= 2
        self.stages = Sequential(*stages)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(in_c, num_classes, rng=gen)
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        """Classify an (N, C, H, W) batch into (N, num_classes) logits."""
        out = self.relu(self.stem(x))
        out = self.stages(out)
        out = self.pool(out)
        return self.fc(out)

    def extra_repr(self) -> str:
        return f"block={self.block_type}, classes={self.num_classes}"


def resnet18(
    num_classes: int = 10,
    in_channels: int = 3,
    base_width: int = 64,
    rng: Optional[np.random.Generator] = None,
) -> ResNet:
    """ResNet-18 topology: BasicBlock x (2, 2, 2, 2)."""
    return ResNet(BasicBlock, (2, 2, 2, 2), num_classes, in_channels, base_width, rng)


def resnet50(
    num_classes: int = 10,
    in_channels: int = 3,
    base_width: int = 64,
    rng: Optional[np.random.Generator] = None,
) -> ResNet:
    """ResNet-50 topology: Bottleneck x (3, 4, 6, 3)."""
    return ResNet(Bottleneck, (3, 4, 6, 3), num_classes, in_channels, base_width, rng)


def resnet_tiny(
    num_classes: int = 10,
    in_channels: int = 3,
    base_width: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> ResNet:
    """Narrow 3-stage BasicBlock ResNet for fast tests and examples."""
    return ResNet(BasicBlock, (1, 1, 1), num_classes, in_channels, base_width, rng)
