"""Name-keyed model registry: ``config.model`` -> a seeded replica.

Mirrors :mod:`repro.data.registry`.  Each builder has the signature
``builder(config, input_shape, num_classes, rng) -> Module`` where ``rng``
is already derived from ``config.seed`` — every call with the same config
must return an identically initialized model, which is how all replicas and
the server start from "the same randomly initialized model" (Section 5).

``resnet_tiny`` — previously constructible but unnamed by any preset — is a
first-class entry here, giving sweeps a convolutional scenario that still
runs in seconds.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.nn.mlp import MLP
from repro.nn.module import Module
from repro.nn.resnet import resnet18, resnet50, resnet_tiny
from repro.utils.registry import Registry
from repro.utils.rng import RngTree

#: builder(config, input_shape, num_classes, rng) -> Module
ModelBuilder = Callable[..., Module]

MODELS: Registry = Registry("model")


def register_model(name: str, builder: ModelBuilder, override: bool = False) -> ModelBuilder:
    """Register ``builder`` under ``name``; raises on duplicates unless ``override``."""
    return MODELS.register(name, builder, override=override)


def model_names() -> Tuple[str, ...]:
    """All registered model names, sorted."""
    return MODELS.names()


def build_model(config, input_shape: Tuple[int, ...], num_classes: int) -> Module:
    """Build one model replica with init seeded by ``config.seed``."""
    rng = RngTree(config.seed).child("model-init").generator("weights")
    return MODELS.get(config.model)(config, input_shape, num_classes, rng)


# ---------------------------------------------------------------------- #
# built-in models
# ---------------------------------------------------------------------- #
def build_mlp(config, input_shape, num_classes, rng) -> Module:
    """Flattening MLP with optional BatchNorm (the laptop-scale workhorse)."""
    kwargs = dict(config.model_kwargs)
    input_dim = int(np.prod(input_shape))
    hidden = tuple(kwargs.pop("hidden", (64,)))
    batch_norm = kwargs.pop("batch_norm", True)
    if kwargs:
        raise ValueError(f"unknown mlp kwargs {sorted(kwargs)}")
    return MLP((input_dim, *hidden, num_classes), batch_norm=batch_norm, rng=rng)


def _resnet_builder(factory):
    def build(config, input_shape, num_classes, rng) -> Module:
        in_channels = input_shape[0] if len(input_shape) == 3 else 3
        return factory(
            num_classes=num_classes, in_channels=in_channels, rng=rng, **config.model_kwargs
        )

    return build


register_model("mlp", build_mlp)
register_model("resnet18", _resnet_builder(resnet18))
register_model("resnet50", _resnet_builder(resnet50))
register_model("resnet_tiny", _resnet_builder(resnet_tiny))
