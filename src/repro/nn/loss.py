"""Loss modules wrapping the fused functional implementations."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class CrossEntropyLoss(Module):
    """Softmax cross-entropy over integer targets (the paper's loss)."""

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        if reduction not in ("mean", "sum", "none"):
            raise ValueError(f"unknown reduction {reduction!r}")
        self.reduction = reduction

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, targets, reduction=self.reduction)

    def extra_repr(self) -> str:
        return f"reduction={self.reduction}"


class MSELoss(Module):
    """Mean squared error (used to train the server-side predictors)."""

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        if reduction not in ("mean", "sum", "none"):
            raise ValueError(f"unknown reduction {reduction!r}")
        self.reduction = reduction

    def forward(self, pred: Tensor, target) -> Tensor:
        return F.mse_loss(pred, target, reduction=self.reduction)

    def extra_repr(self) -> str:
        return f"reduction={self.reduction}"
