"""LSTM cells and stacked LSTM layers.

The paper's two server-side predictors are both "two LSTM layers followed by
a linear layer" (Sections 4.3-4.4); :class:`LSTM` provides exactly that
backbone.  Gates use the fused 4x-wide projection, and backward comes for
free from autograd (gradient-checked in ``tests/nn/test_lstm.py``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn import init as init_mod
from repro.nn.container import ModuleList
from repro.nn.module import Module, Parameter
from repro.tensor import concat, stack, zeros
from repro.tensor.tensor import Tensor
from repro.utils.rng import fallback_rng


class LSTMCell(Module):
    """A single LSTM cell with fused input/forget/cell/output gates.

    Weight layout follows PyTorch: ``w_ih (4H, I)``, ``w_hh (4H, H)``, gate
    order ``[input, forget, cell, output]``.  Forget-gate bias starts at 1.0
    (standard trick for gradient flow on long series).
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("input_size and hidden_size must be positive")
        self.input_size = input_size
        self.hidden_size = hidden_size
        gen = rng if rng is not None else fallback_rng()
        self.w_ih = Parameter(init_mod.lecun_uniform((4 * hidden_size, input_size), gen))
        self.w_hh = Parameter(init_mod.lecun_uniform((4 * hidden_size, hidden_size), gen))
        bias = np.zeros(4 * hidden_size, dtype=np.float32)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget-gate bias
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        """One step: ``x`` is (N, input_size); returns new ``(h, c)``."""
        h_prev, c_prev = state
        gates = x @ self.w_ih.transpose() + h_prev @ self.w_hh.transpose() + self.bias
        hs = self.hidden_size
        i_gate = gates[:, 0 * hs : 1 * hs].sigmoid()
        f_gate = gates[:, 1 * hs : 2 * hs].sigmoid()
        g_gate = gates[:, 2 * hs : 3 * hs].tanh()
        o_gate = gates[:, 3 * hs : 4 * hs].sigmoid()
        c_new = f_gate * c_prev + i_gate * g_gate
        h_new = o_gate * c_new.tanh()
        return h_new, c_new

    def initial_state(self, batch_size: int) -> Tuple[Tensor, Tensor]:
        """Zero hidden/cell state for ``batch_size`` sequences."""
        return (
            zeros(batch_size, self.hidden_size),
            zeros(batch_size, self.hidden_size),
        )

    def extra_repr(self) -> str:
        return f"in={self.input_size}, hidden={self.hidden_size}"


class LSTM(Module):
    """Stacked LSTM over batch-first sequences (N, T, input_size).

    Returns the full top-layer output sequence plus the final per-layer
    states, mirroring ``torch.nn.LSTM(batch_first=True)``.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_layers <= 0:
            raise ValueError("num_layers must be positive")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        gen = rng if rng is not None else fallback_rng()
        cells: List[LSTMCell] = []
        for layer in range(num_layers):
            cells.append(LSTMCell(input_size if layer == 0 else hidden_size, hidden_size, rng=gen))
        self.cells = ModuleList(cells)

    def forward(
        self,
        x: Tensor,
        state: Optional[List[Tuple[Tensor, Tensor]]] = None,
    ) -> Tuple[Tensor, List[Tuple[Tensor, Tensor]]]:
        """Run the stack over a (N, T, input_size) batch.

        Returns
        -------
        outputs:
            (N, T, hidden_size) top-layer hidden states.
        final_states:
            ``[(h, c), ...]`` per layer, each (N, hidden_size).
        """
        if x.data.ndim != 3:
            raise ValueError(f"LSTM expects (N, T, D) input, got shape {x.shape}")
        batch, steps, _ = x.data.shape
        if state is None:
            state = [cell.initial_state(batch) for cell in self.cells]
        if len(state) != self.num_layers:
            raise ValueError(f"state has {len(state)} layers, LSTM has {self.num_layers}")

        states = list(state)
        outputs: List[Tensor] = []
        for t in range(steps):
            inp = x[:, t, :]
            for layer, cell in enumerate(self.cells):
                h, c = cell(inp, states[layer])
                states[layer] = (h, c)
                inp = h
            outputs.append(inp)
        return stack(outputs, axis=1), states

    def extra_repr(self) -> str:
        return f"in={self.input_size}, hidden={self.hidden_size}, layers={self.num_layers}"
