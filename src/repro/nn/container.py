"""Module containers."""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.nn.module import Module


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for i, module in enumerate(modules):
            setattr(self, str(i), module)
        self._length = len(modules)

    def forward(self, x):
        for i in range(self._length):
            x = getattr(self, str(i))(x)
        return x

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Module]:
        return (getattr(self, str(i)) for i in range(self._length))

    def __getitem__(self, index: int) -> Module:
        if not -self._length <= index < self._length:
            raise IndexError(f"index {index} out of range for Sequential of {self._length}")
        return getattr(self, str(index % self._length))


class ModuleList(Module):
    """List-like registry of submodules."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self._length = 0
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        setattr(self, str(self._length), module)
        self._length += 1
        return self

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Module]:
        return (getattr(self, str(i)) for i in range(self._length))

    def __getitem__(self, index: int) -> Module:
        if not -self._length <= index < self._length:
            raise IndexError(f"index {index} out of range for ModuleList of {self._length}")
        return getattr(self, str(index % self._length))
