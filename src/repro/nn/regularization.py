"""Regularization layers: Dropout and LayerNorm.

LayerNorm is the batch-independent alternative to BatchNorm: it needs no
cross-worker statistic synchronization at all, so it serves as the control
condition for the Async-BN experiments ("what if the statistics problem is
designed away?").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor
from repro.utils.rng import fallback_rng


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = rng if rng is not None else fallback_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)

    def extra_repr(self) -> str:
        return f"p={self.p}"


class LayerNorm(Module):
    """Normalize over the last dimension with learned affine parameters."""

    def __init__(self, num_features: int, eps: float = 1e-5) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = num_features
        self.eps = float(eps)
        self.gamma = Parameter(np.ones(num_features, dtype=np.float32))
        self.beta = Parameter(np.zeros(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if x.data.shape[-1] != self.num_features:
            raise ValueError(
                f"LayerNorm({self.num_features}) got trailing dim {x.data.shape[-1]}"
            )
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / (var + self.eps).sqrt()
        return normalized * self.gamma + self.beta

    def extra_repr(self) -> str:
        return f"features={self.num_features}, eps={self.eps}"
