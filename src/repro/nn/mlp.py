"""Multi-layer perceptron, the fast benchmark workhorse.

The benches that sweep 5 algorithms x 3 worker counts x 2 BN modes use an
MLP (optionally with BatchNorm1d, so Async-BN is still exercised) because a
scaled ResNet would take hours in pure NumPy; the examples also run the
ResNets directly.  See DESIGN.md's substitution table.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.activations import ReLU
from repro.nn.container import Sequential
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.norm import BatchNorm1d
from repro.tensor.tensor import Tensor
from repro.utils.rng import fallback_rng


class MLP(Module):
    """Fully-connected classifier ``sizes[0] -> ... -> sizes[-1]``.

    Parameters
    ----------
    sizes:
        Layer widths including input and output, e.g. ``(192, 128, 64, 10)``.
    batch_norm:
        Insert BatchNorm1d after every hidden linear layer (needed by the
        BN / Async-BN experiments).
    rng:
        Generator for weight initialization.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        batch_norm: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        sizes = tuple(int(s) for s in sizes)
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        if any(s <= 0 for s in sizes):
            raise ValueError("all layer sizes must be positive")
        self.sizes = sizes
        self.batch_norm = batch_norm
        gen = rng if rng is not None else fallback_rng()
        layers = []
        for i in range(len(sizes) - 2):
            layers.append(Linear(sizes[i], sizes[i + 1], bias=not batch_norm, rng=gen))
            if batch_norm:
                layers.append(BatchNorm1d(sizes[i + 1]))
            layers.append(ReLU())
        layers.append(Linear(sizes[-2], sizes[-1], rng=gen))
        self.body = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        """Classify flattened input; accepts (N, D) or (N, C, H, W)."""
        if x.data.ndim > 2:
            x = x.reshape(x.data.shape[0], -1)
        return self.body(x)

    def extra_repr(self) -> str:
        return f"sizes={self.sizes}, batch_norm={self.batch_norm}"
