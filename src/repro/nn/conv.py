"""2-D convolution layer (im2col implementation in repro.tensor.functional)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init as init_mod
from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor
from repro.utils.rng import fallback_rng


class Conv2d(Module):
    """2-D cross-correlation with square kernels.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel_size:
        Side of the square kernel.
    stride, padding:
        Spatial stride and symmetric zero padding.
    bias:
        Whether to learn a per-filter bias (ResNets disable it before BN).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        init: str = "he_normal",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if min(in_channels, out_channels, kernel_size) <= 0:
            raise ValueError("channels and kernel_size must be positive")
        if stride < 1 or padding < 0:
            raise ValueError("stride must be >= 1 and padding >= 0")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        gen = rng if rng is not None else fallback_rng()
        initializer = init_mod.get_initializer(init)
        self.weight = Parameter(
            initializer((out_channels, in_channels, kernel_size, kernel_size), gen)
        )
        if bias:
            self.bias: Optional[Parameter] = Parameter(np.zeros(out_channels, dtype=np.float32))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        """Convolve ``(N, C, H, W)`` input."""
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def extra_repr(self) -> str:
        return (
            f"in={self.in_channels}, out={self.out_channels}, k={self.kernel_size}, "
            f"stride={self.stride}, pad={self.padding}, bias={self.bias is not None}"
        )
