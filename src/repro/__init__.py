"""repro — a from-scratch reproduction of LC-ASGD (Li et al., ICPP 2020).

The package bundles everything the paper depends on:

* :mod:`repro.tensor` — a reverse-mode autograd engine over NumPy.
* :mod:`repro.nn` — neural-network layers (Linear, Conv2d, BatchNorm, LSTM,
  ResNet family) built on the tensor engine.
* :mod:`repro.optim` — SGD and learning-rate schedules.
* :mod:`repro.data` — synthetic stand-ins for CIFAR-10 / ImageNet plus
  loaders and sharding helpers.
* :mod:`repro.cluster` — a deterministic discrete-event simulator of a
  parameter-server cluster (workers, links, stragglers).
* :mod:`repro.core` — the paper's contribution: the parameter server
  (Algorithm 2), worker (Algorithm 1), the five training algorithms
  (SGD/SSGD/ASGD/DC-ASGD/LC-ASGD), the LSTM loss predictor (Algorithm 3),
  the LSTM step predictor (Algorithm 4), Async-BN (Formulas 6-7) and the
  :class:`~repro.core.trainer.DistributedTrainer` that ties them together.
* :mod:`repro.runtime` — pluggable execution backends running one
  :class:`~repro.runtime.session.ExperimentPlan` either on the simulator
  (``sim``) or on a real concurrent thread-based parameter server
  (``thread``) with wall-clock staleness.
* :mod:`repro.experiments` — the declarative campaign layer: experiment
  specs with content-addressed keys, Sweep/Grid combinators, serial and
  multiprocessing executors, and a resumable JSON result store.
* :mod:`repro.bench` — the harness regenerating every table and figure of
  the paper's evaluation section.

Quickstart::

    from repro.core import DistributedTrainer, TrainingConfig
    cfg = TrainingConfig.small_cifar(algorithm="lc-asgd", num_workers=8)
    result = DistributedTrainer(cfg).run()
    print(result.final_test_error)

or, for whole grids with resume (see :mod:`repro.experiments`)::

    from repro.experiments import Campaign, Grid, ResultStore
    specs = Grid(algorithm=["asgd", "lc-asgd"], seed=[0, 1, 2]).specs(
        TrainingConfig.small_cifar)
    Campaign(specs, store=ResultStore("out/")).run()
"""

from repro.version import __version__

__all__ = ["__version__"]
