"""Campaign event hooks: the observer seam that replaced CLI prints.

Anything that wants to watch a campaign — the CLI's progress lines, a
notebook progress bar, a future live dashboard — implements
:class:`CampaignEvents` and passes it to the
:class:`~repro.experiments.campaign.Campaign`.  The base class is all
no-ops so observers override only what they need.

``on_curve_point`` fires as each evaluation snapshot is recorded, via the
:attr:`~repro.runtime.session.ExperimentPlan.on_curve_point` plan hook.
Serial-executor runs fire it synchronously; pool runs stream each point
back over a queue the parent drains in its poll loop, so every local
executor delivers the live per-point stream (fleet runs relay points over
the agent protocol's ``curve_point`` frames).
"""

from __future__ import annotations

from repro.core.metrics import CurvePoint, RunResult
from repro.experiments.spec import ExperimentSpec


class CampaignEvents:
    """Override any subset; every callback defaults to a no-op."""

    def on_campaign_start(self, total: int, cached: int) -> None:
        """Called once, before any run: grid size and how many are cached."""

    def on_run_start(self, spec: ExperimentSpec, index: int, total: int) -> None:
        """Called as ``spec`` is handed to the executor (0-based ``index``)."""

    def on_curve_point(self, spec: ExperimentSpec, point: CurvePoint) -> None:
        """Called per evaluation snapshot (may lag the run under a pool)."""

    def on_run_end(
        self, spec: ExperimentSpec, result: RunResult, cached: bool, index: int, total: int
    ) -> None:
        """Called when ``spec`` has a result; ``cached`` means store hit."""

    def on_note(self, message: str) -> None:
        """Executor-level happenings that aren't tied to one run — the
        fleet scheduler reports agent roster, deaths and requeues here."""

    def on_campaign_end(self, result) -> None:
        """Called once with the finished CampaignResult."""


class ConsoleEvents(CampaignEvents):
    """The CLI's progress reporting, factored out of ``cli.py``.

    ``verbose`` additionally streams one line per curve point — useful for
    watching a long serial run converge.
    """

    def __init__(self, verbose: bool = False, stream=None) -> None:
        import sys

        self.verbose = verbose
        self.stream = stream if stream is not None else sys.stdout

    def _emit(self, line: str) -> None:
        print(line, file=self.stream, flush=True)

    def on_campaign_start(self, total: int, cached: int) -> None:
        if cached:
            self._emit(f"campaign: {total} run(s), {cached} already in store")
        else:
            self._emit(f"campaign: {total} run(s)")

    def on_run_start(self, spec: ExperimentSpec, index: int, total: int) -> None:
        self._emit(f"[{index + 1}/{total}] running {spec.label()}...")

    def on_curve_point(self, spec: ExperimentSpec, point: CurvePoint) -> None:
        if self.verbose:
            self._emit(
                f"    epoch {point.epoch:3d}  t={point.time:8.1f}s  "
                f"train_err={point.train_error:.4f}  test_err={point.test_error:.4f}"
            )

    def on_run_end(
        self, spec: ExperimentSpec, result: RunResult, cached: bool, index: int, total: int
    ) -> None:
        source = "cached" if cached else "done"
        self._emit(
            f"[{index + 1}/{total}] {source}: {spec.label()} "
            f"-> test error {result.final_test_error:.2%}"
        )

    def on_note(self, message: str) -> None:
        self._emit(message)
