"""ExperimentSpec: one fully-described run, with a content-addressed key.

A spec is the unit of the declarative experiment API: *what* to run (a
:class:`~repro.core.config.TrainingConfig`), *how* to execute it (a backend
name plus backend options), and free-form ``tags`` for bookkeeping.  Its
:meth:`key` is a stable hash of the config + backend identity — the same
spec always maps to the same key, which is what lets the
:class:`~repro.experiments.store.ResultStore` resume interrupted campaigns
by skipping completed runs.

Tags are deliberately excluded from the key: relabelling a run must not
invalidate its cached result.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Tuple

from repro.core.config import TrainingConfig

#: hex digits of SHA-256 kept in a key — 64 bits, ample for any campaign
KEY_LENGTH = 16


@dataclass(frozen=True)
class ExperimentSpec:
    """Config + backend + backend options + tags: one declarative run."""

    config: TrainingConfig
    backend: str = "sim"
    backend_options: Mapping[str, Any] = field(default_factory=dict)
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        # normalize mutable inputs so specs hash and serialize consistently
        object.__setattr__(self, "backend_options", dict(self.backend_options))
        object.__setattr__(self, "tags", _as_tag_tuple(self.tags))

    # ------------------------------------------------------------------ #
    def identity(self) -> Dict[str, Any]:
        """The JSON document the key hashes: config + backend, never tags."""
        return {
            "config": self.config.to_dict(),
            "backend": self.backend,
            "backend_options": dict(self.backend_options),
        }

    def key(self) -> str:
        """Content-addressed key: SHA-256 of the canonical identity JSON."""
        canonical = json.dumps(self.identity(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:KEY_LENGTH]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping (identity + tags + key) for persistence."""
        payload = self.identity()
        payload["tags"] = list(self.tags)
        payload["key"] = self.key()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentSpec":
        """Inverse of :meth:`to_dict` — how a spec crosses process/host
        boundaries (the fleet protocol ships specs as these documents).

        If the payload carries a ``key``, the rebuilt spec must re-derive
        the same one: a mismatch means the sender and receiver disagree
        about what the spec *is* (schema skew), and silently running the
        wrong experiment under a cached key would poison every store the
        result lands in.
        """
        spec = cls(
            config=TrainingConfig.from_dict(payload["config"]),
            backend=payload.get("backend", "sim"),
            backend_options=dict(payload.get("backend_options", {})),
            tags=tuple(payload.get("tags", ())),
        )
        expected = payload.get("key")
        if expected is not None and spec.key() != expected:
            raise ValueError(
                f"spec key mismatch after round-trip: sender says {expected!r}, "
                f"rebuilt spec hashes to {spec.key()!r} (schema skew?)"
            )
        return spec

    def label(self) -> str:
        """Short human-readable handle for progress lines and tables."""
        cfg = self.config
        return f"{cfg.algorithm}@M{cfg.num_workers} seed={cfg.seed} [{self.backend}]"

    def with_tags(self, *tags: str) -> "ExperimentSpec":
        """A copy with extra tags appended (key is unchanged by design)."""
        return ExperimentSpec(
            config=self.config,
            backend=self.backend,
            backend_options=dict(self.backend_options),
            tags=self.tags + _as_tag_tuple(tags),
        )


def _as_tag_tuple(tags: Iterable[str]) -> Tuple[str, ...]:
    if isinstance(tags, str):  # a lone string is one tag, not characters
        return (tags,)
    return tuple(str(t) for t in tags)
