"""Sweep/Grid combinators: declarative expansion of experiment grids.

The paper's evidence is never one run — it is every algorithm × worker
count × seed (Figures 4-6, Tables 1-3).  These combinators express such
grids without hand-rolled loops:

    >>> from repro.core import TrainingConfig
    >>> from repro.experiments import Grid, Sweep
    >>> grid = (Sweep("algorithm", ["asgd", "lc-asgd"])
    ...         * Sweep("num_workers", [4, 8, 16])
    ...         * Sweep("seed", [0, 1, 2]))
    >>> specs = grid.specs(TrainingConfig.small_cifar)
    >>> len(specs)
    18

Axis names are :class:`~repro.core.config.TrainingConfig` field names (or
preset-factory arguments): ``algorithm``, ``num_workers``, ``seed``,
``cluster`` (values are :class:`~repro.core.config.ClusterConfig` timing
models), ``epochs``, ...  The base may be a preset *factory* — preferred,
because presets derive dependent fields such as ``bn_mode`` from the
algorithm — or a concrete config, overridden per point.

When sweeping ``algorithm`` from a *concrete* base, do not build that base
with ``algorithm="sgd"``: config normalization pins sgd configs to one
worker at construction, so every derived spec would inherit
``num_workers=1``.  Use a factory (or a non-sgd base) and let each point
resolve its own worker count.

Axes can be conditional.  A per-axis guard expands a field only where it
matters, and a grid-level predicate prunes whole points::

    >>> grid = (Sweep("algorithm", ["asgd", "lc-asgd"])
    ...         * Sweep("lc_lambda", [0.3, 0.7],
    ...                 when=lambda p: p["algorithm"] == "lc-asgd"))
    >>> len(grid)   # 1 asgd point + 2 lc-asgd points, not 4
    3
    >>> len(grid.when(lambda p: p["algorithm"] != "asgd"))
    2
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.config import TrainingConfig
from repro.experiments.spec import ExperimentSpec
from repro.utils.rng import as_generator

#: a grid expands against either a preset factory or a concrete config
ConfigBase = Union[TrainingConfig, Callable[..., TrainingConfig]]


#: an axis guard: receives the point built from the *earlier* axes and
#: says whether this axis applies to it
AxisGuard = Callable[[Dict[str, Any]], bool]


class Sweep:
    """One named axis: a config field and the values it takes.

    ``when`` makes the axis conditional: for each point built from the
    axes declared *before* this one, the guard decides whether the axis
    expands.  Where it returns False the point passes through once with
    the field unset (the base config's default applies), so e.g.
    ``Sweep("lc_lambda", [0.3, 0.7], when=lambda p: p["algorithm"] ==
    "lc-asgd")`` sweeps the lambda only for lc-asgd cells instead of
    minting redundant asgd specs that differ in a field asgd never reads.
    Guards only see earlier axes — declare the axes they depend on first.
    """

    def __init__(
        self, name: str, values: Iterable[Any], when: Optional[AxisGuard] = None
    ) -> None:
        if not name:
            raise ValueError("sweep axis name must be non-empty")
        self.name = name
        self.values: Tuple[Any, ...] = tuple(values)
        self.when = when
        if not self.values:
            raise ValueError(f"sweep axis {name!r} has no values")

    def __mul__(self, other: Union["Sweep", "Grid"]) -> "Grid":
        return Grid.of(self) * other

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        guard = ", when=..." if self.when is not None else ""
        return f"Sweep({self.name!r}, {list(self.values)!r}{guard})"


class Grid:
    """Cross-product of sweep axes, expandable into ExperimentSpecs.

    Construct from keyword axes (``Grid(algorithm=[...], seed=[...])``) or
    by multiplying :class:`Sweep` objects.  Point order is deterministic:
    axes vary rightmost-fastest in declaration order, so resumed campaigns
    see the same sequence.
    """

    def __init__(self, **axes: Iterable[Any]) -> None:
        self._axes: Dict[str, Sweep] = {}
        self._filters: Tuple[AxisGuard, ...] = ()
        for name, values in axes.items():
            self._merge_axis(Sweep(name, values))

    @classmethod
    def of(cls, *sweeps: Sweep) -> "Grid":
        """A grid from explicit Sweep objects."""
        grid = cls()
        for sweep in sweeps:
            grid._merge_axis(sweep)
        return grid

    def _merge_axis(self, sweep: Sweep) -> None:
        if sweep.name in self._axes:
            raise ValueError(f"duplicate sweep axis {sweep.name!r}")
        self._axes[sweep.name] = sweep

    # ------------------------------------------------------------------ #
    def __mul__(self, other: Union[Sweep, "Grid"]) -> "Grid":
        merged = Grid()
        merged._filters = self._filters
        for sweep in self._axes.values():
            merged._merge_axis(sweep)
        if isinstance(other, Sweep):
            merged._merge_axis(other)
        elif isinstance(other, Grid):
            for sweep in other._axes.values():
                merged._merge_axis(sweep)
            merged._filters = merged._filters + other._filters
        else:
            return NotImplemented
        return merged

    def when(self, predicate: AxisGuard) -> "Grid":
        """A copy keeping only the points ``predicate`` accepts.

        Unlike a per-axis ``when=`` guard (which suppresses a field before
        it exists), this filters *complete* points — use it for
        cross-axis constraints like "skip M=16 for sgd".  Predicates
        stack: each :meth:`when` call ANDs another one on.
        """
        filtered = Grid()
        for sweep in self._axes.values():
            filtered._merge_axis(sweep)
        filtered._filters = self._filters + (predicate,)
        return filtered

    @property
    def axes(self) -> Mapping[str, Tuple[Any, ...]]:
        """The axis mapping (name -> values), in declaration order."""
        return {name: sweep.values for name, sweep in self._axes.items()}

    def __len__(self) -> int:
        if self._filters or any(s.when is not None for s in self._axes.values()):
            return len(self.points())  # conditional grids have no closed form
        n = 1
        for sweep in self._axes.values():
            n *= len(sweep.values)
        return n

    def points(self) -> List[Dict[str, Any]]:
        """Every coordinate of the grid as a {field: value} dict.

        Axes expand in declaration order, rightmost-fastest.  A guarded
        axis consults its ``when`` against the point built so far (earlier
        axes only) and contributes nothing where the guard rejects; grid-
        level :meth:`when` predicates then filter the finished points.
        """
        points: List[Dict[str, Any]] = [{}]
        for sweep in self._axes.values():
            expanded: List[Dict[str, Any]] = []
            for point in points:
                if sweep.when is not None and not sweep.when(point):
                    expanded.append(dict(point))  # axis absent: base default
                else:
                    for value in sweep.values:
                        grown = dict(point)
                        grown[sweep.name] = value
                        expanded.append(grown)
            points = expanded
        for predicate in self._filters:
            points = [p for p in points if predicate(p)]
        return points

    # ------------------------------------------------------------------ #
    def sample(self, n: int, method: str = "random", seed: int = 0) -> "Grid":
        """A sub-grid of at most ``n`` points, sampled deterministically.

        The exploration half of guided search: instead of running a full
        cross product, draw a representative subset and sweep that.

        ``method="random"`` draws ``n`` points uniformly without
        replacement from :meth:`points` (so ``when`` guards and filters
        are already respected); ``n >= len(grid)`` keeps every point.
        ``method="lhs"`` is a discrete latin hypercube: each axis's values
        are stratified evenly across the ``n`` draws and permuted
        independently, giving per-axis coverage a uniform draw of the same
        size cannot guarantee.  LHS candidates that guards/filters reject
        (or that collapse onto one surviving point) are dropped, so it may
        return fewer than ``n`` points on conditional grids.

        The same ``(n, method, seed)`` always selects the same points.
        The result is a real :class:`Grid` — membership is enforced by a
        grid-level filter over the axes that existed at sampling time, so
        it composes: multiplying by a *new* axis afterwards expands every
        sampled point across that axis.
        """
        if n < 1:
            raise ValueError("sample size must be >= 1")
        if method not in ("random", "lhs"):
            raise ValueError(f"method must be 'random' or 'lhs', got {method!r}")
        points = self.points()
        if not points:
            raise ValueError("cannot sample an empty grid")
        rng = as_generator(seed, f"grid-sample-{method}")
        if n >= len(points):
            chosen = points
        elif method == "random":
            picked = rng.choice(len(points), size=n, replace=False)
            chosen = [points[i] for i in sorted(int(i) for i in picked)]
        else:
            chosen = self._lhs_select(points, n, rng)

        absent = object()
        names = tuple(self._axes.keys())
        member_keys = [
            tuple((name, point.get(name, absent)) for name in names)
            for point in chosen
        ]

        def member(point: Dict[str, Any]) -> bool:
            key = tuple((name, point.get(name, absent)) for name in names)
            return any(key == sampled for sampled in member_keys)

        return self.when(member)

    def _lhs_select(
        self, points: List[Dict[str, Any]], n: int, rng: np.random.Generator
    ) -> List[Dict[str, Any]]:
        """Latin-hypercube draw projected onto the grid's real points."""
        columns: Dict[str, List[Any]] = {}
        for name, sweep in self._axes.items():
            k = len(sweep.values)
            strata = np.floor(np.arange(n) * k / n).astype(int)
            rng.shuffle(strata)
            columns[name] = [sweep.values[i] for i in strata]
        chosen: List[Dict[str, Any]] = []
        for row in range(n):
            candidate = {name: columns[name][row] for name in self._axes}
            # project onto the first real point the candidate agrees with
            # on every field that point carries (guarded axes the point
            # omits are free); drop candidates no point matches
            for point in points:
                if all(candidate.get(k2) == v for k2, v in point.items()):
                    if point not in chosen:
                        chosen.append(point)
                    break
        return chosen

    def configs(self, base: ConfigBase) -> List[TrainingConfig]:
        """One TrainingConfig per point, built from ``base``."""
        if callable(base):
            return [base(**point) for point in self.points()]
        return [base.with_overrides(**point) for point in self.points()]

    def specs(
        self,
        base: ConfigBase,
        backend: str = "sim",
        backend_options: Mapping[str, Any] = (),
        tags: Sequence[str] = (),
    ) -> List[ExperimentSpec]:
        """One ExperimentSpec per point — the input to a Campaign."""
        return [
            ExperimentSpec(
                config=config,
                backend=backend,
                backend_options=dict(backend_options),
                tags=tuple(tags),
            )
            for config in self.configs(base)
        ]

    def __repr__(self) -> str:
        axes = ", ".join(f"{n}={list(s.values)!r}" for n, s in self._axes.items())
        guards = f" (+{len(self._filters)} filter(s))" if self._filters else ""
        return f"Grid({axes}){guards}"
