"""Sweep/Grid combinators: declarative expansion of experiment grids.

The paper's evidence is never one run — it is every algorithm × worker
count × seed (Figures 4-6, Tables 1-3).  These combinators express such
grids without hand-rolled loops:

    >>> from repro.core import TrainingConfig
    >>> from repro.experiments import Grid, Sweep
    >>> grid = (Sweep("algorithm", ["asgd", "lc-asgd"])
    ...         * Sweep("num_workers", [4, 8, 16])
    ...         * Sweep("seed", [0, 1, 2]))
    >>> specs = grid.specs(TrainingConfig.small_cifar)
    >>> len(specs)
    18

Axis names are :class:`~repro.core.config.TrainingConfig` field names (or
preset-factory arguments): ``algorithm``, ``num_workers``, ``seed``,
``cluster`` (values are :class:`~repro.core.config.ClusterConfig` timing
models), ``epochs``, ...  The base may be a preset *factory* — preferred,
because presets derive dependent fields such as ``bn_mode`` from the
algorithm — or a concrete config, overridden per point.

When sweeping ``algorithm`` from a *concrete* base, do not build that base
with ``algorithm="sgd"``: config normalization pins sgd configs to one
worker at construction, so every derived spec would inherit
``num_workers=1``.  Use a factory (or a non-sgd base) and let each point
resolve its own worker count.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, List, Mapping, Sequence, Tuple, Union

from repro.core.config import TrainingConfig
from repro.experiments.spec import ExperimentSpec

#: a grid expands against either a preset factory or a concrete config
ConfigBase = Union[TrainingConfig, Callable[..., TrainingConfig]]


class Sweep:
    """One named axis: a config field and the values it takes."""

    def __init__(self, name: str, values: Iterable[Any]) -> None:
        if not name:
            raise ValueError("sweep axis name must be non-empty")
        self.name = name
        self.values: Tuple[Any, ...] = tuple(values)
        if not self.values:
            raise ValueError(f"sweep axis {name!r} has no values")

    def __mul__(self, other: Union["Sweep", "Grid"]) -> "Grid":
        return Grid.of(self) * other

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"Sweep({self.name!r}, {list(self.values)!r})"


class Grid:
    """Cross-product of sweep axes, expandable into ExperimentSpecs.

    Construct from keyword axes (``Grid(algorithm=[...], seed=[...])``) or
    by multiplying :class:`Sweep` objects.  Point order is deterministic:
    axes vary rightmost-fastest in declaration order, so resumed campaigns
    see the same sequence.
    """

    def __init__(self, **axes: Iterable[Any]) -> None:
        self._axes: Dict[str, Tuple[Any, ...]] = {}
        for name, values in axes.items():
            self._merge_axis(Sweep(name, values))

    @classmethod
    def of(cls, *sweeps: Sweep) -> "Grid":
        """A grid from explicit Sweep objects."""
        grid = cls()
        for sweep in sweeps:
            grid._merge_axis(sweep)
        return grid

    def _merge_axis(self, sweep: Sweep) -> None:
        if sweep.name in self._axes:
            raise ValueError(f"duplicate sweep axis {sweep.name!r}")
        self._axes[sweep.name] = sweep.values

    # ------------------------------------------------------------------ #
    def __mul__(self, other: Union[Sweep, "Grid"]) -> "Grid":
        merged = Grid()
        for name, values in self._axes.items():
            merged._merge_axis(Sweep(name, values))
        if isinstance(other, Sweep):
            merged._merge_axis(other)
        elif isinstance(other, Grid):
            for name, values in other._axes.items():
                merged._merge_axis(Sweep(name, values))
        else:
            return NotImplemented
        return merged

    @property
    def axes(self) -> Mapping[str, Tuple[Any, ...]]:
        """The axis mapping (name -> values), in declaration order."""
        return dict(self._axes)

    def __len__(self) -> int:
        n = 1
        for values in self._axes.values():
            n *= len(values)
        return n

    def points(self) -> List[Dict[str, Any]]:
        """Every coordinate of the grid as a {field: value} dict."""
        names = list(self._axes)
        combos = itertools.product(*(self._axes[n] for n in names))
        return [dict(zip(names, combo)) for combo in combos]

    def configs(self, base: ConfigBase) -> List[TrainingConfig]:
        """One TrainingConfig per point, built from ``base``."""
        if callable(base):
            return [base(**point) for point in self.points()]
        return [base.with_overrides(**point) for point in self.points()]

    def specs(
        self,
        base: ConfigBase,
        backend: str = "sim",
        backend_options: Mapping[str, Any] = (),
        tags: Sequence[str] = (),
    ) -> List[ExperimentSpec]:
        """One ExperimentSpec per point — the input to a Campaign."""
        return [
            ExperimentSpec(
                config=config,
                backend=backend,
                backend_options=dict(backend_options),
                tags=tuple(tags),
            )
            for config in self.configs(base)
        ]

    def __repr__(self) -> str:
        axes = ", ".join(f"{n}={list(v)!r}" for n, v in self._axes.items())
        return f"Grid({axes})"
