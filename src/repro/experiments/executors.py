"""Campaign executors: how a batch of specs actually gets run.

Strategies behind one protocol (plus the multi-host
:class:`~repro.fleet.scheduler.FleetExecutor`, which lives in
:mod:`repro.fleet` and implements the same ``run(jobs, total, events)``
generator contract):

* :class:`SerialExecutor` — in-process, one spec at a time.  Fully
  deterministic ordering; ``on_curve_point`` events fire synchronously
  (the run shares the observer's process).
* :class:`MultiprocessExecutor` — a ``multiprocessing`` pool.  The sim
  backend is single-threaded pure NumPy, so a compare-style grid
  parallelizes embarrassingly across processes: a genuine wall-clock
  speedup (see ``benchmarks/bench_campaign_executors.py``).  Restricted to
  the ``sim`` backend — the thread and proc backends already saturate
  cores with their own workers, and forking a threaded runtime is unsound;
  their grids stay on :class:`SerialExecutor`.

Executors receive ``(index, spec)`` jobs (indices are campaign-global so
progress lines count cached runs too) and *yield* ``(index, spec, result)``
triples as each run completes — streaming is load-bearing: the Campaign
persists every triple the moment it arrives, which is what makes a killed
campaign resumable from its completed prefix.  Persistence stays in the
Campaign, so a pool worker never touches the store.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from collections import deque
from typing import Dict, Iterator, Sequence, Tuple

from repro.core.metrics import RunResult
from repro.experiments.events import CampaignEvents
from repro.experiments.spec import ExperimentSpec
from repro.runtime.backends import get_backend
from repro.runtime.session import ExperimentPlan

#: an executor job: (campaign-global index, spec)
Job = Tuple[int, ExperimentSpec]


def execute_spec(
    spec: ExperimentSpec, on_curve_point=None, obs: bool = False, recorder=None
) -> RunResult:
    """Run one spec to completion: plan -> backend -> RunResult.

    Module-level so multiprocessing can pickle it by reference.
    ``on_curve_point`` (in-process callers only) receives each CurvePoint
    as it is recorded.  ``obs=True`` attaches a live trace recorder, so
    ``RunResult.obs`` carries the run's metrics-hub snapshot — execution
    wiring only, never part of the spec (store keys stay obs-agnostic).
    Callers that need the raw trace afterwards (the fleet agent ships it
    over its ``trace`` frame) pass their own ``recorder`` instead.
    """
    backend = get_backend(spec.backend, **spec.backend_options)
    plan = ExperimentPlan.from_config(
        spec.config, build_workers=getattr(backend, "needs_worker_replicas", True)
    )
    if recorder is not None:
        plan.recorder = recorder
    elif obs:
        from repro.obs.recorder import TraceRecorder

        plan.recorder = TraceRecorder(run_id=spec.label())
    plan.on_curve_point = on_curve_point
    return backend.run(plan)


#: pool-worker state installed by :func:`_pool_init` (fork or spawn): the
#: parent's curve-point queue and the campaign's obs flag.  Module globals
#: because pool workers can only receive mp.Queues by inheritance at
#: Pool() creation, not per-task.
_POOL_CURVE_QUEUE = None
_POOL_OBS = False


def _pool_init(queue, obs: bool) -> None:
    """Pool initializer: arm curve-point streaming in this worker."""
    global _POOL_CURVE_QUEUE, _POOL_OBS
    _POOL_CURVE_QUEUE = queue
    _POOL_OBS = bool(obs)


def _execute_job(job: Job) -> Tuple[int, RunResult]:
    """Pool worker wrapper keeping the campaign-global index attached.

    When the pool was armed with a curve queue, every CurvePoint is shipped
    to the parent as ``(index, point)`` the moment it is recorded — the
    parent's poll loop replays them into ``events.on_curve_point``, closing
    the old "pool runs are silent until they finish" gap.
    """
    index, spec = job
    on_curve_point = None
    queue = _POOL_CURVE_QUEUE
    if queue is not None:
        def on_curve_point(point, index=index, queue=queue):
            queue.put((index, point))
    return index, execute_spec(spec, on_curve_point=on_curve_point, obs=_POOL_OBS)


class Executor:
    """Protocol: run jobs, fire events, yield (index, spec, result) as done."""

    name = "abstract"

    def run(
        self, jobs: Sequence[Job], total: int, events: CampaignEvents
    ) -> Iterator[Tuple[int, ExperimentSpec, RunResult]]:
        raise NotImplementedError


class SerialExecutor(Executor):
    """One spec at a time, in-process, with live curve-point streaming."""

    name = "serial"

    def __init__(self, obs: bool = False) -> None:
        self.obs = bool(obs)

    def run(
        self, jobs: Sequence[Job], total: int, events: CampaignEvents
    ) -> Iterator[Tuple[int, ExperimentSpec, RunResult]]:
        for index, spec in jobs:
            events.on_run_start(spec, index, total)
            result = execute_spec(
                spec,
                on_curve_point=lambda point, spec=spec: events.on_curve_point(spec, point),
                obs=self.obs,
            )
            yield index, spec, result


class MultiprocessExecutor(Executor):
    """A process pool over sim-backend specs.

    ``processes`` defaults to ``os.cpu_count()`` capped at the job count.
    ``start_method`` defaults to ``fork`` where the platform offers it
    (cheap on Linux) and ``spawn`` elsewhere; workers re-import ``repro``,
    so the package must be importable in children (it is whenever the
    parent could import it).
    """

    name = "pool"

    def __init__(self, processes: int = 0, start_method: str = "", obs: bool = False) -> None:
        self.processes = processes
        self.start_method = start_method
        self.obs = bool(obs)

    def _context(self):
        method = self.start_method
        if not method:
            method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        return mp.get_context(method)

    def run(
        self, jobs: Sequence[Job], total: int, events: CampaignEvents
    ) -> Iterator[Tuple[int, ExperimentSpec, RunResult]]:
        for _, spec in jobs:
            if spec.backend != "sim":
                raise ValueError(
                    f"MultiprocessExecutor only runs the 'sim' backend; "
                    f"{spec.label()} requests {spec.backend!r} "
                    f"(use SerialExecutor for thread/proc-backend grids)"
                )
        return self._stream(list(jobs), total, events)

    def _stream(
        self, jobs: Sequence[Job], total: int, events: CampaignEvents
    ) -> Iterator[Tuple[int, ExperimentSpec, RunResult]]:
        if not jobs:
            return
        procs = self.processes or (mp.cpu_count() or 1)
        procs = max(1, min(procs, len(jobs)))
        ctx = self._context()
        specs_by_index = {index: spec for index, spec in jobs}
        curve_queue = ctx.Queue()
        # Jobs are submitted one per free pool slot and on_run_start fires
        # at submission, so a start line means the run is actually beginning
        # — not "every cell started at t=0" as the old bulk submit claimed.
        # Completed runs are yielded (and persisted by the Campaign) the
        # moment they land, never behind a slower earlier job.  Workers
        # stream CurvePoints back over curve_queue (inherited at Pool
        # creation); the poll loop replays them into the observer live.
        with ctx.Pool(
            processes=procs, initializer=_pool_init, initargs=(curve_queue, self.obs)
        ) as pool:
            pending = deque(jobs)
            inflight: Dict[int, Tuple[ExperimentSpec, "mp.pool.AsyncResult"]] = {}
            while pending or inflight:
                while pending and len(inflight) < procs:
                    index, spec = pending.popleft()
                    events.on_run_start(spec, index, total)
                    inflight[index] = (
                        spec,
                        pool.apply_async(_execute_job, ((index, spec),)),
                    )
                self._drain_curve_points(curve_queue, specs_by_index, events)
                done = [i for i, (_, handle) in inflight.items() if handle.ready()]
                if not done:
                    time.sleep(0.01)
                    continue
                for i in sorted(done):
                    spec, handle = inflight.pop(i)
                    index, result = handle.get()  # re-raises a job's failure
                    yield index, spec, result
            self._drain_curve_points(curve_queue, specs_by_index, events)

    @staticmethod
    def _drain_curve_points(queue, specs_by_index, events: CampaignEvents) -> None:
        """Replay every queued (index, CurvePoint) into the observer."""
        while True:
            try:
                index, point = queue.get_nowait()
            except Exception:  # queue.Empty — nothing buffered right now
                return
            spec = specs_by_index.get(index)
            if spec is not None:
                events.on_curve_point(spec, point)


def make_executor(
    jobs: int = 1, agents: str = "", agent_timeout: float = 0.0, obs: bool = False
) -> Executor:
    """The CLI's executor rule: ``--agents`` -> fleet, ``--jobs N`` -> pool.

    ``agents`` is a ``"host:port,host:port"`` roster; when given it wins
    (and combining it with ``--jobs > 1`` is a caller error the CLI
    rejects before getting here).  ``agent_timeout`` overrides the
    scheduler's liveness window — it must exceed the agents' heartbeat
    interval (``repro agent --heartbeat``), so raise both together.
    Imported lazily: the fleet scheduler builds on this module, not the
    other way around.
    """
    if agents:
        from repro.fleet.scheduler import FleetExecutor

        options = {"heartbeat_timeout": agent_timeout} if agent_timeout else {}
        return FleetExecutor(agents=[agents], obs=obs, **options)
    if jobs <= 1:
        return SerialExecutor(obs=obs)
    return MultiprocessExecutor(processes=jobs, obs=obs)
