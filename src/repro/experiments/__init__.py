"""repro.experiments — the declarative experiment API.

The paper's evidence is *campaigns* — every algorithm × worker count ×
seed, summarized into curves and overhead tables.  This package expresses
those grids declaratively and executes them with resume, parallelism and
persistence:

* :mod:`~repro.experiments.spec` — :class:`ExperimentSpec`: config +
  backend + options + tags, content-addressed by :meth:`ExperimentSpec.key`.
* :mod:`~repro.experiments.sweep` — :class:`Sweep`/:class:`Grid`
  combinators expanding axes (algorithms, worker counts, seeds, cluster
  timing models) into spec lists.
* :mod:`~repro.experiments.store` — :class:`ResultStore`: one JSON per
  run keyed by spec hash; skip-if-cached resume; ``summarize()`` for the
  paper-style tables.
* :mod:`~repro.experiments.executors` — :class:`SerialExecutor` and the
  sim-backend :class:`MultiprocessExecutor` pool.
* :mod:`~repro.experiments.campaign` — :class:`Campaign`: dedupe, resume,
  execute, persist, notify.
* :mod:`~repro.experiments.events` — :class:`CampaignEvents` observer
  hooks (``on_run_start`` / ``on_curve_point`` / ``on_run_end``).

Quickstart::

    from repro.core import TrainingConfig
    from repro.experiments import Campaign, Grid, ResultStore, Sweep

    grid = (Sweep("algorithm", ["asgd", "dc-asgd", "lc-asgd"])
            * Sweep("num_workers", [4, 8])
            * Sweep("seed", [0, 1, 2]))
    campaign = Campaign(
        grid.specs(TrainingConfig.small_cifar),
        store=ResultStore("out/sweep"),
    )
    report = campaign.run()          # rerunning resumes from out/sweep
    rows = report.summarize()        # (algorithm x M) seed-averaged table
"""

from repro.experiments.campaign import Campaign, CampaignResult, CampaignRun
from repro.experiments.events import CampaignEvents, ConsoleEvents
from repro.experiments.executors import (
    Executor,
    MultiprocessExecutor,
    SerialExecutor,
    execute_spec,
    make_executor,
)
from repro.experiments.spec import ExperimentSpec
from repro.experiments.store import (
    MergeReport,
    ResultStore,
    StoreRecord,
    format_summary,
    parse_filters,
    record_matches,
    summarize_results,
)
from repro.experiments.sweep import Grid, Sweep

__all__ = [
    "Campaign",
    "CampaignResult",
    "CampaignRun",
    "CampaignEvents",
    "ConsoleEvents",
    "Executor",
    "SerialExecutor",
    "MultiprocessExecutor",
    "make_executor",
    "execute_spec",
    "ExperimentSpec",
    "ResultStore",
    "StoreRecord",
    "MergeReport",
    "summarize_results",
    "format_summary",
    "parse_filters",
    "record_matches",
    "Grid",
    "Sweep",
]
