"""Campaign: execute a batch of ExperimentSpecs with resume and events.

The runner at the heart of the declarative API.  A Campaign takes the
specs a :class:`~repro.experiments.sweep.Grid` expanded, dedupes them by
content key, skips whatever its :class:`~repro.experiments.store.
ResultStore` already holds (resume), hands the remainder to an
:class:`~repro.experiments.executors.Executor`, persists every fresh
result, and reports progress through
:class:`~repro.experiments.events.CampaignEvents`.

    store = ResultStore("out/")
    specs = grid.specs(TrainingConfig.small_cifar)
    campaign = Campaign(specs, store=store, executor=MultiprocessExecutor(4))
    report = campaign.run()
    print(format_summary(report.summarize()))

Running the same campaign twice completes instantly the second time: every
spec resolves from the store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.core.metrics import RunResult
from repro.experiments.events import CampaignEvents
from repro.experiments.executors import Executor, SerialExecutor
from repro.experiments.spec import ExperimentSpec
from repro.experiments.store import ResultStore, scenario_label, summarize_results
from repro.utils.logging import get_logger

logger = get_logger("experiments.campaign")


@dataclass(frozen=True)
class CampaignRun:
    """One completed cell: its spec, key, result and provenance."""

    spec: ExperimentSpec
    key: str
    result: RunResult
    cached: bool  # True if the result came from the store, not execution


class CampaignResult:
    """Every run of a finished campaign, in spec order."""

    def __init__(self, runs: Sequence[CampaignRun]) -> None:
        self.runs: List[CampaignRun] = list(runs)

    @property
    def results(self) -> List[RunResult]:
        return [run.result for run in self.runs]

    @property
    def executed(self) -> List[CampaignRun]:
        """Runs actually computed this invocation."""
        return [run for run in self.runs if not run.cached]

    @property
    def cached(self) -> List[CampaignRun]:
        """Runs resolved from the store."""
        return [run for run in self.runs if run.cached]

    def summarize(self) -> List[Dict[str, Any]]:
        """Paper-style aggregate rows (see store.summarize_results)."""
        return summarize_results(
            self.results,
            scenarios=[scenario_label(run.spec.config.to_dict()) for run in self.runs],
        )

    def __len__(self) -> int:
        return len(self.runs)


class Campaign:
    """Run a deduplicated batch of specs with optional store and events."""

    def __init__(
        self,
        specs: Sequence[ExperimentSpec],
        executor: Optional[Executor] = None,
        store: Optional[ResultStore] = None,
        events: Optional[CampaignEvents] = None,
    ) -> None:
        if not specs:
            raise ValueError("a campaign needs at least one spec")
        self.specs = _dedupe(specs)
        self.executor = executor if executor is not None else SerialExecutor()
        self.store = store
        self.events = events if events is not None else CampaignEvents()

    # ------------------------------------------------------------------ #
    def run(self) -> CampaignResult:
        """Execute (or recall) every spec and return the full result set."""
        total = len(self.specs)
        slots: List[Optional[CampaignRun]] = [None] * total
        pending: List = []

        for index, spec in enumerate(self.specs):
            key = spec.key()
            cached = self.store.get(key) if self.store is not None else None
            if cached is not None:
                slots[index] = CampaignRun(spec=spec, key=key, result=cached, cached=True)
            else:
                pending.append((index, spec))

        self.events.on_campaign_start(total, total - len(pending))
        logger.info(
            "campaign: %d spec(s), %d cached, %d to run via %s",
            total, total - len(pending), len(pending), self.executor.name,
        )

        # cached runs report first, in order, so progress output is stable
        for index, run in enumerate(slots):
            if run is not None:
                self.events.on_run_end(run.spec, run.result, True, index, total)

        # executors yield each run as it completes; persisting inside the
        # loop is what makes a killed campaign resume from its finished
        # prefix instead of losing the whole batch
        for index, spec, result in self.executor.run(pending, total, self.events):
            key = spec.key()
            if slots[index] is not None:
                # a retrying executor (fleet requeue) must dedupe before
                # yielding; catching it here keeps a buggy one from
                # silently double-counting a cell in events and the store
                raise RuntimeError(
                    f"executor {self.executor.name!r} yielded cell {index} twice"
                )
            if self.store is not None:
                self.store.put(spec, result)
            slots[index] = CampaignRun(spec=spec, key=key, result=result, cached=False)
            self.events.on_run_end(spec, result, False, index, total)

        runs = [run for run in slots if run is not None]
        assert len(runs) == total, "executor dropped a job"
        report = CampaignResult(runs)
        self.events.on_campaign_end(report)
        return report


def _dedupe(specs: Sequence[ExperimentSpec]) -> List[ExperimentSpec]:
    """Drop later duplicates by content key (e.g. sgd at every M is one run)."""
    seen = set()
    unique: List[ExperimentSpec] = []
    for spec in specs:
        key = spec.key()
        if key not in seen:
            seen.add(key)
            unique.append(spec)
    if len(unique) < len(specs):
        logger.info("campaign: deduplicated %d identical spec(s)", len(specs) - len(unique))
    return unique
