"""ResultStore: content-addressed JSON persistence for campaign runs.

Each run is one file, ``<key>.json``, where the key is the spec's hash
(:meth:`~repro.experiments.spec.ExperimentSpec.key`).  That gives three
properties the hand-rolled ``--json`` dump never had:

* **resume** — re-running a campaign skips every spec whose key is already
  on disk, so an interrupted grid finishes from where it stopped;
* **dedup** — two identical specs (e.g. ``sgd`` normalized to one worker
  at every swept worker count) share one file;
* **aggregation** — :meth:`ResultStore.summarize` rebuilds the paper-style
  (algorithm × workers) tables from whatever runs have landed so far.

Writes are atomic (temp file + rename) so a killed campaign never leaves a
half-written record behind to poison a resume.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.metrics import RunResult
from repro.experiments.spec import ExperimentSpec

#: schema version stamped into every record
STORE_VERSION = 1

#: a ``*.tmp`` file older than this is an orphan from a killed writer; a
#: younger one may be a concurrent writer mid-``put`` and must be left alone
STALE_TMP_SECONDS = 600.0


def _to_builtin(value: Any) -> Any:
    """JSON default hook: numpy scalars/arrays -> native Python."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serializable: {type(value).__name__}")


@dataclass(frozen=True)
class StoreRecord:
    """One persisted run: its key, the spec document, and the result."""

    key: str
    spec: Dict[str, Any]
    result: RunResult


@dataclass(frozen=True)
class MergeReport:
    """What a :meth:`ResultStore.merge` actually did, key by key."""

    copied: Tuple[str, ...]  # only in the source: now here too
    skipped: Tuple[str, ...]  # key collision, existing record kept
    replaced: Tuple[str, ...]  # key collision, source record won (overwrite)

    def __str__(self) -> str:
        return (
            f"{len(self.copied)} copied, {len(self.skipped)} skipped, "
            f"{len(self.replaced)} replaced"
        )


class ResultStore:
    """A directory of ``<key>.json`` run records."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # a SIGKILL between mkstemp and os.replace strands a *.tmp file;
        # they are incomplete by construction, so sweep them on open (only
        # completed records ever carry the .json suffix).  The age gate
        # protects a live writer: its temp file exists for milliseconds,
        # never STALE_TMP_SECONDS.
        cutoff = time.time() - STALE_TMP_SECONDS
        for orphan in self.root.glob("*.tmp"):
            try:
                if orphan.stat().st_mtime < cutoff:
                    orphan.unlink()
            except OSError:
                pass  # racing store instance already collected it

    # ------------------------------------------------------------------ #
    def path_for(self, spec_or_key: Union[ExperimentSpec, str]) -> Path:
        """The file a spec (or raw key) lives at."""
        key = spec_or_key.key() if isinstance(spec_or_key, ExperimentSpec) else spec_or_key
        return self.root / f"{key}.json"

    def __contains__(self, spec_or_key: Union[ExperimentSpec, str]) -> bool:
        return self.path_for(spec_or_key).exists()

    def __len__(self) -> int:
        return len(self.keys())

    def keys(self) -> Tuple[str, ...]:
        """Keys of every persisted record, sorted."""
        return tuple(sorted(p.stem for p in self.root.glob("*.json")))

    # ------------------------------------------------------------------ #
    def put(self, spec: ExperimentSpec, result: RunResult) -> Path:
        """Persist one run atomically; returns the record path."""
        path = self.path_for(spec)
        payload = {
            "version": STORE_VERSION,
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=2, default=_to_builtin)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def get(self, spec_or_key: Union[ExperimentSpec, str]) -> Optional[RunResult]:
        """The stored result for a spec/key, or None if absent."""
        path = self.path_for(spec_or_key)
        if not path.exists():
            return None
        return self._load(path).result

    def load(self, key: str) -> StoreRecord:
        """The full record under ``key``; missing keys raise."""
        path = self.path_for(key)
        if not path.exists():
            raise KeyError(f"no record {key!r} in {self.root}")
        return self._load(path)

    def records(self) -> Iterator[StoreRecord]:
        """Every persisted record, in key order."""
        for key in self.keys():
            yield self._load(self.path_for(key))

    def results(self) -> List[RunResult]:
        """Every persisted RunResult, in key order."""
        return [record.result for record in self.records()]

    def _load(self, path: Path) -> StoreRecord:
        with open(path) as fh:
            payload = json.load(fh)
        return StoreRecord(
            key=path.stem,
            spec=payload["spec"],
            result=RunResult.from_dict(payload["result"]),
        )

    # ------------------------------------------------------------------ #
    def merge(self, other: "ResultStore", overwrite: bool = False) -> "MergeReport":
        """Fold another store's records into this one, key-wise.

        This is how independently-collected fleet stores combine: keys are
        content-addressed, so a record only in ``other`` is simply copied,
        and a key present in both names the *same experiment* — the
        results may differ in nondeterministic detail (wall time, real
        staleness), never in identity.  Collisions keep the existing
        record unless ``overwrite`` is set; either way the report says
        exactly what happened so callers can audit a merge.

        Every source record is parsed before it is copied — a truncated
        or hand-mangled file fails the merge instead of poisoning the
        destination — and copies are atomic (temp file + rename), same as
        :meth:`put`.
        """
        copied: List[str] = []
        skipped: List[str] = []
        replaced: List[str] = []
        for key in other.keys():
            source = other.path_for(key)
            other._load(source)  # validate before it can land here
            if key in self:
                if not overwrite:
                    skipped.append(key)
                    continue
                replaced.append(key)
            else:
                copied.append(key)
            payload = source.read_bytes()
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(payload)
                os.replace(tmp, self.path_for(key))
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
        return MergeReport(
            copied=tuple(copied), skipped=tuple(skipped), replaced=tuple(replaced)
        )

    # ------------------------------------------------------------------ #
    def summarize(
        self, filters: Optional[Dict[str, str]] = None
    ) -> List[Dict[str, Any]]:
        """Paper-style aggregate rows over the store, optionally filtered.

        ``filters`` uses the :func:`record_matches` vocabulary (the CLI's
        ``report --filter tag=... --filter algo=...``).
        """
        records = [
            r for r in self.records() if filters is None or record_matches(r, filters)
        ]
        return summarize_results(
            [r.result for r in records],
            scenarios=[scenario_label(r.spec.get("config", {})) for r in records],
        )


# ---------------------------------------------------------------------- #
# record filtering (the CLI's ``report --filter``)
# ---------------------------------------------------------------------- #
#: filter-name aliases: short CLI spellings -> the field they mean
FILTER_ALIASES = {
    "algo": "algorithm",
    "workers": "num_workers",
    "topo": "topology",
    "codec": "comm_codec",
}


def parse_filters(items: Sequence[str]) -> Dict[str, str]:
    """``["tag=sweep", "algo=lc-asgd"]`` -> {"tag": "sweep", "algorithm": ...}.

    Repeated ``--filter`` flags AND together; repeating the same *name*
    raises (two values for one field can never both match, and silently
    keeping the last one would hide a typo'd query).
    """
    filters: Dict[str, str] = {}
    for item in items:
        name, sep, value = str(item).partition("=")
        name = name.strip()
        if not sep or not name or not value.strip():
            raise ValueError(f"filter {item!r} is not name=value")
        name = FILTER_ALIASES.get(name, name)
        if name in filters:
            raise ValueError(f"filter {name!r} given twice")
        filters[name] = value.strip()
    return filters


def record_matches(record: StoreRecord, filters: Dict[str, str]) -> bool:
    """Does one record satisfy every filter?

    ``tag`` matches membership in the spec's tag list; ``backend`` matches
    the spec's backend; every other name looks up the spec's *config*
    document (``algorithm``, ``num_workers``, ``dataset``, ``model``,
    ``seed``, ``epochs``, ...) and compares stringified values, so
    ``num_workers=4`` works without the caller knowing field types.
    Filtering on a field the config doesn't have matches nothing rather
    than raising — stores legitimately mix schema versions.
    """
    spec = record.spec
    config = spec.get("config", {})
    for name, value in filters.items():
        if name == "tag":
            if value not in [str(t) for t in spec.get("tags", [])]:
                return False
        elif name == "backend":
            if str(spec.get("backend", "")) != value:
                return False
        elif name == "topology":
            # every config carries the field, but only decentralized runs
            # read it — match the *effective* topology ("" for a parameter-
            # server run), mirroring RunResult.topology
            effective = (
                str(config.get(name, ""))
                if str(config.get("algorithm", "")) == "ad-psgd"
                else ""
            )
            if effective != value:
                return False
        elif name == "comm_codec":
            # same effective-value contract as topology: only the backends
            # that move bytes honor the codec (RunResult.codec is "" on the
            # pure simulator and on gossip runs)
            honored = (
                str(spec.get("backend", "")) in ("thread", "proc")
                and str(config.get("algorithm", "")) != "ad-psgd"
            )
            effective = str(config.get(name, "raw32")) if honored else ""
            if effective != value:
                return False
        else:
            if name not in config or str(config[name]) != value:
                return False
    return True


# ---------------------------------------------------------------------- #
# aggregation (shared by the store and in-memory campaign results)
# ---------------------------------------------------------------------- #
def scenario_label(config: Dict[str, Any]) -> str:
    """Short workload handle (dataset/model/epochs) for summary grouping.

    A RunResult alone does not know what data it trained on; grouping by
    this label keeps runs from different presets (or epoch budgets) in
    separate rows when one store accumulates several campaigns.
    """
    if not config:
        return ""
    return (
        f"{config.get('dataset', '?')}/{config.get('model', '?')}"
        f"/e{config.get('epochs', '?')}"
    )


def summarize_results(
    results: Sequence[RunResult], scenarios: Optional[Sequence[str]] = None
) -> List[Dict[str, Any]]:
    """Group runs by (scenario, algorithm, workers, backend), average seeds.

    Row fields mirror the paper's tables: seed-averaged final/best test
    error, mean staleness, clock time, and per-iteration predictor
    overhead (Tables 2-3) where recorded.  ``scenarios`` (parallel to
    ``results``) separates runs of different workloads that share an
    algorithm/worker cell; without it every run lands in scenario "".
    """
    if scenarios is None:
        scenarios = [""] * len(results)
    elif len(scenarios) != len(results):
        # zip would silently truncate and misattribute runs to rows
        raise ValueError(
            f"scenarios ({len(scenarios)}) and results ({len(results)}) must "
            f"be parallel sequences"
        )
    cells: Dict[Tuple[str, str, str, str, int, str], List[RunResult]] = {}
    for result, scenario in zip(results, scenarios):
        cells.setdefault(
            (
                scenario,
                result.algorithm,
                result.topology,
                result.codec,
                result.num_workers,
                result.backend,
            ),
            [],
        ).append(result)

    rows: List[Dict[str, Any]] = []
    for (scenario, algorithm, topology, codec, workers, backend), runs in sorted(
        cells.items()
    ):
        final_errors = np.array([r.final_test_error for r in runs], dtype=np.float64)
        rows.append(
            {
                "scenario": scenario,
                "algorithm": algorithm,
                "topology": topology,
                "codec": codec,
                "num_workers": workers,
                "backend": backend,
                "runs": len(runs),
                "seeds": sorted(r.seed for r in runs),
                "final_test_error": float(final_errors.mean()),
                "final_test_error_std": float(final_errors.std()),
                "best_test_error": float(np.mean([r.best_test_error for r in runs])),
                "mean_staleness": float(
                    np.mean([r.staleness.get("mean", 0.0) for r in runs])
                ),
                "clock_time": float(np.mean([r.total_virtual_time for r in runs])),
                "loss_pred_ms": float(
                    np.mean([r.timers.get("loss_pred_ms", 0.0) for r in runs])
                ),
                # unified CommStats keys (zero on runs that moved no bytes)
                "wire_mb": float(
                    np.mean([r.comm.get("wire_bytes", 0.0) for r in runs]) / 1e6
                ),
                "logical_mb": float(
                    np.mean([r.comm.get("logical_bytes", 0.0) for r in runs]) / 1e6
                ),
            }
        )
    return rows


def format_summary(rows: Sequence[Dict[str, Any]]) -> str:
    """Render summarize() rows as the CLI's aligned text table.

    The scenario column appears only when the rows span more than one
    workload (one campaign's table stays compact).
    """
    if not rows:
        return "(no runs)"
    scenarios = {row.get("scenario", "") for row in rows}
    show_scenario = len(scenarios) > 1
    scen_w = max(len("scenario"), *(len(s) for s in scenarios)) if show_scenario else 0
    # decentralized rows carry a peer graph; the column appears only when
    # at least one run has one (server-only tables stay compact)
    show_topology = any(row.get("topology", "") for row in rows)
    # codec and wire columns appear when some run honored a codec / moved
    # bytes — pure-sim tables stay exactly as compact as before
    show_codec = any(row.get("codec", "") for row in rows)
    show_wire = any(row.get("wire_mb", 0.0) > 0 for row in rows)
    header = (
        (f"{'scenario':<{scen_w}} " if show_scenario else "")
        + f"{'algorithm':<10} "
        + (f"{'topology':<9} " if show_topology else "")
        + (f"{'codec':<6} " if show_codec else "")
        + f"{'M':>3} {'backend':<7} {'runs':>4} "
        f"{'test err':>9} {'±std':>7} {'best':>7} {'stale':>6} {'clock(s)':>9}"
        + (f" {'wire MB':>8}" if show_wire else "")
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            (f"{row.get('scenario', ''):<{scen_w}} " if show_scenario else "")
            + f"{row['algorithm']:<10} "
            + (f"{row.get('topology', '') or '-':<9} " if show_topology else "")
            + (f"{row.get('codec', '') or '-':<6} " if show_codec else "")
            + f"{row['num_workers']:>3} {row['backend']:<7} "
            f"{row['runs']:>4} {row['final_test_error']:>8.2%} "
            f"{row['final_test_error_std']:>7.4f} {row['best_test_error']:>6.2%} "
            f"{row['mean_staleness']:>6.1f} {row['clock_time']:>9.1f}"
            + (f" {row.get('wire_mb', 0.0):>8.2f}" if show_wire else "")
        )
    return "\n".join(lines)
