"""Learning-rate schedules.

The paper uses step decay: "an initial learning rate of 0.3 ... divided by
ten after 80 and 120 epochs" (CIFAR-10) and "reduced by ten times at the
60th and 90th epoch" (ImageNet) — :class:`MultiStepLR` with those
milestones.  Schedules are pure functions of the epoch index so the
parameter server and all workers agree without extra communication.
"""

from __future__ import annotations

import math
from typing import Sequence


class LRSchedule:
    """Base class: map an epoch index to a learning rate."""

    def __init__(self, base_lr: float) -> None:
        if base_lr <= 0:
            raise ValueError(f"base_lr must be positive, got {base_lr}")
        self.base_lr = float(base_lr)

    def lr_at(self, epoch: int) -> float:
        """Learning rate for ``epoch`` (0-based)."""
        raise NotImplementedError

    def __call__(self, epoch: int) -> float:
        return self.lr_at(epoch)


class ConstantLR(LRSchedule):
    """Fixed learning rate."""

    def lr_at(self, epoch: int) -> float:
        return self.base_lr


class MultiStepLR(LRSchedule):
    """Multiply the rate by ``gamma`` at each milestone epoch.

    >>> sched = MultiStepLR(0.3, milestones=(80, 120), gamma=0.1)
    >>> sched.lr_at(79), sched.lr_at(80), sched.lr_at(120)
    (0.3, 0.03, 0.003...)
    """

    def __init__(self, base_lr: float, milestones: Sequence[int], gamma: float = 0.1) -> None:
        super().__init__(base_lr)
        milestones = tuple(int(m) for m in milestones)
        if sorted(milestones) != list(milestones):
            raise ValueError("milestones must be sorted ascending")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.milestones = milestones
        self.gamma = float(gamma)

    def lr_at(self, epoch: int) -> float:
        drops = sum(1 for m in self.milestones if epoch >= m)
        return self.base_lr * self.gamma**drops


class CosineLR(LRSchedule):
    """Cosine annealing from ``base_lr`` to ``min_lr`` over ``total_epochs``."""

    def __init__(self, base_lr: float, total_epochs: int, min_lr: float = 0.0) -> None:
        super().__init__(base_lr)
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        if min_lr < 0 or min_lr > base_lr:
            raise ValueError("min_lr must be in [0, base_lr]")
        self.total_epochs = int(total_epochs)
        self.min_lr = float(min_lr)

    def lr_at(self, epoch: int) -> float:
        t = min(max(epoch, 0), self.total_epochs) / self.total_epochs
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + math.cos(math.pi * t))
