"""Optimizers and learning-rate schedules."""

from repro.optim.sgd import SGD
from repro.optim.lr_scheduler import ConstantLR, CosineLR, LRSchedule, MultiStepLR

__all__ = ["SGD", "LRSchedule", "MultiStepLR", "ConstantLR", "CosineLR"]
