"""Stochastic gradient descent with momentum / Nesterov / weight decay.

Used both by the sequential-SGD baseline and by the server-side online
training of the loss and step predictors (Algorithms 3-4).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


class SGD:
    """Plain SGD over a list of :class:`~repro.nn.module.Parameter`.

    Parameters
    ----------
    params:
        Parameters to update (e.g. ``model.parameters()``).
    lr:
        Learning rate (mutable via :attr:`lr` for schedules).
    momentum:
        Classical momentum coefficient; 0 disables the velocity buffer.
    weight_decay:
        L2 penalty added to the gradient.
    nesterov:
        Use Nesterov lookahead (requires ``momentum > 0``).
    max_grad_norm:
        Optional global gradient-norm clip applied before the update.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
        max_grad_norm: Optional[float] = None,
    ) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("SGD received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if momentum < 0 or weight_decay < 0:
            raise ValueError("momentum and weight_decay must be non-negative")
        if nesterov and momentum == 0:
            raise ValueError("nesterov requires momentum > 0")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = bool(nesterov)
        self.max_grad_norm = max_grad_norm
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.params)

    def zero_grad(self) -> None:
        """Clear parameter gradients."""
        for p in self.params:
            p.grad = None

    def _clip(self) -> None:
        if self.max_grad_norm is None:
            return
        total = 0.0
        for p in self.params:
            if p.grad is not None:
                total += float((p.grad.astype(np.float64) ** 2).sum())
        norm = np.sqrt(total)
        if norm > self.max_grad_norm and norm > 0:
            scale = self.max_grad_norm / norm
            for p in self.params:
                if p.grad is not None:
                    p.grad = p.grad * scale

    def step(self) -> None:
        """Apply one update using the currently accumulated gradients."""
        self._clip()
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                vel = self.momentum * self._velocity[i] + grad
                self._velocity[i] = vel
                grad = grad + self.momentum * vel if self.nesterov else vel
            p.data = p.data - self.lr * grad

    def state_dict(self) -> dict:
        """Snapshot of hyper-parameters and velocity buffers."""
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "nesterov": self.nesterov,
            "velocity": [None if v is None else v.copy() for v in self._velocity],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot created by :meth:`state_dict`."""
        self.lr = state["lr"]
        self.momentum = state["momentum"]
        self.weight_decay = state["weight_decay"]
        self.nesterov = state["nesterov"]
        velocity = state["velocity"]
        if len(velocity) != len(self.params):
            raise ValueError("velocity buffer count mismatch")
        self._velocity = [None if v is None else v.copy() for v in velocity]
