"""The :class:`Tensor` type and its reverse-mode autograd machinery.

Design notes
------------
* A ``Tensor`` wraps a NumPy array (``.data``) and, when gradients are
  enabled and required, a backward closure plus references to its parents.
* ``backward()`` runs an iterative topological sort (no recursion limits on
  deep LSTM graphs) and accumulates gradients into ``.grad``.
* Broadcasting follows NumPy semantics; ``_unbroadcast`` reduces an upstream
  gradient back to a parent's shape, which makes every binary op correct for
  arbitrary broadcast patterns (property-tested with hypothesis).
* Dtypes are preserved: float32 for training-speed paths, float64 for the
  numeric gradient checks.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np
from repro.utils.rng import fallback_rng

Scalar = Union[int, float]
TensorLike = Union["Tensor", np.ndarray, Scalar, Sequence]

# Grad mode is per-thread: the thread runtime evaluates under no_grad() on
# the server actor while worker threads are mid-forward, and a process-wide
# flag would sever their graphs.  Every thread starts with grads enabled.
_grad_state = threading.local()


def is_grad_enabled() -> bool:
    """Return whether autograd graph recording is active on this thread."""
    return getattr(_grad_state, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph recording (evaluation / inference).

    Scoped to the calling thread; concurrent threads keep their own mode.
    """
    previous = is_grad_enabled()
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (shape of a broadcast result) back to ``shape``.

    Sums over leading axes added by broadcasting and over axes of size one.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading dimensions that were prepended by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An N-dimensional array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like payload; coerced to a NumPy array (default float32 for
        floating input).
    requires_grad:
        Whether gradients should be accumulated into this tensor by
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: TensorLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[], None]] = None,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype == np.float64 and not isinstance(data, (np.ndarray, np.generic)):
            # Python floats / lists default to float32 to match DL practice;
            # NumPy arrays and scalars keep their dtype (float64 matters for
            # the numeric gradient checks).
            arr = arr.astype(np.float32)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Optional[Callable[[], None]] = _backward
        self._parents: Tuple["Tensor", ...] = _parents
        self.name = name

    # ------------------------------------------------------------------ #
    # basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        """Dtype of the underlying array."""
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        """Transpose of a 2-D tensor (alias for :meth:`transpose`)."""
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy); treat as read-only."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_err()

    @staticmethod
    def _item_err() -> float:
        raise ValueError("item() is only valid for single-element tensors")

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a detached deep copy."""
        return Tensor(self.data.copy(), requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        """Return a detached cast copy."""
        return Tensor(self.data.astype(dtype), requires_grad=False)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------ #
    # autograd plumbing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[], None],
    ) -> "Tensor":
        """Build an op result, recording the graph only when useful."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        if requires:
            return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)
        return Tensor(data, requires_grad=False)

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad`` (allocating on first use)."""
        if grad.dtype != self.data.dtype:
            grad = grad.astype(self.data.dtype)
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None else grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[Union[np.ndarray, "Tensor"]] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to ``ones_like(self)``; the common case
            is a scalar loss where the seed is simply 1.0.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            seed = np.ones_like(self.data)
        elif isinstance(grad, Tensor):
            seed = np.asarray(grad.data, dtype=self.data.dtype)
        else:
            seed = np.asarray(grad, dtype=self.data.dtype)
        if seed.shape != self.data.shape:
            seed = np.broadcast_to(seed, self.data.shape).astype(self.data.dtype)

        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent._parents:
                    stack.append((parent, False))
                elif id(parent) not in visited:
                    # leaf: still record once so ordering set stays consistent
                    visited.add(id(parent))

        self._accumulate(seed)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # ------------------------------------------------------------------ #
    # elementwise arithmetic
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(other: TensorLike, like: "Tensor") -> "Tensor":
        if isinstance(other, Tensor):
            return other
        arr = np.asarray(other, dtype=like.data.dtype)
        return Tensor(arr)

    def __add__(self, other: TensorLike) -> "Tensor":
        other = Tensor._coerce(other, self)
        out_data = self.data + other.data

        def _backward() -> None:
            if self.requires_grad or self._parents:
                self._accumulate(_unbroadcast(out.grad, self.data.shape))
            if other.requires_grad or other._parents:
                other._accumulate(_unbroadcast(out.grad, other.data.shape))

        out = Tensor._make(out_data, (self, other), _backward)
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def _backward() -> None:
            self._accumulate(-out.grad)

        out = Tensor._make(-self.data, (self,), _backward)
        return out

    def __sub__(self, other: TensorLike) -> "Tensor":
        other = Tensor._coerce(other, self)
        out_data = self.data - other.data

        def _backward() -> None:
            if self.requires_grad or self._parents:
                self._accumulate(_unbroadcast(out.grad, self.data.shape))
            if other.requires_grad or other._parents:
                other._accumulate(_unbroadcast(-out.grad, other.data.shape))

        out = Tensor._make(out_data, (self, other), _backward)
        return out

    def __rsub__(self, other: TensorLike) -> "Tensor":
        return Tensor._coerce(other, self).__sub__(self)

    def __mul__(self, other: TensorLike) -> "Tensor":
        other = Tensor._coerce(other, self)
        out_data = self.data * other.data

        def _backward() -> None:
            if self.requires_grad or self._parents:
                self._accumulate(_unbroadcast(out.grad * other.data, self.data.shape))
            if other.requires_grad or other._parents:
                other._accumulate(_unbroadcast(out.grad * self.data, other.data.shape))

        out = Tensor._make(out_data, (self, other), _backward)
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: TensorLike) -> "Tensor":
        other = Tensor._coerce(other, self)
        out_data = self.data / other.data

        def _backward() -> None:
            if self.requires_grad or self._parents:
                self._accumulate(_unbroadcast(out.grad / other.data, self.data.shape))
            if other.requires_grad or other._parents:
                g = -out.grad * self.data / (other.data * other.data)
                other._accumulate(_unbroadcast(g, other.data.shape))

        out = Tensor._make(out_data, (self, other), _backward)
        return out

    def __rtruediv__(self, other: TensorLike) -> "Tensor":
        return Tensor._coerce(other, self).__truediv__(self)

    def __pow__(self, exponent: Scalar) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor ** only supports scalar exponents")
        out_data = self.data**exponent

        def _backward() -> None:
            self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        out = Tensor._make(out_data, (self,), _backward)
        return out

    def __matmul__(self, other: TensorLike) -> "Tensor":
        other = Tensor._coerce(other, self)
        out_data = self.data @ other.data

        def _backward() -> None:
            a, b, g = self.data, other.data, out.grad
            if self.requires_grad or self._parents:
                if a.ndim == 1 and b.ndim == 1:
                    ga = g * b  # dot product: scalar grad times the other vector
                elif b.ndim == 1:
                    ga = g[..., None] * b  # out[...,i] = sum_j a[...,i,j] b[j]
                else:
                    ga = g @ b.swapaxes(-1, -2)
                self._accumulate(_unbroadcast(ga, a.shape))
            if other.requires_grad or other._parents:
                if a.ndim == 1 and b.ndim == 1:
                    gb = g * a
                elif a.ndim == 1:
                    gb = np.einsum("i,...j->...ij", a, g)
                elif b.ndim == 1:
                    gb = (a.swapaxes(-1, -2) @ g[..., None])[..., 0]
                else:
                    gb = a.swapaxes(-1, -2) @ g
                other._accumulate(_unbroadcast(gb, b.shape))

        out = Tensor._make(out_data, (self, other), _backward)
        return out

    # comparisons produce detached boolean/float tensors (no gradients)
    def __gt__(self, other: TensorLike) -> "Tensor":
        other_data = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data > other_data)

    def __lt__(self, other: TensorLike) -> "Tensor":
        other_data = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data < other_data)

    def __ge__(self, other: TensorLike) -> "Tensor":
        other_data = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data >= other_data)

    def __le__(self, other: TensorLike) -> "Tensor":
        other_data = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data <= other_data)

    # ------------------------------------------------------------------ #
    # unary math
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = np.exp(self.data)

        def _backward() -> None:
            self._accumulate(out.grad * out_data)

        out = Tensor._make(out_data, (self,), _backward)
        return out

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        out_data = np.log(self.data)

        def _backward() -> None:
            self._accumulate(out.grad / self.data)

        out = Tensor._make(out_data, (self,), _backward)
        return out

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        out_data = np.sqrt(self.data)

        def _backward() -> None:
            self._accumulate(out.grad * 0.5 / out_data)

        out = Tensor._make(out_data, (self,), _backward)
        return out

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out_data = np.tanh(self.data)

        def _backward() -> None:
            self._accumulate(out.grad * (1.0 - out_data * out_data))

        out = Tensor._make(out_data, (self,), _backward)
        return out

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid (numerically stable)."""
        x = self.data
        out_data = np.empty_like(x)
        positive = x >= 0
        out_data[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
        ex = np.exp(x[~positive])
        out_data[~positive] = ex / (1.0 + ex)

        def _backward() -> None:
            self._accumulate(out.grad * out_data * (1.0 - out_data))

        out = Tensor._make(out_data, (self,), _backward)
        return out

    def relu(self) -> "Tensor":
        """Elementwise rectified linear unit."""
        mask = self.data > 0
        out_data = np.where(mask, self.data, 0.0).astype(self.data.dtype)

        def _backward() -> None:
            self._accumulate(out.grad * mask)

        out = Tensor._make(out_data, (self,), _backward)
        return out

    def abs(self) -> "Tensor":
        """Elementwise absolute value (subgradient 0 at 0)."""
        out_data = np.abs(self.data)

        def _backward() -> None:
            self._accumulate(out.grad * np.sign(self.data))

        out = Tensor._make(out_data, (self,), _backward)
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values into ``[low, high]``; gradient is 1 inside, 0 outside."""
        mask = (self.data >= low) & (self.data <= high)
        out_data = np.clip(self.data, low, high)

        def _backward() -> None:
            self._accumulate(out.grad * mask)

        out = Tensor._make(out_data, (self,), _backward)
        return out

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all axes when ``None``)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def _backward() -> None:
            g = out.grad
            if not keepdims and axis is not None:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                shape = [1 if i in axes else s for i, s in enumerate(self.data.shape)]
                g = g.reshape(shape)
            self._accumulate(np.broadcast_to(g, self.data.shape).astype(self.data.dtype))

        out = Tensor._make(np.asarray(out_data), (self,), _backward)
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis`` (all axes when ``None``)."""
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum over ``axis``; gradient splits equally among ties."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def _backward() -> None:
            g = out.grad
            expanded = out_data
            if not keepdims and axis is not None:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                shape = [1 if i in axes else s for i, s in enumerate(self.data.shape)]
                g = g.reshape(shape)
                expanded = out_data.reshape(shape)
            elif axis is None:
                expanded = np.asarray(out_data).reshape((1,) * self.data.ndim)
                g = np.asarray(g).reshape((1,) * self.data.ndim)
            mask = (self.data == expanded).astype(self.data.dtype)
            counts = mask.sum(
                axis=axis if axis is not None else None,
                keepdims=True if axis is not None else False,
            )
            if axis is None:
                counts = np.asarray(counts).reshape((1,) * self.data.ndim)
            self._accumulate(mask * g / counts)

        out = Tensor._make(np.asarray(out_data), (self,), _backward)
        return out

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Population variance (ddof=0) over ``axis``, differentiable."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        """Return a reshaped view of the same data (differentiable)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def _backward() -> None:
            self._accumulate(out.grad.reshape(self.data.shape))

        out = Tensor._make(out_data, (self,), _backward)
        return out

    def transpose(self, *axes) -> "Tensor":
        """Permute dimensions (defaults to full reversal, NumPy-style)."""
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        perm = axes if axes else tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(perm)
        inverse = tuple(np.argsort(perm))

        def _backward() -> None:
            self._accumulate(out.grad.transpose(inverse))

        out = Tensor._make(out_data, (self,), _backward)
        return out

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def _backward() -> None:
            g = np.zeros_like(self.data)
            np.add.at(g, index, out.grad)
            self._accumulate(g)

        out = Tensor._make(np.asarray(out_data), (self,), _backward)
        return out

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two axes of an (N, C, H, W) tensor."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.data.ndim - 2) + [(padding, padding)] * 2
        out_data = np.pad(self.data, pad_width)

        def _backward() -> None:
            sl = [slice(None)] * (self.data.ndim - 2) + [
                slice(padding, -padding),
                slice(padding, -padding),
            ]
            self._accumulate(out.grad[tuple(sl)])

        out = Tensor._make(out_data, (self,), _backward)
        return out


# ---------------------------------------------------------------------- #
# creation helpers
# ---------------------------------------------------------------------- #
def tensor(data: TensorLike, requires_grad: bool = False, dtype=None) -> Tensor:
    """Create a tensor from array-like data."""
    arr = np.asarray(data.data if isinstance(data, Tensor) else data)
    if dtype is not None:
        arr = arr.astype(dtype)
    elif arr.dtype == np.float64:
        arr = arr.astype(np.float32)
    return Tensor(arr, requires_grad=requires_grad)


def zeros(*shape, requires_grad: bool = False, dtype=np.float32) -> Tensor:
    """All-zero tensor."""
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False, dtype=np.float32) -> Tensor:
    """All-one tensor."""
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)


def full(shape, value: float, requires_grad: bool = False, dtype=np.float32) -> Tensor:
    """Constant-filled tensor."""
    return Tensor(np.full(shape, value, dtype=dtype), requires_grad=requires_grad)


def arange(*args, dtype=np.float32) -> Tensor:
    """``np.arange`` wrapped in a tensor."""
    return Tensor(np.arange(*args).astype(dtype))


def randn(*shape, rng: Optional[np.random.Generator] = None, requires_grad: bool = False, dtype=np.float32) -> Tensor:
    """Standard-normal tensor drawn from ``rng`` (new default_rng if None)."""
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    gen = rng if rng is not None else fallback_rng()
    return Tensor(gen.standard_normal(shape).astype(dtype), requires_grad=requires_grad)


def uniform(*shape, low: float = 0.0, high: float = 1.0, rng: Optional[np.random.Generator] = None, requires_grad: bool = False, dtype=np.float32) -> Tensor:
    """Uniform tensor on ``[low, high)``."""
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    gen = rng if rng is not None else fallback_rng()
    return Tensor(gen.uniform(low, high, shape).astype(dtype), requires_grad=requires_grad)


def zeros_like(t: Tensor, requires_grad: bool = False) -> Tensor:
    """Zero tensor with the shape/dtype of ``t``."""
    return Tensor(np.zeros_like(t.data), requires_grad=requires_grad)


def ones_like(t: Tensor, requires_grad: bool = False) -> Tensor:
    """One tensor with the shape/dtype of ``t``."""
    return Tensor(np.ones_like(t.data), requires_grad=requires_grad)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("concat requires at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def _backward() -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad or t._parents:
                sl = [slice(None)] * out_data.ndim
                sl[axis] = slice(int(start), int(stop))
                t._accumulate(out.grad[tuple(sl)])

    out = Tensor._make(out_data, tuple(tensors), _backward)
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (differentiable)."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("stack requires at least one tensor")
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def _backward() -> None:
        slices = np.moveaxis(out.grad, axis, 0)
        for t, g in zip(tensors, slices):
            if t.requires_grad or t._parents:
                t._accumulate(np.ascontiguousarray(g))

    out = Tensor._make(out_data, tuple(tensors), _backward)
    return out
