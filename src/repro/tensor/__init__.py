"""A reverse-mode automatic-differentiation engine over NumPy arrays.

This subpackage replaces the role PyTorch plays in the paper's original
implementation (see DESIGN.md, substitution table).  It provides a
:class:`~repro.tensor.tensor.Tensor` type that records a dynamic computation
graph and computes exact gradients via reverse-mode AD, plus the
neural-network primitives (:mod:`repro.tensor.functional`) needed by
:mod:`repro.nn`: fused softmax-cross-entropy, im2col convolution, pooling
and batch normalization.

All gradients are verified against central-difference numerics in
``tests/tensor/test_gradcheck.py``.
"""

from repro.tensor.tensor import (
    Tensor,
    arange,
    concat,
    full,
    is_grad_enabled,
    no_grad,
    ones,
    ones_like,
    randn,
    stack,
    tensor,
    uniform,
    zeros,
    zeros_like,
)
from repro.tensor import functional

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "full",
    "arange",
    "randn",
    "uniform",
    "zeros_like",
    "ones_like",
    "concat",
    "stack",
    "no_grad",
    "is_grad_enabled",
    "functional",
]
