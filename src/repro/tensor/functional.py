"""Neural-network primitives with hand-written forward/backward passes.

These are the performance-critical fused ops that a naive composition of
:class:`~repro.tensor.tensor.Tensor` primitives would make slow or
numerically fragile:

* :func:`softmax` / :func:`log_softmax` / :func:`cross_entropy` — max-shifted
  for stability; cross-entropy fuses log-softmax with NLL so its backward is
  the classic ``(softmax - onehot) / N``.
* :func:`conv2d` — im2col forward (strided window view, single GEMM) and
  col2im backward (per-kernel-offset strided accumulation), the standard
  CPU-efficient formulation.
* :func:`max_pool2d` / :func:`avg_pool2d` — window views with argmax
  scatter / uniform spread backward.
* :func:`batch_norm` — returns batch mean/var so the distributed layer can
  ship them to the parameter server (Algorithm 1, lines 6-7).

Every backward here is covered by central-difference gradient checks in
``tests/tensor/test_gradcheck.py``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tensor.tensor import Tensor
from repro.utils.rng import fallback_rng

__all__ = [
    "linear",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "batch_norm",
    "dropout",
]


# ---------------------------------------------------------------------- #
# dense / losses
# ---------------------------------------------------------------------- #
def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` (PyTorch weight layout)."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    ex = np.exp(shifted)
    probs = ex / ex.sum(axis=axis, keepdims=True)

    def _backward() -> None:
        g = out.grad
        dot = (g * probs).sum(axis=axis, keepdims=True)
        x._accumulate(probs * (g - dot))

    out = Tensor._make(probs.astype(x.data.dtype), (x,), _backward)
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    logp = shifted - logsumexp
    probs = np.exp(logp)

    def _backward() -> None:
        g = out.grad
        x._accumulate(g - probs * g.sum(axis=axis, keepdims=True))

    out = Tensor._make(logp.astype(x.data.dtype), (x,), _backward)
    return out


def cross_entropy(logits: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy against integer class ``targets``.

    Parameters
    ----------
    logits:
        ``(N, C)`` unnormalized scores.
    targets:
        ``(N,)`` integer labels in ``[0, C)`` (NumPy array or Tensor).
    reduction:
        ``"mean"`` (default), ``"sum"`` or ``"none"``.
    """
    if isinstance(targets, Tensor):
        targets = targets.data
    targets = np.asarray(targets).astype(np.int64).reshape(-1)
    if logits.data.ndim != 2:
        raise ValueError(f"cross_entropy expects 2-D logits, got shape {logits.shape}")
    n, num_classes = logits.data.shape
    if targets.shape[0] != n:
        raise ValueError(f"targets length {targets.shape[0]} != batch size {n}")
    if targets.min() < 0 or targets.max() >= num_classes:
        raise ValueError("targets out of range for the logit width")

    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    logp = shifted - logsumexp
    losses = -logp[np.arange(n), targets]

    if reduction == "mean":
        value = losses.mean()
    elif reduction == "sum":
        value = losses.sum()
    elif reduction == "none":
        value = losses
    else:
        raise ValueError(f"unknown reduction {reduction!r}")

    probs = np.exp(logp)

    def _backward() -> None:
        g = out.grad
        base = probs.copy()
        base[np.arange(n), targets] -= 1.0
        if reduction == "mean":
            grad = base * (np.asarray(g).reshape(()) / n)
        elif reduction == "sum":
            grad = base * np.asarray(g).reshape(())
        else:
            grad = base * np.asarray(g).reshape(n, 1)
        logits._accumulate(grad.astype(logits.data.dtype))

    out = Tensor._make(np.asarray(value, dtype=logits.data.dtype), (logits,), _backward)
    return out


def nll_loss(logp: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood over precomputed log-probabilities."""
    if isinstance(targets, Tensor):
        targets = targets.data
    targets = np.asarray(targets).astype(np.int64).reshape(-1)
    n = logp.data.shape[0]
    picked = logp[np.arange(n), targets]
    if reduction == "mean":
        return -picked.mean()
    if reduction == "sum":
        return -picked.sum()
    if reduction == "none":
        return -picked
    raise ValueError(f"unknown reduction {reduction!r}")


def mse_loss(pred: Tensor, target, reduction: str = "mean") -> Tensor:
    """Mean squared error between ``pred`` and ``target``."""
    if not isinstance(target, Tensor):
        target = Tensor(np.asarray(target, dtype=pred.data.dtype))
    diff = pred - target
    sq = diff * diff
    if reduction == "mean":
        return sq.mean()
    if reduction == "sum":
        return sq.sum()
    if reduction == "none":
        return sq
    raise ValueError(f"unknown reduction {reduction!r}")


# ---------------------------------------------------------------------- #
# convolution
# ---------------------------------------------------------------------- #
def _window_view(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Return a (N, C, KH, KW, OH, OW) strided window view of ``x``."""
    n, c, h, w = x.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    sn, sc, sh, sw = x.strides
    shape = (n, c, kh, kw, oh, ow)
    strides = (sn, sc, sh, sw, sh * stride, sw * stride)
    return np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)


def _col2im_add(
    grad_cols: np.ndarray, x_shape: Tuple[int, ...], kh: int, kw: int, stride: int
) -> np.ndarray:
    """Scatter-add (N, C, KH, KW, OH, OW) gradients back to (N, C, H, W)."""
    n, c, h, w = x_shape
    oh = grad_cols.shape[4]
    ow = grad_cols.shape[5]
    dx = np.zeros(x_shape, dtype=grad_cols.dtype)
    for i in range(kh):
        hi = i + stride * oh
        for j in range(kw):
            wj = j + stride * ow
            dx[:, :, i:hi:stride, j:wj:stride] += grad_cols[:, :, i, j, :, :]
    return dx


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D cross-correlation of ``x`` (N, C, H, W) with ``weight`` (F, C, KH, KW).

    Implemented as im2col + one GEMM (forward) and per-offset strided
    accumulation (backward), the standard CPU-efficient formulation.
    """
    if x.data.ndim != 4:
        raise ValueError(f"conv2d expects 4-D input, got shape {x.shape}")
    if weight.data.ndim != 4:
        raise ValueError(f"conv2d expects 4-D weight, got shape {weight.shape}")
    n, c, h, w = x.data.shape
    f, wc, kh, kw = weight.data.shape
    if wc != c:
        raise ValueError(f"input channels {c} != weight channels {wc}")
    if padding < 0 or stride < 1:
        raise ValueError("padding must be >= 0 and stride >= 1")

    xp = np.pad(x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding))) if padding else x.data
    hp, wp = xp.shape[2], xp.shape[3]
    if hp < kh or wp < kw:
        raise ValueError("kernel larger than (padded) input")
    oh = (hp - kh) // stride + 1
    ow = (wp - kw) // stride + 1

    cols = _window_view(xp, kh, kw, stride)  # (N, C, KH, KW, OH, OW), view
    # GEMM: (N*OH*OW, C*KH*KW) @ (C*KH*KW, F)
    cols_mat = np.ascontiguousarray(cols.transpose(0, 4, 5, 1, 2, 3)).reshape(
        n * oh * ow, c * kh * kw
    )
    w_mat = weight.data.reshape(f, c * kh * kw)
    out_mat = cols_mat @ w_mat.T
    out_data = out_mat.reshape(n, oh, ow, f).transpose(0, 3, 1, 2)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, f, 1, 1)
    out_data = np.ascontiguousarray(out_data.astype(x.data.dtype))

    def _backward() -> None:
        g = out.grad  # (N, F, OH, OW)
        g_mat = g.transpose(0, 2, 3, 1).reshape(n * oh * ow, f)
        if weight.requires_grad or weight._parents:
            gw = (g_mat.T @ cols_mat).reshape(f, c, kh, kw)
            weight._accumulate(gw.astype(weight.data.dtype))
        if bias is not None and (bias.requires_grad or bias._parents):
            bias._accumulate(g.sum(axis=(0, 2, 3)).astype(bias.data.dtype))
        if x.requires_grad or x._parents:
            gcols_mat = g_mat @ w_mat  # (N*OH*OW, C*KH*KW)
            gcols = gcols_mat.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
            dxp = _col2im_add(gcols, (n, c, hp, wp), kh, kw, stride)
            if padding:
                dxp = dxp[:, :, padding:-padding, padding:-padding]
            x._accumulate(dxp.astype(x.data.dtype))

    parents = (x, weight) if bias is None else (x, weight, bias)
    out = Tensor._make(out_data, parents, _backward)
    return out


# ---------------------------------------------------------------------- #
# pooling
# ---------------------------------------------------------------------- #
def max_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over (kernel_size, kernel_size) windows."""
    stride = stride or kernel_size
    n, c, h, w = x.data.shape
    kh = kw = kernel_size
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    cols = _window_view(x.data, kh, kw, stride)  # view
    flat = np.ascontiguousarray(cols.transpose(0, 1, 4, 5, 2, 3)).reshape(
        n, c, oh, ow, kh * kw
    )
    arg = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]

    def _backward() -> None:
        g = out.grad
        gflat = np.zeros_like(flat)
        np.put_along_axis(gflat, arg[..., None], g[..., None], axis=-1)
        gcols = gflat.reshape(n, c, oh, ow, kh, kw).transpose(0, 1, 4, 5, 2, 3)
        x._accumulate(_col2im_add(gcols, (n, c, h, w), kh, kw, stride).astype(x.data.dtype))

    out = Tensor._make(out_data.astype(x.data.dtype), (x,), _backward)
    return out


def avg_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling over (kernel_size, kernel_size) windows."""
    stride = stride or kernel_size
    n, c, h, w = x.data.shape
    kh = kw = kernel_size
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    cols = _window_view(x.data, kh, kw, stride)
    out_data = cols.mean(axis=(2, 3))

    def _backward() -> None:
        g = out.grad / (kh * kw)
        gcols = np.broadcast_to(g[:, :, None, None, :, :], (n, c, kh, kw, oh, ow))
        x._accumulate(_col2im_add(gcols, (n, c, h, w), kh, kw, stride).astype(x.data.dtype))

    out = Tensor._make(out_data.astype(x.data.dtype), (x,), _backward)
    return out


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial axes: (N, C, H, W) -> (N, C)."""
    return x.mean(axis=(2, 3))


# ---------------------------------------------------------------------- #
# batch normalization
# ---------------------------------------------------------------------- #
def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: Optional[np.ndarray] = None,
    running_var: Optional[np.ndarray] = None,
    training: bool = True,
    eps: float = 1e-5,
) -> Tuple[Tensor, np.ndarray, np.ndarray]:
    """Batch normalization over the channel axis.

    Supports ``(N, C)`` and ``(N, C, H, W)`` inputs.  In training mode the
    batch statistics are used and returned (so the distributed worker can
    ship them to the server per Algorithm 1); in eval mode the provided
    running statistics are used.

    Returns
    -------
    (out, batch_mean, batch_var):
        ``batch_mean``/``batch_var`` are per-channel float64 arrays; in eval
        mode they echo the running statistics.
    """
    if x.data.ndim == 2:
        axes: Tuple[int, ...] = (0,)
        view = (1, -1)
    elif x.data.ndim == 4:
        axes = (0, 2, 3)
        view = (1, -1, 1, 1)
    else:
        raise ValueError(f"batch_norm expects 2-D or 4-D input, got shape {x.shape}")

    if training:
        mean = x.data.mean(axis=axes, dtype=np.float64)
        var = x.data.var(axis=axes, dtype=np.float64)
    else:
        if running_mean is None or running_var is None:
            raise ValueError("eval-mode batch_norm requires running statistics")
        mean = np.asarray(running_mean, dtype=np.float64)
        var = np.asarray(running_var, dtype=np.float64)

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean.reshape(view)) * inv_std.reshape(view)
    out_data = (gamma.data.reshape(view) * x_hat + beta.data.reshape(view)).astype(x.data.dtype)
    count = int(np.prod([x.data.shape[a] for a in axes]))

    def _backward() -> None:
        g = out.grad.astype(np.float64)
        xh = x_hat
        if gamma.requires_grad or gamma._parents:
            gamma._accumulate((g * xh).sum(axis=axes).astype(gamma.data.dtype))
        if beta.requires_grad or beta._parents:
            beta._accumulate(g.sum(axis=axes).astype(beta.data.dtype))
        if x.requires_grad or x._parents:
            gxh = g * gamma.data.reshape(view).astype(np.float64)
            if training:
                # d/dx of normalization with batch statistics
                sum_gxh = gxh.sum(axis=axes, keepdims=True)
                sum_gxh_xh = (gxh * xh).sum(axis=axes, keepdims=True)
                dx = (
                    inv_std.reshape(view)
                    * (gxh - sum_gxh / count - xh * sum_gxh_xh / count)
                )
            else:
                dx = gxh * inv_std.reshape(view)
            x._accumulate(dx.astype(x.data.dtype))

    out = Tensor._make(out_data, (x, gamma, beta), _backward)
    return out, mean, var


def dropout(x: Tensor, p: float, training: bool = True, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout with keep-probability ``1 - p``."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    gen = rng if rng is not None else fallback_rng()
    mask = (gen.random(x.data.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    out_data = x.data * mask

    def _backward() -> None:
        x._accumulate(out.grad * mask)

    out = Tensor._make(out_data, (x,), _backward)
    return out
