"""Fleet agent daemon: accept jobs over TCP, run them, stream results.

``repro agent --bind HOST:PORT --slots N`` starts one of these on every
machine that should contribute compute to a campaign.  The agent:

1. listens for a scheduler (:class:`~repro.fleet.scheduler.FleetExecutor`)
   and answers its ``hello`` with a ``welcome`` announcing ``slots`` — the
   number of cells it will run concurrently;
2. executes each incoming ``job`` frame's :class:`~repro.experiments.spec.
   ExperimentSpec` on a worker pool via the ordinary backend registry
   (:func:`~repro.experiments.executors.execute_spec` — sim, thread and
   proc specs all work, the agent is just a remote executor slot);
3. streams every :class:`~repro.core.metrics.CurvePoint` back as it is
   recorded, then the final :class:`~repro.core.metrics.RunResult`;
4. heartbeats on an interval so the scheduler can tell a slow cell from a
   dead host, and reports a cell's own exception as a ``job_error`` frame
   (the agent survives; deciding whether to retry is the scheduler's job).

Heartbeats flow both ways: the scheduler pulses too, and a session socket
silent for ``SESSION_SILENCE_FACTOR`` intervals — a connection that never
says hello, or a scheduler host that vanished without FIN — is abandoned
rather than holding the session slot forever.

One scheduler at a time: a second connection during an active session is
turned away with a ``busy`` frame.  A scheduler disconnect abandons the
session — queued cells are dropped, in-flight ones are waited out (their
frames go nowhere) so the next session gets the full advertised slots —
and the agent goes back to listening, so one daemon serves many
campaigns.

The daemon trusts its network: anyone who can reach the port can submit
jobs.  Bind to localhost or a private interface, exactly like the
examples in README's "Fleet mode".
"""

from __future__ import annotations

import argparse
import os
import socket
import threading
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

from repro.analysis.lockorder import make_lock
from repro.fleet import protocol
from repro.runtime.wire import ConnectionClosed, FrameConnection, WireError
from repro.utils.logging import get_logger

logger = get_logger("fleet.agent")

#: default seconds between heartbeat frames — both directions: the agent
#: pulses the scheduler, and the scheduler pulses the agent (AgentLink).
#: Either side's liveness window must comfortably exceed the other's
#: interval; both default to 5x.
HEARTBEAT_INTERVAL = 2.0

#: how many heartbeat intervals of total silence the agent tolerates on a
#: session socket (covers a never-sent hello, a port-scan connection, and
#: a scheduler host that vanished without FIN) before abandoning it
SESSION_SILENCE_FACTOR = 5.0


class FleetAgent:
    """One job-running daemon; embeddable (tests) or CLI-run (deployment)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        slots: int = 1,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        session_timeout: float = 0.0,
    ) -> None:
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if session_timeout < 0:
            raise ValueError("session_timeout must be >= 0")
        self.host = host
        self.port = int(port)
        self.slots = int(slots)
        self.heartbeat_interval = float(heartbeat_interval)
        # the silence window bounds the *scheduler's* frame cadence, which
        # pulses at the protocol constant — never derive it from this
        # agent's own (tunable) outbound interval alone, or a low
        # --heartbeat would make the agent abandon perfectly live sessions
        self.session_timeout = float(session_timeout) or (
            SESSION_SILENCE_FACTOR * max(self.heartbeat_interval, HEARTBEAT_INTERVAL)
        )
        self._listener: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._live_conns: List[FrameConnection] = []  # guarded-by: _conns_lock
        self._conns_lock = make_lock("FleetAgent._conns_lock")
        self._session_lock = make_lock("FleetAgent._session_lock")  # one scheduler at a time
        self._name: Optional[str] = None  # cached at start (survives close)

    # ------------------------------------------------------------------ #
    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — call after :meth:`start`."""
        if self._listener is None:
            raise RuntimeError("agent is not started")
        return self._listener.getsockname()[:2]

    @property
    def name(self) -> str:
        if self._name is None:
            raise RuntimeError("agent is not started")
        return self._name

    def start(self) -> "FleetAgent":
        """Bind and serve on a background thread; returns self."""
        if self._listener is not None:
            raise RuntimeError("agent already started")
        self._listener = socket.create_server((self.host, self.port))
        self._listener.settimeout(0.2)
        host, port = self._listener.getsockname()[:2]
        self._name = f"{host}:{port}#pid{os.getpid()}"
        self._thread = threading.Thread(
            target=self._accept_loop, name="repro-fleet-agent", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking variant of :meth:`start` (the CLI entrypoint)."""
        self.start()
        try:
            while not self._stopping.wait(timeout=0.5):
                pass
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def close(self) -> None:
        """Graceful stop: no new sessions; live sockets are closed."""
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._conns_lock:
            conns = list(self._live_conns)
        for conn in conns:
            conn.close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def kill(self) -> None:
        """Abrupt death for tests: drop every socket with no goodbye.

        From the scheduler's side this is indistinguishable from a crashed
        or SIGKILLed host — EOF mid-session — which is exactly the fault
        the requeue path must survive.
        """
        self.close()

    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                sock, peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed under us: shutting down
            conn = FrameConnection(sock)
            with self._conns_lock:
                self._live_conns.append(conn)
            threading.Thread(
                target=self._handle_conn,
                args=(conn, peer),
                name="repro-fleet-session",
                daemon=True,
            ).start()

    def _handle_conn(self, conn: FrameConnection, peer) -> None:
        if not self._session_lock.acquire(blocking=False):
            # a scheduler is already attached; don't leave the newcomer
            # hanging in the backlog wondering if we are dead
            try:
                conn.send_control(protocol.busy_frame(self.name))
            except (OSError, WireError):
                pass
            conn.close()
            with self._conns_lock:
                if conn in self._live_conns:
                    self._live_conns.remove(conn)
            return
        try:
            logger.info("agent %s: session from %s", self.name, peer)
            # a silent peer must not wedge the daemon while it holds the
            # session lock: every read (hello included) gets a deadline,
            # and the scheduler's own heartbeats keep a live-but-idle
            # session comfortably inside it
            conn.settimeout(self.session_timeout)
            self._serve_session(conn)
        except socket.timeout:
            logger.warning(
                "agent %s: session from %s silent for %.0fs, abandoning it",
                self.name, peer, self.session_timeout,
            )
        except (ConnectionClosed, WireError, OSError, protocol.FleetProtocolError) as exc:
            logger.info("agent %s: session ended (%s)", self.name, exc)
        finally:
            self._session_lock.release()
            conn.close()
            with self._conns_lock:
                if conn in self._live_conns:
                    self._live_conns.remove(conn)

    def _serve_session(self, conn: FrameConnection) -> None:
        """One scheduler session: hello/welcome, then jobs until EOF."""
        doc, _ = conn.recv()
        kind, doc = protocol.parse_frame(doc)
        if kind != "hello":
            raise protocol.FleetProtocolError(f"expected hello, got {kind}")
        send_lock = make_lock("FleetAgent.send_lock")
        self._send(conn, send_lock, protocol.welcome_frame(self.slots, self.name))

        hb_stop = threading.Event()
        hb = threading.Thread(
            target=self._heartbeat_loop,
            args=(conn, send_lock, hb_stop),
            name="repro-fleet-heartbeat",
            daemon=True,
        )
        hb.start()
        pool = ThreadPoolExecutor(
            max_workers=self.slots, thread_name_prefix="repro-fleet-slot"
        )
        try:
            while True:
                doc, _ = conn.recv()
                kind, doc = protocol.parse_frame(doc)
                if kind == "heartbeat":
                    continue  # the scheduler proving it is still there
                if kind != "job":
                    raise protocol.FleetProtocolError(
                        f"agent received a {kind} frame mid-session"
                    )
                pool.submit(
                    self._run_job, conn, send_lock, doc["id"], doc["spec"],
                    bool(doc.get("obs", False)),
                )
        finally:
            hb_stop.set()
            # drop queued cells, but wait out the in-flight ones (their
            # sends fail quietly inside _send): releasing the session lock
            # while cells still compute would let the next scheduler
            # oversubscribe the advertised slots — poison for a project
            # whose point is honest wall-clock measurements
            pool.shutdown(wait=True, cancel_futures=True)

    def _heartbeat_loop(
        self, conn: FrameConnection, send_lock: threading.Lock, stop: threading.Event
    ) -> None:
        n = 0
        while not stop.wait(timeout=self.heartbeat_interval):
            n += 1
            if not self._send(conn, send_lock, protocol.heartbeat_frame(n)):
                return

    def _run_job(
        self, conn, send_lock, job_id: str, spec_doc: dict, obs: bool = False
    ) -> None:
        """Execute one cell and stream its progress/result/error back.

        ``obs`` jobs run with a live trace recorder whose rows are shipped
        in one ``trace`` frame *before* the result — the scheduler still
        holds the job in its inflight map at that point, so the rows are
        attributable to the cell.
        """
        from repro.experiments.executors import execute_spec
        from repro.obs.recorder import TraceRecorder

        recorder = None
        try:
            spec = protocol.decode_spec({"spec": spec_doc})
            logger.info("agent %s: job %s = %s", self.name, job_id, spec.label())
            if obs:
                recorder = TraceRecorder(run_id=f"{self.name}:{spec.label()}")
            result = execute_spec(
                spec,
                on_curve_point=lambda point: self._send(
                    conn, send_lock, protocol.curve_point_frame(job_id, point)
                ),
                recorder=recorder,
            )
        except BaseException as exc:
            # the cell failed, not the agent: report and keep serving
            self._send(
                conn,
                send_lock,
                protocol.job_error_frame(job_id, repr(exc), traceback.format_exc()),
            )
            return
        if recorder is not None:
            self._send(conn, send_lock, protocol.trace_frame(job_id, recorder.rows()))
        self._send(conn, send_lock, protocol.result_frame(job_id, result))

    def _send(self, conn: FrameConnection, send_lock: threading.Lock, doc: dict) -> bool:
        """Locked control send; a dead scheduler just ends the stream."""
        try:
            with send_lock:
                conn.send_control(doc)
            return True
        except (OSError, WireError):
            return False


# ---------------------------------------------------------------------- #
# CLI entrypoint (also reachable as ``repro agent``)
# ---------------------------------------------------------------------- #
def serve(
    bind: str,
    slots: int = 1,
    heartbeat: Optional[float] = None,
    port_file: Optional[str] = None,
) -> int:
    """Run one agent daemon until interrupted — the CLI's whole behavior.

    Shared by ``repro agent`` and ``python -m repro.fleet.agent`` so the
    two entrypoints cannot drift.  ``port_file`` gets the bound
    ``host:port`` written atomically once listening (how scripts that
    bind port 0 learn the address).
    """
    host, _, port = bind.rpartition(":")
    if not host:
        raise SystemExit(f"--bind expects HOST:PORT, got {bind!r}")
    try:
        agent = FleetAgent(
            host,
            int(port),
            slots=slots,
            heartbeat_interval=HEARTBEAT_INTERVAL if heartbeat is None else heartbeat,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    agent.start()
    bound_host, bound_port = agent.address
    print(f"agent listening on {bound_host}:{bound_port} ({slots} slot(s))", flush=True)
    if port_file:
        tmp = f"{port_file}.tmp"
        with open(tmp, "w") as fh:
            fh.write(f"{bound_host}:{bound_port}\n")
        os.replace(tmp, port_file)  # atomic: readers never see a partial line
    try:
        while True:
            threading.Event().wait(0.5)
    except KeyboardInterrupt:
        pass
    finally:
        agent.close()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro agent",
        description="fleet agent daemon: runs campaign cells sent by "
                    "`repro sweep --agents ...`",
    )
    parser.add_argument(
        "--bind", default="127.0.0.1:7463", metavar="HOST:PORT",
        help="address to listen on (port 0 picks a free one)",
    )
    parser.add_argument(
        "--slots", type=int, default=1,
        help="cells to run concurrently on this host",
    )
    parser.add_argument(
        "--heartbeat", type=float, default=None,
        help=f"seconds between liveness pulses to the scheduler "
             f"(default {HEARTBEAT_INTERVAL})",
    )
    parser.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the bound host:port here once listening (for scripts "
             "that bind port 0)",
    )
    args = parser.parse_args(argv)
    return serve(
        args.bind, slots=args.slots, heartbeat=args.heartbeat, port_file=args.port_file
    )


if __name__ == "__main__":
    import sys

    sys.exit(main())
