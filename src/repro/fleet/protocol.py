"""Fleet control-frame vocabulary: how a scheduler and an agent talk.

Every fleet frame is a typed :class:`~repro.runtime.wire.ControlFrame`
document riding the same length-prefixed :class:`~repro.runtime.wire.
FrameConnection` framing the proc backend's handshake uses — pickle-free
by construction, version-checked at both layers through the one
:func:`~repro.runtime.wire.check_protocol_version` path (the wire header
carries ``PROTOCOL_VERSION``; every fleet frame carries ``FLEET_VERSION``
as the control version, so a scheduler never feeds jobs to an agent
speaking a different job schema).  The frame types (kind {body})::

    scheduler -> agent   hello {}                    open the session
    agent -> scheduler   welcome {slots, agent}      capacity announcement
    scheduler -> agent   job {id, spec, obs?}        one ExperimentSpec cell
    agent -> scheduler   curve_point {id, point}     streamed evaluation
    agent -> scheduler   trace {id, rows}            the cell's trace rows
    agent -> scheduler   result {id, result}         the finished RunResult
    agent -> scheduler   job_error {id, error, tb}   the cell itself raised
    agent -> scheduler   heartbeat {n}               liveness pulse
    agent -> scheduler   busy {agent}                already serving a peer

``obs`` on a job frame asks the agent to run the cell with a live trace
recorder; the agent then ships the finished trace's encoded rows (the
:func:`repro.obs.events.encode_record` wire format, re-validated against
the event registry on ingestion) in one ``trace`` frame before the
``result``.  Older agents ignore the extra key, so obs campaigns degrade
gracefully on a mixed fleet.

Specs travel as their :meth:`~repro.experiments.spec.ExperimentSpec.
to_dict` document and are rebuilt with :meth:`ExperimentSpec.from_dict`,
which re-derives the content key and refuses a mismatch — a version-skewed
agent cannot silently run a different experiment than the key it reports.

This module owns only the vocabulary (builders + a validating parser);
socket handling lives in :mod:`repro.fleet.agent` and
:mod:`repro.fleet.scheduler`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.core.metrics import RunResult
from repro.experiments.spec import ExperimentSpec
from repro.runtime.wire import ControlFrame

#: bumped whenever the fleet frame schema changes incompatibly; every
#: frame carries it and either side refuses a mismatch.  v2 = frames are
#: ControlFrame documents ({"ctl": kind, "cv": v, "body": {...}}).
FLEET_VERSION = 2


class FleetProtocolError(RuntimeError):
    """A peer sent a frame outside the fleet vocabulary (or a bad version)."""


def to_jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays so a doc survives json.dumps.

    Control frames are encoded with a strict ``json.dumps`` (no default
    hook), but ``RunResult.to_dict`` may carry numpy float64 staleness
    statistics — sanitize at the protocol boundary, once.
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    return value


# ---------------------------------------------------------------------- #
# frame builders (each returns a JSON-able ControlFrame document)
# ---------------------------------------------------------------------- #
def _frame(kind: str, body: Dict[str, Any]) -> Dict[str, Any]:
    return ControlFrame(kind, body, v=FLEET_VERSION).to_doc()


def hello_frame() -> Dict[str, Any]:
    return _frame("hello", {})


def welcome_frame(slots: int, agent: str) -> Dict[str, Any]:
    return _frame("welcome", {"slots": int(slots), "agent": agent})


def busy_frame(agent: str) -> Dict[str, Any]:
    return _frame("busy", {"agent": agent})


def job_frame(job_id: str, spec: ExperimentSpec, obs: bool = False) -> Dict[str, Any]:
    return _frame(
        "job",
        {"id": str(job_id), "spec": to_jsonable(spec.to_dict()), "obs": bool(obs)},
    )


def curve_point_frame(job_id: str, point) -> Dict[str, Any]:
    return _frame("curve_point", {"id": str(job_id), "point": to_jsonable(point.to_dict())})


def trace_frame(job_id: str, rows) -> Dict[str, Any]:
    """The cell's finished trace: encoded event rows, one frame per job."""
    return _frame("trace", {"id": str(job_id), "rows": [list(row) for row in rows]})


def result_frame(job_id: str, result: RunResult) -> Dict[str, Any]:
    return _frame("result", {"id": str(job_id), "result": to_jsonable(result.to_dict())})


def job_error_frame(job_id: str, error: str, tb: str = "") -> Dict[str, Any]:
    return _frame("job_error", {"id": str(job_id), "error": str(error), "traceback": tb})


def heartbeat_frame(n: int) -> Dict[str, Any]:
    return _frame("heartbeat", {"n": int(n)})


#: the vocabulary: kind -> body fields that must be present
_FRAME_KINDS: Dict[str, Tuple[str, ...]] = {
    "hello": (),
    "welcome": ("slots",),
    "busy": (),
    "job": ("id", "spec"),
    "curve_point": ("id", "point"),
    "trace": ("id", "rows"),
    "result": ("id", "result"),
    "job_error": ("id", "error"),
    "heartbeat": (),
}


# ---------------------------------------------------------------------- #
# validating parser
# ---------------------------------------------------------------------- #
def parse_frame(doc: Any) -> Tuple[str, Dict[str, Any]]:
    """Classify one control document as ``(kind, body)``; junk raises.

    Every frame's ``cv`` is checked against :data:`FLEET_VERSION` (the
    single :func:`~repro.runtime.wire.check_protocol_version` path).
    Only structural validation happens here (it is a frame of a known
    type with the fields that type requires); semantic checks — unknown
    job ids, key mismatches — belong to the caller.
    """
    frame = ControlFrame.from_doc(
        doc, expect_version=FLEET_VERSION, label="fleet", error=FleetProtocolError
    )
    required = _FRAME_KINDS.get(frame.kind)
    if required is None:
        raise FleetProtocolError(f"unknown fleet frame kind {frame.kind!r}")
    for key in required:
        if key not in frame.body:
            raise FleetProtocolError(f"{frame.kind} frame without {key!r}: {doc!r}")
    if frame.kind == "job":
        if not isinstance(frame.body["id"], str) or not isinstance(frame.body["spec"], dict):
            raise FleetProtocolError(f"malformed job frame: {doc!r}")
    elif "id" in required and not isinstance(frame.body["id"], str):
        raise FleetProtocolError(f"{frame.kind} frame without a job id: {doc!r}")
    if frame.kind == "welcome" and int(frame.body.get("slots", 0)) < 1:
        raise FleetProtocolError(f"welcome without usable slots: {doc!r}")
    return frame.kind, frame.body


def decode_spec(doc: Dict[str, Any]) -> ExperimentSpec:
    """Rebuild the spec a job frame carries (key-verified)."""
    return ExperimentSpec.from_dict(doc["spec"])


def decode_result(doc: Dict[str, Any]) -> RunResult:
    """Rebuild the RunResult a result frame carries."""
    return RunResult.from_dict(doc["result"])


def parse_agent_addrs(raw: str) -> List[Tuple[str, int]]:
    """``"host:port,host:port"`` -> [(host, port), ...] (CLI --agents)."""
    addrs: List[Tuple[str, int]] = []
    for item in str(raw).split(","):
        item = item.strip()
        if not item:
            continue
        host, sep, port = item.rpartition(":")
        if not sep or not host:
            raise ValueError(f"agent address {item!r} is not host:port")
        try:
            addrs.append((host, int(port)))
        except ValueError:
            raise ValueError(f"agent address {item!r} has a non-integer port")
    if not addrs:
        raise ValueError("no agent addresses given")
    return addrs
