"""Fleet control-frame vocabulary: how a scheduler and an agent talk.

Every fleet frame is a :func:`repro.runtime.wire.encode_control` JSON
document riding the same length-prefixed :class:`~repro.runtime.wire.
FrameConnection` framing the proc backend's handshake uses — pickle-free
by construction, version-checked at both layers (the wire header carries
``PROTOCOL_VERSION``; fleet frames additionally carry ``FLEET_VERSION``
so a scheduler never feeds jobs to an agent speaking a different job
schema).  The frame types::

    scheduler -> agent   hello                       open the session
    agent -> scheduler   welcome {slots, agent}      capacity announcement
    scheduler -> agent   job {id, spec}              one ExperimentSpec cell
    agent -> scheduler   curve_point {id, point}     streamed evaluation
    agent -> scheduler   result {id, result}         the finished RunResult
    agent -> scheduler   job_error {id, error, tb}   the cell itself raised
    agent -> scheduler   heartbeat {n}               liveness pulse
    agent -> scheduler   busy {}                     already serving a peer

Specs travel as their :meth:`~repro.experiments.spec.ExperimentSpec.
to_dict` document and are rebuilt with :meth:`ExperimentSpec.from_dict`,
which re-derives the content key and refuses a mismatch — a version-skewed
agent cannot silently run a different experiment than the key it reports.

This module owns only the vocabulary (builders + a validating parser);
socket handling lives in :mod:`repro.fleet.agent` and
:mod:`repro.fleet.scheduler`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.core.metrics import RunResult
from repro.experiments.spec import ExperimentSpec

#: bumped whenever the fleet frame schema changes incompatibly; hello and
#: welcome both carry it and either side refuses a mismatch
FLEET_VERSION = 1

#: every fleet frame names its type under this key
KIND_KEY = "fleet"


class FleetProtocolError(RuntimeError):
    """A peer sent a frame outside the fleet vocabulary (or a bad version)."""


def to_jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays so a doc survives json.dumps.

    Control frames are encoded with a strict ``json.dumps`` (no default
    hook), but ``RunResult.to_dict`` may carry numpy float64 staleness
    statistics — sanitize at the protocol boundary, once.
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    return value


# ---------------------------------------------------------------------- #
# frame builders
# ---------------------------------------------------------------------- #
def hello_frame() -> Dict[str, Any]:
    return {KIND_KEY: "hello", "v": FLEET_VERSION}


def welcome_frame(slots: int, agent: str) -> Dict[str, Any]:
    return {KIND_KEY: "welcome", "v": FLEET_VERSION, "slots": int(slots), "agent": agent}


def busy_frame(agent: str) -> Dict[str, Any]:
    return {KIND_KEY: "busy", "v": FLEET_VERSION, "agent": agent}


def job_frame(job_id: str, spec: ExperimentSpec) -> Dict[str, Any]:
    return {KIND_KEY: "job", "id": str(job_id), "spec": to_jsonable(spec.to_dict())}


def curve_point_frame(job_id: str, point) -> Dict[str, Any]:
    return {KIND_KEY: "curve_point", "id": str(job_id), "point": to_jsonable(point.to_dict())}


def result_frame(job_id: str, result: RunResult) -> Dict[str, Any]:
    return {KIND_KEY: "result", "id": str(job_id), "result": to_jsonable(result.to_dict())}


def job_error_frame(job_id: str, error: str, tb: str = "") -> Dict[str, Any]:
    return {KIND_KEY: "job_error", "id": str(job_id), "error": str(error), "traceback": tb}


def heartbeat_frame(n: int) -> Dict[str, Any]:
    return {KIND_KEY: "heartbeat", "n": int(n)}


# ---------------------------------------------------------------------- #
# validating parser
# ---------------------------------------------------------------------- #
def parse_frame(doc: Any) -> Tuple[str, Dict[str, Any]]:
    """Classify one control document as ``(kind, doc)``; junk raises.

    Only structural validation happens here (it is a frame of a known
    type with the fields that type requires); semantic checks — unknown
    job ids, key mismatches — belong to the caller.
    """
    if not isinstance(doc, dict) or KIND_KEY not in doc:
        raise FleetProtocolError(f"not a fleet frame: {doc!r}")
    kind = doc[KIND_KEY]
    if kind in ("hello", "welcome", "busy"):
        version = doc.get("v")
        if version != FLEET_VERSION:
            raise FleetProtocolError(
                f"fleet protocol mismatch: peer speaks v{version}, we speak v{FLEET_VERSION}"
            )
        if kind == "welcome" and int(doc.get("slots", 0)) < 1:
            raise FleetProtocolError(f"welcome without usable slots: {doc!r}")
        return kind, doc
    if kind == "job":
        if not isinstance(doc.get("id"), str) or not isinstance(doc.get("spec"), dict):
            raise FleetProtocolError(f"malformed job frame: {doc!r}")
        return kind, doc
    if kind in ("curve_point", "result", "job_error"):
        if not isinstance(doc.get("id"), str):
            raise FleetProtocolError(f"{kind} frame without a job id: {doc!r}")
        payload_key = {"curve_point": "point", "result": "result", "job_error": "error"}[kind]
        if payload_key not in doc:
            raise FleetProtocolError(f"{kind} frame without {payload_key!r}: {doc!r}")
        return kind, doc
    if kind == "heartbeat":
        return kind, doc
    raise FleetProtocolError(f"unknown fleet frame kind {kind!r}")


def decode_spec(doc: Dict[str, Any]) -> ExperimentSpec:
    """Rebuild the spec a job frame carries (key-verified)."""
    return ExperimentSpec.from_dict(doc["spec"])


def decode_result(doc: Dict[str, Any]) -> RunResult:
    """Rebuild the RunResult a result frame carries."""
    return RunResult.from_dict(doc["result"])


def parse_agent_addrs(raw: str) -> List[Tuple[str, int]]:
    """``"host:port,host:port"`` -> [(host, port), ...] (CLI --agents)."""
    addrs: List[Tuple[str, int]] = []
    for item in str(raw).split(","):
        item = item.strip()
        if not item:
            continue
        host, sep, port = item.rpartition(":")
        if not sep or not host:
            raise ValueError(f"agent address {item!r} is not host:port")
        try:
            addrs.append((host, int(port)))
        except ValueError:
            raise ValueError(f"agent address {item!r} has a non-integer port")
    if not addrs:
        raise ValueError("no agent addresses given")
    return addrs
