"""repro.fleet — distributed campaign execution across agent daemons.

The first genuinely multi-host layer of the reproduction: a campaign's
grid cells fan out over TCP to :class:`~repro.fleet.agent.FleetAgent`
daemons (``repro agent --bind HOST:PORT --slots N``), scheduled by a
fault-tolerant :class:`~repro.fleet.scheduler.FleetExecutor` that slots
into the existing :class:`~repro.experiments.campaign.Campaign` executor
protocol — store persistence, resume and events all work unchanged.

* :mod:`repro.fleet.protocol` — the control-frame vocabulary (hello,
  welcome, job, curve_point, result, job_error, heartbeat) on top of the
  pickle-free :mod:`repro.runtime.wire` framing.
* :mod:`repro.fleet.agent` — the daemon: N concurrent job slots, curve
  streaming, heartbeats; one scheduler at a time, many campaigns per
  daemon lifetime.
* :mod:`repro.fleet.scheduler` — greedy slot-filling, heartbeat/EOF
  death detection with requeue onto survivors, fail-fast only when a
  cell itself raises twice.

Quickstart (two terminals, then a third)::

    repro agent --bind 127.0.0.1:7463 --slots 2
    repro agent --bind 127.0.0.1:7464 --slots 2
    repro sweep --agents 127.0.0.1:7463,127.0.0.1:7464 --json out/fleet

Stores collected on different hosts combine key-wise with
``repro store merge out/all out/host-a out/host-b`` (see
:meth:`~repro.experiments.store.ResultStore.merge`).
"""

from repro.fleet.agent import FleetAgent
from repro.fleet.protocol import FLEET_VERSION, FleetProtocolError, parse_agent_addrs
from repro.fleet.scheduler import AgentLink, FleetError, FleetExecutor

__all__ = [
    "FleetAgent",
    "FleetExecutor",
    "AgentLink",
    "FleetError",
    "FleetProtocolError",
    "FLEET_VERSION",
    "parse_agent_addrs",
]
