"""FleetExecutor: schedule campaign cells across remote agent daemons.

Implements the :class:`~repro.experiments.executors.Executor` protocol —
``run(jobs, total, events)`` yields ``(index, spec, result)`` triples as
cells complete — so :class:`~repro.experiments.campaign.Campaign`,
:class:`~repro.experiments.store.ResultStore` persistence, resume and
:class:`~repro.experiments.events.CampaignEvents` all work unchanged on a
multi-host fleet.  Construction is cheap; connections open inside
``run`` and close when the generator finishes.

Scheduling is greedy: every agent advertises ``slots`` in its welcome and
the scheduler keeps each one saturated from a single pending deque —
faster hosts simply drain more cells, which is the right policy for a
grid of independent runs of wildly different durations.

Fault model (the reason this file exists):

* **agent death** — socket EOF or a missed-heartbeat window marks the
  agent dead; its in-flight cells requeue onto the surviving agents.
  Death is *not* charged to the cell — a host crash says nothing about
  the experiment.
* **cell failure** — a ``job_error`` frame means the spec itself raised
  inside the agent.  The cell is retried once (on any agent — a flaky
  host's failure shouldn't doom a healthy spec), and a second failure
  fails the campaign fast with the remote traceback: a deterministic bug
  would otherwise ping-pong across the fleet forever.
* **total loss** — if every agent is dead while cells remain, the run
  raises rather than hanging.

Results stream back exactly once per cell: a cell that completes on an
agent we later declare dead is never re-yielded (the ``done`` set), and a
requeued cell whose first attempt turns out to have finished is dropped
on arrival.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.metrics import CurvePoint, RunResult
from repro.experiments.events import CampaignEvents
from repro.experiments.executors import Executor, Job
from repro.experiments.spec import ExperimentSpec
from repro.analysis.lockorder import make_lock
from repro.fleet import protocol
from repro.obs.recorder import make_recorder
from repro.runtime.wire import ConnectionClosed, FrameConnection, WireError
from repro.utils.logging import get_logger

logger = get_logger("fleet.scheduler")

#: how many times one cell may raise before the campaign fails fast
MAX_CELL_ATTEMPTS = 2

#: an address is "host:port" or an already-split (host, port) pair
Address = Union[str, Tuple[str, int]]


class FleetError(RuntimeError):
    """No usable agents, every agent died, or a cell failed twice."""


class AgentLink:
    """One connected agent: its socket, reader thread and slot bookkeeping."""

    def __init__(
        self,
        host: str,
        port: int,
        events_out: "queue.Queue[Tuple[AgentLink, Optional[dict]]]",
        connect_timeout: float,
    ) -> None:
        import socket as _socket

        self.host, self.port = host, int(port)
        self.addr = f"{host}:{port}"
        self.name = self.addr  # refined by the welcome frame
        self._events_out = events_out
        self.slots = 0
        self.inflight: Dict[str, Tuple[int, ExperimentSpec, int]] = {}
        self.alive = True
        self.last_seen = time.monotonic()
        self._send_lock = make_lock("AgentLink._send_lock")

        sock = _socket.create_connection((host, self.port), timeout=connect_timeout)
        self.conn = FrameConnection(sock)
        self.conn.settimeout(connect_timeout)
        self.conn.send_control(protocol.hello_frame())
        doc, _ = self.conn.recv()
        kind, doc = protocol.parse_frame(doc)
        if kind == "busy":
            self.conn.close()
            raise FleetError(f"agent {self.addr} is busy with another scheduler")
        if kind != "welcome":
            self.conn.close()
            raise FleetError(f"agent {self.addr} answered hello with {kind!r}")
        self.slots = int(doc["slots"])
        self.name = str(doc.get("agent", self.addr))
        self.conn.settimeout(None)
        self._reader = threading.Thread(
            target=self._reader_loop, name=f"repro-fleet-link-{self.addr}", daemon=True
        )
        self._reader.start()
        # heartbeats flow both ways: the agent abandons a session that goes
        # silent (a scheduler host that died without FIN must not hold the
        # one-session lock forever), so prove liveness even when no jobs
        # are being dispatched
        self._hb_stop = threading.Event()
        self._pulse = threading.Thread(
            target=self._pulse_loop, name=f"repro-fleet-pulse-{self.addr}", daemon=True
        )
        self._pulse.start()

    # ------------------------------------------------------------------ #
    def _pulse_loop(self) -> None:
        from repro.fleet.agent import HEARTBEAT_INTERVAL

        n = 0
        while not self._hb_stop.wait(timeout=HEARTBEAT_INTERVAL):
            n += 1
            try:
                with self._send_lock:
                    self.conn.send_control(protocol.heartbeat_frame(n))
            except (OSError, WireError):
                return  # the reader surfaces the death; nothing to add

    def _reader_loop(self) -> None:
        try:
            while True:
                doc, _ = self.conn.recv()
                self.last_seen = time.monotonic()
                self._events_out.put((self, doc))
        except (ConnectionClosed, WireError, OSError):
            self._events_out.put((self, None))  # EOF sentinel

    def free_slots(self) -> int:
        return self.slots - len(self.inflight) if self.alive else 0

    def send_job(self, job_id: str, spec: ExperimentSpec, obs: bool = False) -> bool:
        """Dispatch one cell; False means the link just died."""
        try:
            with self._send_lock:
                self.conn.send_control(protocol.job_frame(job_id, spec, obs=obs))
            return True
        except (OSError, WireError):
            return False

    def close(self) -> None:
        self.alive = False
        self._hb_stop.set()
        self.conn.close()


class FleetExecutor(Executor):
    """Run campaign cells on remote :class:`~repro.fleet.agent.FleetAgent`s.

    Parameters
    ----------
    agents:
        Agent addresses — ``"host:port"`` strings or ``(host, port)``
        pairs.  Unreachable agents are skipped with a note; zero reachable
        agents raises.
    heartbeat_timeout:
        Seconds without any frame from an agent before it is declared
        dead.  Must exceed the agents' heartbeat interval (default 2 s)
        with margin.
    connect_timeout:
        Cap on the per-agent TCP connect + hello/welcome handshake.
    obs:
        Run every cell with a live trace recorder.  Agents ship each
        cell's trace rows back (``trace`` frames) into this executor's
        campaign-level :attr:`recorder`, which also collects the
        scheduler's own ``heartbeat``/``requeue`` events — one trace for
        the whole campaign's control plane.
    """

    name = "fleet"

    def __init__(
        self,
        agents: Sequence[Address],
        heartbeat_timeout: float = 10.0,
        connect_timeout: float = 10.0,
        obs: bool = False,
    ) -> None:
        if not agents:
            raise ValueError("FleetExecutor needs at least one agent address")
        if heartbeat_timeout <= 0 or connect_timeout <= 0:
            raise ValueError("timeouts must be positive")
        self.addresses: List[Tuple[str, int]] = []
        for addr in agents:
            if isinstance(addr, str):
                self.addresses.extend(protocol.parse_agent_addrs(addr))
            else:
                host, port = addr
                self.addresses.append((host, int(port)))
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.connect_timeout = float(connect_timeout)
        #: campaign-level trace: agent cell traces + scheduler events
        self.recorder = make_recorder(obs, run_id="fleet-campaign")
        self._t0 = 0.0  # scheduler clock epoch, set when run() starts

    # ------------------------------------------------------------------ #
    def run(
        self, jobs: Sequence[Job], total: int, events: CampaignEvents
    ) -> Iterator[Tuple[int, ExperimentSpec, RunResult]]:
        if not jobs:
            return
        self._t0 = time.monotonic()
        inbox: "queue.Queue[Tuple[AgentLink, Optional[dict]]]" = queue.Queue()
        links = self._connect(inbox, events)
        try:
            yield from self._schedule(list(jobs), total, events, links, inbox)
        finally:
            for link in links:
                link.close()

    def _connect(self, inbox, events: CampaignEvents) -> List[AgentLink]:
        links: List[AgentLink] = []
        failures: List[str] = []
        for host, port in self.addresses:
            try:
                links.append(AgentLink(host, port, inbox, self.connect_timeout))
            except (OSError, WireError, FleetError, protocol.FleetProtocolError) as exc:
                failures.append(f"{host}:{port} ({exc})")
        for failure in failures:
            events.on_note(f"fleet: agent {failure} unavailable, continuing without it")
        if not links:
            raise FleetError(
                "no fleet agents reachable: " + "; ".join(failures)
            )
        # the "fleet: agents " prefix is load-bearing: DashboardEvents
        # mirrors this roster into its state document for watchers
        events.on_note(
            "fleet: agents "
            + ", ".join(f"{l.name} x{l.slots}" for l in links)
        )
        return links

    # ------------------------------------------------------------------ #
    def _schedule(
        self,
        jobs: List[Job],
        total: int,
        events: CampaignEvents,
        links: List[AgentLink],
        inbox: "queue.Queue[Tuple[AgentLink, Optional[dict]]]",
    ) -> Iterator[Tuple[int, ExperimentSpec, RunResult]]:
        #: (index, spec, attempts) — attempts counts the cell's own raises
        pending: deque = deque((index, spec, 0) for index, spec in jobs)
        started: set = set()  # indices whose on_run_start already fired
        done: set = set()  # indices already yielded (never re-yield)

        recorder = self.recorder

        def now() -> float:
            return time.monotonic() - self._t0

        def live_links() -> List[AgentLink]:
            return [l for l in links if l.alive]

        def mark_dead(link: AgentLink, why: str) -> None:
            if not link.alive:
                return
            link.alive = False
            link.conn.close()
            requeued = 0
            for job_id, (index, spec, attempts) in sorted(link.inflight.items()):
                if index not in done:
                    # a host death says nothing about the cell: same attempts
                    pending.appendleft((index, spec, attempts))
                    requeued += 1
                    if recorder.enabled:
                        recorder.emit(now(), "requeue", job=int(index), peer=link.name)
            link.inflight.clear()
            note = f"fleet: agent {link.name} died ({why})"
            if requeued:
                note += f"; requeued {requeued} cell(s)"
            logger.warning(note)
            events.on_note(note)

        def dispatch() -> None:
            for link in live_links():
                while pending and link.free_slots() > 0:
                    index, spec, attempts = pending.popleft()
                    if index in done:
                        continue
                    job_id = str(index)
                    if not link.send_job(job_id, spec, obs=recorder.enabled):
                        pending.appendleft((index, spec, attempts))
                        mark_dead(link, "send failed")
                        break
                    link.inflight[job_id] = (index, spec, attempts)
                    if index not in started:
                        started.add(index)
                        events.on_run_start(spec, index, total)

        while pending or any(l.inflight for l in live_links()):
            if not live_links():
                unfinished = len(pending) + len(
                    {i for l in links for (i, _, _) in l.inflight.values()} - done
                )
                raise FleetError(
                    f"every fleet agent died with {unfinished} cell(s) unfinished"
                )
            dispatch()
            try:
                link, doc = inbox.get(timeout=0.2)
            except queue.Empty:
                self._check_heartbeats(links, mark_dead)
                continue
            if doc is None:
                mark_dead(link, "connection closed")
                continue
            if not link.alive:
                continue  # stale frame from a link we already wrote off
            try:
                kind, doc = protocol.parse_frame(doc)
            except protocol.FleetProtocolError as exc:
                mark_dead(link, f"protocol violation: {exc}")
                continue
            if kind == "heartbeat":
                if recorder.enabled:
                    recorder.emit(
                        now(), "heartbeat", peer=link.name, n=int(doc.get("n", 0))
                    )
                continue
            if kind == "trace":
                # an obs cell's finished trace: merge it (rows re-validated
                # against the event registry) into the campaign recorder
                if recorder.enabled and link.inflight.get(doc["id"]) is not None:
                    try:
                        recorder.ingest_rows(doc["rows"])
                    except (ValueError, TypeError) as exc:
                        mark_dead(link, f"undecodable trace rows: {exc!r}")
                continue
            if kind == "curve_point":
                entry = link.inflight.get(doc["id"])
                if entry is not None:
                    try:
                        point = CurvePoint.from_dict(doc["point"])
                    except Exception as exc:
                        mark_dead(link, f"undecodable curve point: {exc!r}")
                        continue
                    events.on_curve_point(entry[1], point)
                continue
            if kind == "result":
                entry = link.inflight.get(doc["id"])
                if entry is None:
                    continue  # duplicate of a cell another agent finished
                try:
                    result = protocol.decode_result(doc)
                except Exception as exc:
                    # a skewed agent's garbage is the agent's fault, not
                    # the cell's: fault the link (the entry is still in
                    # its inflight map, so mark_dead requeues it) instead
                    # of crashing the whole campaign
                    mark_dead(link, f"undecodable result: {exc!r}")
                    continue
                link.inflight.pop(doc["id"], None)
                index, spec, _ = entry
                if index in done:
                    continue
                done.add(index)
                yield index, spec, result
                continue
            if kind == "job_error":
                entry = link.inflight.pop(doc["id"], None)
                if entry is None:
                    continue
                index, spec, attempts = entry
                attempts += 1
                if attempts >= MAX_CELL_ATTEMPTS:
                    raise FleetError(
                        f"cell {spec.label()} failed {attempts} time(s); last "
                        f"failure on {link.name}: {doc['error']}\n"
                        f"{doc.get('traceback', '')}"
                    )
                events.on_note(
                    f"fleet: {spec.label()} raised on {link.name} "
                    f"({doc['error']}); retrying"
                )
                pending.append((index, spec, attempts))
                continue
            mark_dead(link, f"unexpected {kind} frame mid-session")

    def _check_heartbeats(self, links: List[AgentLink], mark_dead) -> None:
        now = time.monotonic()
        for link in links:
            if link.alive and now - link.last_seen > self.heartbeat_timeout:
                mark_dead(
                    link,
                    f"no heartbeat for {now - link.last_seen:.1f}s "
                    f"(timeout {self.heartbeat_timeout}s)",
                )
