#!/usr/bin/env python
"""Train an actual ResNet through the distributed stack.

The bench workloads use MLP replicas for wall-time reasons; this example
runs the paper's real architecture family — a (narrow) BasicBlock ResNet
with BatchNorm2d layers — through the full LC-ASGD pipeline: conv autograd,
Async-BN statistic aggregation across workers, LSTM predictors on the
server.  A few minutes of CPU.

Usage::

    python examples/resnet_cluster.py [--workers 4] [--epochs 6]
"""

import argparse
import time

from repro.bench import format_table
from repro.core import DistributedTrainer, TrainingConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--width", type=int, default=8, help="ResNet base width")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    rows = []
    for algorithm in ("asgd", "lc-asgd"):
        config = TrainingConfig.small_cifar(
            algorithm=algorithm,
            num_workers=args.workers,
            epochs=args.epochs,
            lr_milestones=(args.epochs // 2, (3 * args.epochs) // 4),
            model="resnet_tiny",
            model_kwargs={"base_width": args.width},
            dataset_kwargs={"train_size": 1024, "test_size": 512, "side": 8, "noise": 0.7},
            base_lr=0.05,
            seed=args.seed,
        )
        print(f"training resnet_tiny (width {args.width}) with {algorithm} "
              f"on {config.num_workers} workers...", flush=True)
        t0 = time.time()
        result = DistributedTrainer(config).run()
        rows.append([
            algorithm,
            f"{100*result.final_test_error:.2f}",
            f"{100*result.final_train_error:.2f}",
            f"{result.staleness['mean']:.1f}",
            f"{time.time()-t0:.0f}s",
        ])

    print()
    print(format_table(
        ["algorithm", "test err %", "train err %", "mean staleness", "wall time"],
        rows,
        title=f"resnet_tiny through the distributed stack (M={args.workers}, Async-BN)",
    ))
    print("\nBatchNorm2d statistics flowed worker -> server -> eval model via "
          "the Async-BN accumulator (Formulas 6-7).")


if __name__ == "__main__":
    main()
