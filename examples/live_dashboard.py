#!/usr/bin/env python
"""Serve a live campaign dashboard and watch it from the same process.

A `DashboardEvents` observer mirrors a running Campaign into a JSON
state document; `serve_dashboard` publishes it over stdlib HTTP.  This
example runs a small sim sweep on a background thread, polls the real
endpoint from the main thread, and renders each frame the way
`repro watch` does — progress bar, per-run curve tails, staleness
histogram — until the campaign finishes.

The same endpoint is what a sweep started with
`repro sweep ... --serve PORT` exposes; point `repro watch URL` (or
curl) at it from any other terminal.

Usage::

    python examples/live_dashboard.py [--port 8642] [--seeds 3] [--interval 0.5]
"""

import argparse
import threading
import time

from repro.core import TrainingConfig
from repro.experiments import Campaign, ConsoleEvents, Grid, Sweep, make_executor
from repro.obs.dashboard import (
    DashboardEvents,
    fetch_state,
    render_state,
    serve_dashboard,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, default=0,
                        help="dashboard port (0 picks a free one)")
    parser.add_argument("--seeds", type=int, default=3)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--interval", type=float, default=0.5,
                        help="seconds between dashboard polls")
    args = parser.parse_args()

    grid = (
        Sweep("algorithm", ["asgd", "lc-asgd"])
        * Sweep("num_workers", [2])
        * Sweep("seed", list(range(args.seeds)))
    )

    def factory(**kwargs):
        return TrainingConfig.tiny(epochs=args.epochs, **kwargs)

    # DashboardEvents is an ordinary CampaignEvents observer; wrapping
    # ConsoleEvents keeps the usual per-run lines alongside the endpoint
    events = DashboardEvents(inner=ConsoleEvents())
    server = serve_dashboard(events, port=args.port)
    print(f"dashboard: {server.url}  (try: repro watch {server.url})\n")

    campaign = Campaign(
        grid.specs(factory, tags=["example"]),
        executor=make_executor(1, obs=True),
        events=events,
    )
    runner = threading.Thread(target=campaign.run, name="campaign")
    runner.start()

    # the watch loop, inlined: poll the real HTTP endpoint, render frames
    try:
        while True:
            state = fetch_state(server.url)
            print(render_state(state))
            print()
            if state["progress"]["finished"]:
                break
            time.sleep(args.interval)
    finally:
        runner.join()
        server.close()


if __name__ == "__main__":
    main()
