#!/usr/bin/env python
"""Study the server-side predictors (Algorithms 3-4) in isolation.

Feeds synthetic loss curves (smooth decay, learning-rate steps, noisy
plateaus) to the online LSTM loss predictor and its non-learned baselines,
then prints one-step-forecast accuracy per series — the standalone version
of the paper's Figure 7.

Usage::

    python examples/predictor_playground.py [--length 300]
"""

import argparse

import numpy as np

from repro.bench import ascii_scatter, format_table
from repro.core.predictors import (
    EMALossPredictor,
    LastValueLossPredictor,
    LinearTrendLossPredictor,
    LSTMLossPredictor,
)
from repro.data.synthetic import make_regression_series


def evaluate(predictor, series, warmup=30):
    """Feed the series online; return the post-warmup one-step MAE."""
    errors = []
    for i, value in enumerate(series):
        forecast = predictor.predict_next()
        if forecast is not None and i >= warmup:
            errors.append(abs(forecast - value))
        predictor.observe(float(value))
    return float(np.mean(errors)) if errors else float("nan")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rows = []
    for kind in ("decay", "step", "noisy"):
        series = make_regression_series(args.length, kind=kind, noise=0.02, seed=args.seed)
        maes = {}
        for name, factory in (
            ("lstm", lambda: LSTMLossPredictor(hidden_size=16, window=12, seed=args.seed)),
            ("ema", EMALossPredictor),
            ("last", LastValueLossPredictor),
            ("linear", LinearTrendLossPredictor),
        ):
            maes[name] = evaluate(factory(), series)
        rows.append([kind] + [f"{maes[n]:.4f}" for n in ("lstm", "ema", "last", "linear")])

    print(format_table(
        ["loss series", "LSTM (paper)", "EMA", "last-value", "linear trend"],
        rows,
        title="One-step loss-forecast MAE by predictor (lower is better)",
    ))

    # visualize the LSTM tracking the hardest series, Figure-7 style
    series = make_regression_series(args.length, kind="step", noise=0.02, seed=args.seed)
    predictor = LSTMLossPredictor(hidden_size=16, window=12, seed=args.seed)
    actual, predicted = [], []
    for value in series:
        forecast = predictor.predict_next()
        if forecast is not None:
            actual.append(value)
            predicted.append(forecast)
        predictor.observe(float(value))
    print()
    print(ascii_scatter(actual[-120:], predicted[-120:],
                        title="LSTM loss predictor on a learning-rate-step series (last 120)"))


if __name__ == "__main__":
    main()
