#!/usr/bin/env python
"""Quickstart: train one model with LC-ASGD on a simulated 8-worker cluster.

Runs in under a minute on a laptop.  Shows the three-line public API
(config -> trainer -> result) and prints the learning curve, the staleness
the workers experienced, and how well the two server-side predictors
(Algorithms 3-4 of the paper) tracked reality.

Usage::

    python examples/quickstart.py [--workers 8] [--algorithm lc-asgd]
"""

import argparse

from repro.bench import ascii_plot
from repro.core import DistributedTrainer, TrainingConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument(
        "--algorithm",
        default="lc-asgd",
        choices=["sgd", "ssgd", "asgd", "dc-asgd", "lc-asgd"],
    )
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    config = TrainingConfig.small_cifar(
        algorithm=args.algorithm,
        num_workers=args.workers,
        epochs=args.epochs,
        lr_milestones=(args.epochs // 2, (3 * args.epochs) // 4),
        seed=args.seed,
    )
    print(f"Training {config.model} with {config.algorithm} on "
          f"{config.num_workers} simulated worker(s), {config.epochs} epochs...")
    result = DistributedTrainer(config).run()

    print()
    print(ascii_plot(
        {
            "train error": (result.epochs(), result.series("train_error")),
            "test error": (result.epochs(), result.series("test_error")),
        },
        title=f"{config.algorithm} learning curve (M={config.num_workers})",
        xlabel="epoch",
        ylabel="error",
    ))
    print()
    print(f"final test error : {result.final_test_error:.2%}")
    print(f"simulated time   : {result.total_virtual_time:.1f}s "
          f"for {result.total_updates} batches")
    print(f"staleness        : mean {result.staleness['mean']:.1f}, "
          f"max {result.staleness['max']:.0f} server updates")
    if result.loss_prediction_pairs:
        print(f"loss predictor   : MAE {result.loss_prediction_error():.4f} "
              f"over {len(result.loss_prediction_pairs)} forecasts")
        print(f"step predictor   : MAE {result.step_prediction_error():.2f} steps")
        print(f"predictor cost   : {result.timers['loss_pred_ms']:.2f} ms (loss) + "
              f"{result.timers['step_pred_ms']:.2f} ms (step) per iteration")


if __name__ == "__main__":
    main()
