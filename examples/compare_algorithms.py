#!/usr/bin/env python
"""Reproduce the paper's headline comparison at one worker count.

Trains the same model/data/schedule with all five algorithms (sequential
SGD, SSGD, ASGD, DC-ASGD, LC-ASGD) on the simulated cluster and prints a
Figure-3-style error curve plus a Table-1-style summary with degradation
against sequential SGD.

Usage::

    python examples/compare_algorithms.py [--workers 16] [--epochs 16]
"""

import argparse

from repro.bench import ascii_plot, format_table
from repro.core import DistributedTrainer, TrainingConfig
from repro.core.metrics import degradation

ALGORITHMS = ("sgd", "ssgd", "asgd", "dc-asgd", "lc-asgd")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=16)
    parser.add_argument("--epochs", type=int, default=16)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    results = {}
    for algorithm in ALGORITHMS:
        config = TrainingConfig.small_cifar(
            algorithm=algorithm,
            num_workers=1 if algorithm == "sgd" else args.workers,
            epochs=args.epochs,
            lr_milestones=(args.epochs // 2, (3 * args.epochs) // 4),
            seed=args.seed,
        )
        print(f"running {algorithm:8s} (M={config.num_workers}) ...", flush=True)
        results[algorithm] = DistributedTrainer(config).run()

    print()
    print(ascii_plot(
        {a: (r.epochs(), r.series("test_error")) for a, r in results.items()},
        title=f"Test error vs epoch, M={args.workers} (CIFAR stand-in)",
        xlabel="epoch",
        ylabel="test error",
    ))

    baseline = results["sgd"].final_test_error
    rows = []
    for algorithm, run in results.items():
        deg = "baseline" if algorithm == "sgd" else f"{degradation(run.final_test_error, baseline):+.1f}%"
        rows.append([
            algorithm,
            run.num_workers,
            f"{100*run.final_test_error:.2f}",
            deg,
            f"{run.staleness['mean']:.1f}",
            f"{run.total_virtual_time:.1f}",
        ])
    print()
    print(format_table(
        ["algorithm", "M", "test err %", "vs SGD", "mean staleness", "virtual s"],
        rows,
        title="Table-1-style summary",
    ))


if __name__ == "__main__":
    main()
