#!/usr/bin/env python
"""The paper's future-work extension: workers with disjoint data shards.

The paper's main setting shares the training set among all workers; its
conclusion proposes extending LC-ASGD to "different workers train the
models with different subsets of input data".  This example implements
that: each simulated worker's loader draws only from its own shard
(repro.data.shard_dataset), and we compare shared-data vs sharded-data
training for ASGD and LC-ASGD.

Usage::

    python examples/federated_shards.py [--workers 8]
"""

import argparse

from repro.bench import format_table
from repro.core import DistributedTrainer, TrainingConfig
from repro.data import DataLoader, shard_dataset


def run(algorithm: str, workers: int, epochs: int, seed: int, sharded: bool):
    config = TrainingConfig.small_cifar(
        algorithm=algorithm,
        num_workers=workers,
        epochs=epochs,
        lr_milestones=(epochs // 2, (3 * epochs) // 4),
        seed=seed,
    )
    trainer = DistributedTrainer(config)
    if sharded:
        shards = shard_dataset(trainer.train_set, workers, seed=seed)
        for worker, shard in zip(trainer.workers, shards):
            worker.loader = DataLoader(shard, config.batch_size, seed=seed + worker.worker_id)
    return trainer.run()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--epochs", type=int, default=14)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    rows = []
    for algorithm in ("asgd", "lc-asgd"):
        for sharded in (False, True):
            label = "sharded" if sharded else "shared"
            print(f"running {algorithm:8s} ({label}) ...", flush=True)
            result = run(algorithm, args.workers, args.epochs, args.seed, sharded)
            rows.append([
                algorithm,
                label,
                f"{100*result.final_test_error:.2f}",
                f"{100*result.final_train_error:.2f}",
                f"{result.staleness['mean']:.1f}",
            ])

    print()
    print(format_table(
        ["algorithm", "data placement", "test err %", "train err %", "mean staleness"],
        rows,
        title=f"Shared vs sharded training data (M={args.workers})",
    ))
    print("\nSharding each worker to 1/M of the data is the harder setting the "
          "paper leaves to future work; loss compensation still applies since "
          "the server's loss series remains a global signal.")


if __name__ == "__main__":
    main()
