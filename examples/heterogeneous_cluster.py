#!/usr/bin/env python
"""Stress LC-ASGD under the paper's motivating condition: volatile delay.

Section 1 of the paper: "In real-life large-scale distributed training,
such gradient delay experienced by the worker is usually high and
volatile."  This example dials straggler probability up and compares plain
ASGD against LC-ASGD as delays become violent, printing the staleness
distribution and the step predictor's tracking quality at each level.

Usage::

    python examples/heterogeneous_cluster.py [--workers 16]
"""

import argparse

import numpy as np

from repro.bench import format_table
from repro.core import DistributedTrainer, TrainingConfig

STRAGGLER_LEVELS = (
    ("calm", 0.0, 1.0),
    ("occasional", 0.08, 10.0),
    ("violent", 0.20, 16.0),
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=16)
    parser.add_argument("--epochs", type=int, default=14)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    rows = []
    for label, probability, slowdown in STRAGGLER_LEVELS:
        for algorithm in ("asgd", "lc-asgd"):
            config = TrainingConfig.small_cifar(
                algorithm=algorithm,
                num_workers=args.workers,
                epochs=args.epochs,
                lr_milestones=(args.epochs // 2, (3 * args.epochs) // 4),
                seed=args.seed,
            )
            config.cluster.straggler_probability = probability
            config.cluster.straggler_slowdown = slowdown
            print(f"running {label:10s} {algorithm:8s} ...", flush=True)
            result = DistributedTrainer(config).run()
            step_mae = result.step_prediction_error()
            rows.append([
                label,
                algorithm,
                f"{100*result.final_test_error:.2f}",
                f"{result.staleness['mean']:.1f}",
                f"{result.staleness['max']:.0f}",
                "-" if np.isnan(step_mae) else f"{step_mae:.2f}",
            ])

    print()
    print(format_table(
        ["delay regime", "algorithm", "test err %", "mean staleness", "max staleness", "step-pred MAE"],
        rows,
        title=f"Delay-volatility stress test (M={args.workers})",
    ))
    print("\nExpected shape: staleness tails explode with stragglers; the loss-"
          "prediction compensation keeps LC-ASGD at or below plain ASGD's error.")


if __name__ == "__main__":
    main()
