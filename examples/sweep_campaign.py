#!/usr/bin/env python
"""Declarative multi-seed campaign with a persistent, resumable store.

Expands an (algorithm × worker count × seed) grid with the Sweep/Grid
combinators, runs it as a Campaign — optionally across processes — and
persists every run into a content-addressed ResultStore.  Kill it halfway
and run it again: completed cells load from the store and only the
remainder executes.

Usage::

    python examples/sweep_campaign.py [--store out/demo] [--jobs 2] [--seeds 3]
"""

import argparse

from repro.core import TrainingConfig
from repro.experiments import (
    Campaign,
    ConsoleEvents,
    Grid,
    ResultStore,
    Sweep,
    format_summary,
    make_executor,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store", default="out/sweep_demo",
                        help="result-store directory (delete it to start fresh)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel processes for the sim grid")
    parser.add_argument("--seeds", type=int, default=2)
    parser.add_argument("--epochs", type=int, default=6)
    args = parser.parse_args()

    grid = (
        Sweep("algorithm", ["sgd", "asgd", "lc-asgd"])
        * Sweep("num_workers", [2, 4])
        * Sweep("seed", list(range(args.seeds)))
    )
    print(f"grid: {grid!r} -> {len(grid)} cell(s)")

    def factory(**kwargs):
        return TrainingConfig.tiny(epochs=args.epochs, **kwargs)

    campaign = Campaign(
        grid.specs(factory, tags=["example"]),
        executor=make_executor(args.jobs),
        store=ResultStore(args.store),
        events=ConsoleEvents(),
    )
    report = campaign.run()

    print()
    print(format_summary(report.summarize()))
    print(f"\nexecuted {len(report.executed)}, cached {len(report.cached)} "
          f"(store: {args.store} — rerun me to resume instantly)")


if __name__ == "__main__":
    main()
