#!/usr/bin/env python
"""Run LC-ASGD on the *real* thread runtime and compare it with the simulator.

The simulator decides staleness from virtual timestamps; the thread backend
runs an actual parameter-server actor plus N worker threads, so the
staleness you see below is produced by genuine concurrency on your machine
(and by the optional emulated link/compute delays).  Deterministic mode
serializes the workers round-robin so a seed reproduces bit-identical
parameters — useful for debugging, at the cost of zero observed staleness.

Usage::

    python examples/thread_cluster.py [--workers 8] [--algorithm lc-asgd]
    python examples/thread_cluster.py --deterministic
    python examples/thread_cluster.py --compute-scale 0.1  # emulate slow nodes
"""

import argparse

from repro.core import TrainingConfig
from repro.core.config import ALGORITHMS
from repro.runtime import run_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--algorithm", default="lc-asgd", choices=list(ALGORITHMS))
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--deterministic", action="store_true",
                        help="round-robin scheduling; reproducible, staleness 0")
    parser.add_argument("--time-scale", type=float, default=0.0,
                        help="real seconds slept per virtual second of link delay")
    parser.add_argument("--compute-scale", type=float, default=0.0,
                        help="real seconds slept per virtual second of compute")
    args = parser.parse_args()

    config = TrainingConfig.small_cifar(
        algorithm=args.algorithm,
        num_workers=args.workers,
        epochs=args.epochs,
        lr_milestones=(args.epochs // 2, (3 * args.epochs) // 4),
        seed=args.seed,
    )

    print(f"[thread] {config.algorithm} on {config.num_workers} real worker thread(s)"
          f"{' (deterministic)' if args.deterministic else ''}...")
    threaded = run_experiment(
        config,
        backend="thread",
        deterministic=args.deterministic,
        time_scale=args.time_scale,
        compute_scale=args.compute_scale,
    )
    print(f"  test error     : {threaded.final_test_error:.2%}")
    print(f"  wall-clock     : {threaded.wall_time:.2f}s (real) "
          f"for {threaded.total_updates} updates "
          f"= {threaded.total_updates / max(threaded.wall_time, 1e-9):.0f} updates/s")
    print(f"  staleness      : mean {threaded.staleness['mean']:.2f}, "
          f"max {threaded.staleness['max']:.0f} (from real interleaving)")

    print(f"\n[sim]    same experiment on the virtual-time event loop...")
    simulated = run_experiment(config, backend="sim")
    print(f"  test error     : {simulated.final_test_error:.2%}")
    print(f"  virtual time   : {simulated.total_virtual_time:.1f}s simulated "
          f"(took {simulated.wall_time:.2f}s real)")
    print(f"  staleness      : mean {simulated.staleness['mean']:.2f}, "
          f"max {simulated.staleness['max']:.0f} (from virtual timing)")


if __name__ == "__main__":
    main()
