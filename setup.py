"""Setup shim so editable installs work on minimal/offline toolchains.

Modern tooling reads pyproject.toml; this file exists because PEP 660
editable installs require the `wheel` package, which offline environments
may lack.  `python setup.py develop` (or `pip install -e .` where wheel is
available) both work.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.22"],
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
