"""Table 3: per-iteration predictor overhead on ImageNet.

Same semantics as Table 2 (see bench_table2_overhead_cifar.py); the paper's
key observation is that against ImageNet's ~185 ms iterations the same
predictors cost only ~1.5% — the overhead is model-size-relative, so the
heavier the worker model, the more negligible LC-ASGD's server cost.
"""

from repro.bench import format_table
from repro.bench.workloads import PAPER_OVERHEAD, imagenet_workload

from benchmarks.conftest import WORKER_COUNTS, imagenet_curves


def test_table3_overhead_imagenet(benchmark):
    results = benchmark.pedantic(imagenet_curves, rounds=1, iterations=1)

    rows = []
    overheads = {}
    for m in WORKER_COUNTS:
        run = results[("lc-asgd", m)]
        loss_ms = run.timers["loss_pred_ms"]
        step_ms = run.timers["step_pred_ms"]
        total_ms = imagenet_workload("lc-asgd", m).cluster.mean_batch_time * 1e3
        overheads[m] = 100 * (loss_ms + step_ms) / total_ms
        ref = PAPER_OVERHEAD[("imagenet", m)]
        rows.append([
            m,
            f"{loss_ms:.2f}", f"{ref['loss_pred_ms']:.2f}",
            f"{step_ms:.2f}", f"{ref['step_pred_ms']:.2f}",
            f"{total_ms:.1f}", f"{ref['total_ms']:.1f}",
            f"{overheads[m]:.1f}%", f"{ref['overhead_pct']:.1f}%",
        ])
    print()
    print(format_table(
        ["M", "loss ms", "(paper)", "step ms", "(paper)", "total ms", "(paper)", "overhead", "(paper)"],
        rows,
        title="Table 3: predictor overhead per training iteration (ImageNet)",
    ))

    # The paper's structural claim: ImageNet-scale iterations make the same
    # predictor cost a much smaller fraction than on CIFAR (~6x batch time).
    cifar_results = None
    try:
        from benchmarks.conftest import _CACHE

        cifar_results = _CACHE.get("cifar-curves")
    except ImportError:  # pragma: no cover
        pass
    for m in WORKER_COUNTS:
        run = results[("lc-asgd", m)]
        combined = run.timers["loss_pred_ms"] + run.timers["step_pred_ms"]
        assert combined > 0
        if cifar_results is not None:
            cifar_total = 30.0
            imagenet_total = 180.0
            cifar_run = cifar_results[("lc-asgd", m)]
            cifar_overhead = (
                cifar_run.timers["loss_pred_ms"] + cifar_run.timers["step_pred_ms"]
            ) / cifar_total
            assert combined / imagenet_total < cifar_overhead + 0.05
