"""Shared run cache for the benchmark suite.

Several paper artifacts are different views of the same runs (Figure 3 and
Figure 4 are the same training jobs plotted against epochs vs wall-clock;
Figures 7-8 read the predictor traces of the Table-1 LC-ASGD runs).  To keep
the suite's wall time sane, each underlying grid is executed once per pytest
session and memoized; the first bench that needs it pays the cost.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import pytest

from repro.bench.workloads import cifar_workload, imagenet_workload
from repro.core.metrics import RunResult
from repro.core.trainer import DistributedTrainer

_CACHE: Dict[str, object] = {}

CIFAR_ALGOS = ("sgd", "ssgd", "asgd", "dc-asgd", "lc-asgd")
IMAGENET_ALGOS = ("ssgd", "asgd", "dc-asgd", "lc-asgd")  # paper Fig. 5 omits SGD
WORKER_COUNTS = (4, 8, 16)


def cached(key: str, factory: Callable[[], object]):
    """Memoize ``factory()`` under ``key`` for the whole bench session."""
    if key not in _CACHE:
        _CACHE[key] = factory()
    return _CACHE[key]


def _run(config) -> RunResult:
    return DistributedTrainer(config).run()


def cifar_curves() -> Dict[Tuple[str, int], RunResult]:
    """All CIFAR runs behind Figures 2-4 and the CIFAR half of Table 1."""

    def build():
        out: Dict[Tuple[str, int], RunResult] = {}
        out[("sgd", 1)] = _run(cifar_workload("sgd", 1))
        for algo in CIFAR_ALGOS[1:]:
            for m in WORKER_COUNTS:
                out[(algo, m)] = _run(cifar_workload(algo, m))
        return out

    return cached("cifar-curves", build)


def imagenet_curves() -> Dict[Tuple[str, int], RunResult]:
    """All ImageNet runs behind Figures 5-8 and the ImageNet half of Table 1."""

    def build():
        out: Dict[Tuple[str, int], RunResult] = {}
        for algo in IMAGENET_ALGOS:
            for m in WORKER_COUNTS:
                out[(algo, m)] = _run(imagenet_workload(algo, m))
        return out

    return cached("imagenet-curves", build)


@pytest.fixture(scope="session")
def cifar_grid():
    return cifar_curves()


@pytest.fixture(scope="session")
def imagenet_grid():
    return imagenet_curves()
