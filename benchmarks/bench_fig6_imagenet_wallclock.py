"""Figure 6: error vs wall-clock seconds on the ImageNet stand-in.

Same runs as Figure 5, plotted against the DES virtual clock; reproduces
the barrier-vs-async speed separation at the heavier per-batch cost the
paper's Tables 2-3 report for ImageNet (~180 ms/batch).
"""

from repro.bench import ascii_plot, format_table

from benchmarks.conftest import IMAGENET_ALGOS, WORKER_COUNTS, imagenet_curves


def test_fig6_error_vs_wallclock(benchmark):
    results = benchmark.pedantic(imagenet_curves, rounds=1, iterations=1)

    for m in (4, 16):
        series = {
            algo: (results[(algo, m)].times(), results[(algo, m)].series("test_error"))
            for algo in IMAGENET_ALGOS
        }
        print()
        print(ascii_plot(series, title=f"Figure 6 (M={m}): test error vs simulated seconds",
                         xlabel="virtual seconds", ylabel="top-1 test error"))

    rows = [
        [algo, m, f"{results[(algo, m)].total_virtual_time:.0f}"]
        for algo in IMAGENET_ALGOS
        for m in WORKER_COUNTS
    ]
    print(format_table(["algorithm", "M", "total virtual s"], rows, title="Figure 6 summary"))

    # more workers -> faster epochs for every algorithm
    for algo in IMAGENET_ALGOS:
        assert (
            results[(algo, 16)].total_virtual_time < results[(algo, 4)].total_virtual_time
        ), algo
    # the barrier keeps SSGD at or above ASGD's wall clock
    for m in WORKER_COUNTS:
        assert (
            results[("ssgd", m)].total_virtual_time
            >= results[("asgd", m)].total_virtual_time * 0.95
        )
