"""Figure 4: train/test error vs wall-clock seconds on CIFAR.

Paper observations this bench reproduces on the DES virtual clock:
ASGD is fastest per epoch (no barrier), SSGD stalls on stragglers, and
LC-ASGD pays a small predictor round-trip cost but keeps ASGD-like speed.
"""

from repro.bench import ascii_plot, format_table

from benchmarks.conftest import CIFAR_ALGOS, WORKER_COUNTS, cifar_curves


def test_fig4_error_vs_wallclock(benchmark):
    results = benchmark.pedantic(cifar_curves, rounds=1, iterations=1)

    for m in (4, 16):
        series = {}
        for algo in CIFAR_ALGOS:
            run = results[(algo, 1 if algo == "sgd" else m)]
            series[algo] = (run.times(), run.series("test_error"))
        print()
        print(ascii_plot(series, title=f"Figure 4 (M={m}): test error vs simulated seconds",
                         xlabel="virtual seconds", ylabel="test error"))

    rows = []
    for algo in CIFAR_ALGOS:
        for m in (1,) if algo == "sgd" else WORKER_COUNTS:
            run = results[(algo, m)]
            rows.append([algo, m, f"{run.total_virtual_time:.1f}",
                         f"{run.total_virtual_time / max(run.total_updates,1) * 1e3:.1f}"])
    print(format_table(["algorithm", "M", "total virtual s", "virtual ms/batch"], rows,
                       title="Figure 4 summary (simulated wall clock)"))

    # Shape assertions:
    # 1. distributing speeds up: every M=16 run is much faster than SGD;
    sgd_time = results[("sgd", 1)].total_virtual_time
    for algo in CIFAR_ALGOS[1:]:
        assert results[(algo, 16)].total_virtual_time < sgd_time
    # 2. the SSGD barrier costs wall-clock relative to ASGD at every M;
    for m in WORKER_COUNTS:
        assert results[("ssgd", m)].total_virtual_time >= results[("asgd", m)].total_virtual_time * 0.95
    # 3. LC-ASGD's extra round trip costs something but stays in the async
    #    ballpark (paper: "similar convergence speed to ASGD").
    for m in WORKER_COUNTS:
        lc = results[("lc-asgd", m)].total_virtual_time
        asgd = results[("asgd", m)].total_virtual_time
        assert lc >= asgd * 0.9
        assert lc <= asgd * 2.5
