"""Table 2: per-iteration predictor overhead on CIFAR.

Paper: loss predictor ~1.3 ms, step predictor ~1.4 ms per training
iteration against a ~32-34 ms ResNet-18 V100 iteration => ~8% overhead,
rising slightly with M.

Measurement semantics here (documented in EXPERIMENTS.md): predictor costs
are *real measured CPU milliseconds* of the online LSTMs; "total training"
is the *simulated* per-batch time (30 ms — deliberately calibrated to the
paper's V100 ResNet-18 iteration), because our worker is a stand-in MLP
whose real CPU time says nothing about the paper's hardware.  The overhead
ratio is therefore predictor-cost : paper-scale-iteration, the same
quantity Table 2 reports.
"""

from repro.bench import format_table
from repro.bench.workloads import PAPER_OVERHEAD, cifar_workload

from benchmarks.conftest import WORKER_COUNTS, cifar_curves


def test_table2_overhead_cifar(benchmark):
    results = benchmark.pedantic(cifar_curves, rounds=1, iterations=1)

    rows = []
    for m in WORKER_COUNTS:
        run = results[("lc-asgd", m)]
        loss_ms = run.timers["loss_pred_ms"]
        step_ms = run.timers["step_pred_ms"]
        total_ms = cifar_workload("lc-asgd", m).cluster.mean_batch_time * 1e3
        overhead = 100 * (loss_ms + step_ms) / total_ms
        ref = PAPER_OVERHEAD[("cifar", m)]
        rows.append([
            m,
            f"{loss_ms:.2f}", f"{ref['loss_pred_ms']:.2f}",
            f"{step_ms:.2f}", f"{ref['step_pred_ms']:.2f}",
            f"{total_ms:.1f}", f"{ref['total_ms']:.1f}",
            f"{overhead:.1f}%", f"{ref['overhead_pct']:.1f}%",
        ])
    print()
    print(format_table(
        ["M", "loss ms", "(paper)", "step ms", "(paper)", "total ms", "(paper)", "overhead", "(paper)"],
        rows,
        title="Table 2: predictor overhead per training iteration (CIFAR)",
    ))

    for m in WORKER_COUNTS:
        run = results[("lc-asgd", m)]
        assert run.timers["loss_pred_ms"] > 0
        assert run.timers["step_pred_ms"] > 0
        # predictors must stay within a couple of paper-scale iterations even
        # on a contended CPU (EXPERIMENTS.md discusses the CPU-vs-GPU gap)
        combined = run.timers["loss_pred_ms"] + run.timers["step_pred_ms"]
        assert combined < 60.0, f"predictor cost {combined:.1f} ms is implausibly high"
