"""Ablation (ours): do the LSTM predictors matter?

The paper only evaluates LSTM predictors.  This bench swaps them for the
non-learned baselines (EMA / last-value) inside otherwise identical
LC-ASGD / M=16 runs and compares both prediction accuracy and final error.
"""

from repro.bench import format_table
from repro.bench.workloads import cifar_workload
from repro.core.trainer import DistributedTrainer

from benchmarks.conftest import cached, cifar_curves

VARIANTS = (("ema", "ema"), ("last", "last"))


def _baseline_runs():
    out = {}
    for loss_variant, step_variant in VARIANTS:
        cfg = cifar_workload("lc-asgd", 16)
        cfg.predictor.loss_variant = loss_variant
        cfg.predictor.step_variant = step_variant
        out[loss_variant] = DistributedTrainer(cfg).run()
    return out


def test_predictor_ablation(benchmark):
    lstm_run = cifar_curves()[("lc-asgd", 16)]
    baseline_runs = benchmark.pedantic(
        lambda: cached("predictor-ablation", _baseline_runs), rounds=1, iterations=1
    )

    rows = [[
        "lstm (paper)",
        f"{100*lstm_run.final_test_error:.2f}",
        f"{lstm_run.loss_prediction_error():.4f}",
        f"{lstm_run.step_prediction_error():.2f}",
        f"{lstm_run.timers['loss_pred_ms'] + lstm_run.timers['step_pred_ms']:.2f}",
    ]]
    for variant, run in baseline_runs.items():
        rows.append([
            variant,
            f"{100*run.final_test_error:.2f}",
            f"{run.loss_prediction_error():.4f}",
            f"{run.step_prediction_error():.2f}",
            f"{run.timers['loss_pred_ms'] + run.timers['step_pred_ms']:.2f}",
        ])
    print()
    print(format_table(
        ["predictor", "test err %", "loss MAE", "step MAE", "pred ms/iter"],
        rows,
        title="Predictor ablation: LSTM (Algorithms 3-4) vs non-learned baselines, LC-ASGD M=16",
    ))

    # Structural expectations: all variants train successfully; the LSTM's
    # one-step loss forecasts are competitive with (or beat) the baselines.
    for run in list(baseline_runs.values()) + [lstm_run]:
        assert run.final_test_error < 0.6
    assert lstm_run.loss_prediction_error() < 2 * min(
        run.loss_prediction_error() for run in baseline_runs.values()
    )
