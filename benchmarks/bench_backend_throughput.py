"""Backend throughput: updates/sec of the sim vs thread vs proc runtimes.

Not a paper artifact — this is the repo's own execution-layer benchmark.
Every backend processes the *same* fixed number of gradient updates from the
same ExperimentPlan specification; throughput is updates divided by real
wall seconds (for the simulator that is the cost of running the event loop
plus the math; for the thread runtime it includes real queueing and
scheduling; for the proc runtime it additionally includes spawning real
worker processes and moving every message through loopback sockets).  The
table also reports the mean observed staleness — simulated for ``sim``,
genuine thread interleaving for ``thread``, and genuine cross-process
racing for ``proc``.
"""

import time

from repro.bench import format_table, record_trajectory
from repro.bench.workloads import throughput_workload
from repro.runtime import run_experiment

ALGOS = ("asgd", "lc-asgd")
BACKENDS = ("sim", "thread", "proc")
# decentralized row: ad-psgd has no server, so it runs on the gossip
# runtime whichever backend name dispatches to it
COMBOS = tuple((a, b) for a in ALGOS for b in BACKENDS) + (("ad-psgd", "gossip"),)
# the codec ablation rides the same workload: every codec moves the same
# updates over real sockets, so wire bytes/update is directly comparable
CODECS = ("raw32", "fp16", "topk")


def _measure(algorithm: str, backend: str, codec: str = "raw32"):
    config = throughput_workload(algorithm=algorithm, num_workers=4, comm_codec=codec)
    start = time.perf_counter()
    result = run_experiment(config, backend=backend)
    elapsed = time.perf_counter() - start
    return result, result.total_updates / max(elapsed, 1e-9)


def test_backend_throughput(benchmark):
    def run_all():
        out = {combo: _measure(*combo) for combo in COMBOS}
        # raw32 is literally a pass-through, so its proc row doubles as
        # the codec baseline; only the compressors need extra runs
        out[("asgd", "proc", "raw32")] = out[("asgd", "proc")]
        for codec in CODECS[1:]:
            out[("asgd", "proc", codec)] = _measure("asgd", "proc", codec)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for algo, backend in COMBOS:
        result, ups = results[(algo, backend)]
        rows.append([
            algo,
            backend,
            result.total_updates,
            f"{ups:.1f}",
            f"{result.staleness['mean']:.2f}",
            f"{result.wall_time:.2f}",
        ])
    print()
    print(format_table(
        ["algorithm", "backend", "updates", "updates/sec", "mean staleness", "wall s"],
        rows,
        title="Backend throughput (4 workers, fixed update budget)",
    ))

    codec_rows = []
    wire_per_update = {}
    for codec in CODECS:
        result, ups = results[("asgd", "proc", codec)]
        per_update = result.comm["wire_bytes"] / max(result.total_updates, 1)
        wire_per_update[codec] = per_update
        codec_rows.append([
            codec,
            result.total_updates,
            f"{ups:.1f}",
            f"{per_update / 1024:.2f}",
            f"{result.comm['wire_bytes'] / 1e6:.2f}",
        ])
    print()
    print(format_table(
        ["codec", "updates", "updates/sec", "wire KiB/update", "wire MB total"],
        codec_rows,
        title="Proc wire traffic by gradient codec (asgd, 4 workers)",
    ))

    for algo, backend in COMBOS:
        result, ups = results[(algo, backend)]
        assert result.total_updates == throughput_workload(algo).max_updates
        assert ups > 0
        assert result.backend == backend
    # the concurrent runtimes must exhibit genuine (nonzero) async staleness
    assert results[("asgd", "thread")][0].staleness["mean"] > 0
    assert results[("asgd", "proc")][0].staleness["mean"] > 0
    # half-precision must actually shrink the stream, not just the payloads
    assert wire_per_update["raw32"] >= 1.9 * wire_per_update["fp16"]
    assert wire_per_update["topk"] < wire_per_update["raw32"]

    record_trajectory("backend_throughput", {
        **{
            f"{algo.replace('-', '_')}_{backend}_updates_per_sec": ups
            for key, (_, ups) in results.items()
            if len(key) == 2
            for algo, backend in [key]
        },
        **{
            f"asgd_proc_{codec}_wire_bytes_per_update": wire_per_update[codec]
            for codec in CODECS
        },
    })
