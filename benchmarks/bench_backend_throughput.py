"""Backend throughput: updates/sec of the sim vs thread vs proc runtimes.

Not a paper artifact — this is the repo's own execution-layer benchmark.
Every backend processes the *same* fixed number of gradient updates from the
same ExperimentPlan specification; throughput is updates divided by real
wall seconds (for the simulator that is the cost of running the event loop
plus the math; for the thread runtime it includes real queueing and
scheduling; for the proc runtime it additionally includes spawning real
worker processes and moving every message through loopback sockets).  The
table also reports the mean observed staleness — simulated for ``sim``,
genuine thread interleaving for ``thread``, and genuine cross-process
racing for ``proc``.

The obs section measures the observability tax: the same workload with
``obs=False`` (the NullRecorder default every un-instrumented run pays)
vs ``obs=True`` (a live TraceRecorder validating and retaining every
event).  The budget is ≤5% throughput overhead with obs *on*, measured
as the ratio of per-side medians over interleaved off/on runs.
"""

import statistics
import time

from repro.bench import format_table, record_trajectory
from repro.bench.workloads import throughput_workload
from repro.runtime import run_experiment

ALGOS = ("asgd", "lc-asgd")
BACKENDS = ("sim", "thread", "proc")
# decentralized row: ad-psgd has no server, so it runs on the gossip
# runtime whichever backend name dispatches to it
COMBOS = tuple((a, b) for a in ALGOS for b in BACKENDS) + (("ad-psgd", "gossip"),)
# the codec ablation rides the same workload: every codec moves the same
# updates over real sockets, so wire bytes/update is directly comparable
CODECS = ("raw32", "fp16", "topk")
# the obs tax is measured on the backends where emit sites sit on the hot
# path every update (sim: trainer+transport; thread: server actor+workers)
OBS_BACKENDS = ("sim", "thread")
OBS_BUDGET = 0.05  # obs-on may cost at most 5% of obs-off throughput
OBS_REPEATS = 7
# a marginal verdict escalates sampling up to this many repeats: more
# data shrinks the estimator's noise before the budget is enforced
OBS_MAX_REPEATS = 21
# longer than the fast-profile workload: a sub-second threaded run has
# ±5-8% scheduler noise per sample, swamping a few-percent overhead
OBS_UPDATES = 640


def _measure(algorithm: str, backend: str, codec: str = "raw32", obs: bool = False):
    config = throughput_workload(algorithm=algorithm, num_workers=4, comm_codec=codec)
    start = time.perf_counter()
    result = run_experiment(config, backend=backend, obs=obs)
    elapsed = time.perf_counter() - start
    return result, result.total_updates / max(elapsed, 1e-9)


def _obs_tax(algorithm: str, backend: str):
    """Throughput (best off, best on, overhead) from interleaved samples.

    Three defenses against noise that a naive off-block/on-block
    comparison lacks:

    * off and on runs strictly interleave, so the multi-minute machine
      drift a bench invocation spans hits both sides equally;
    * the overhead is the ratio of per-side *medians* — a shared box
      shows occasional +25% contention spikes on single runs, and the
      median is the estimator that ignores them on either side;
    * throughput is updates over ``RunResult.wall_time`` — the span of
      the run loop itself, where every emit site lives — over a run long
      enough (:data:`OBS_UPDATES`) for thread-scheduling jitter to
      average out.

    Even so the estimator carries a few percent of invocation-to-
    invocation noise, so a verdict over budget is not accepted until
    sampling has escalated to :data:`OBS_MAX_REPEATS` repeats — more
    data, not a looser budget, is the response to a marginal reading.
    """
    config = throughput_workload(
        algorithm=algorithm, num_workers=4, max_updates=OBS_UPDATES
    )

    def sample(obs: bool) -> float:
        result = run_experiment(config, backend=backend, obs=obs)
        return result.total_updates / max(result.wall_time, 1e-9)

    for obs in (False, True):
        sample(obs)  # warmup: the first run of a backend is cold
    ups = {False: [], True: []}

    def overhead() -> float:
        return statistics.median(ups[False]) / statistics.median(ups[True]) - 1.0

    while True:
        for _ in range(OBS_REPEATS):
            for obs in (False, True):
                ups[obs].append(sample(obs))
        if overhead() <= OBS_BUDGET or len(ups[True]) >= OBS_MAX_REPEATS:
            return max(ups[False]), max(ups[True]), overhead()


def test_backend_throughput(benchmark):
    def run_all():
        out = {combo: _measure(*combo) for combo in COMBOS}
        # raw32 is literally a pass-through, so its proc row doubles as
        # the codec baseline; only the compressors need extra runs
        out[("asgd", "proc", "raw32")] = out[("asgd", "proc")]
        for codec in CODECS[1:]:
            out[("asgd", "proc", codec)] = _measure("asgd", "proc", codec)
        # the obs tax: identical workload, recorder off vs on, the
        # overhead taken as the ratio of per-side medians
        for backend in OBS_BACKENDS:
            off, on, overhead = _obs_tax("asgd", backend)
            out[("obs", backend, "off")] = off
            out[("obs", backend, "on")] = on
            out[("obs", backend, "overhead")] = overhead
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for algo, backend in COMBOS:
        result, ups = results[(algo, backend)]
        rows.append([
            algo,
            backend,
            result.total_updates,
            f"{ups:.1f}",
            f"{result.staleness['mean']:.2f}",
            f"{result.wall_time:.2f}",
        ])
    print()
    print(format_table(
        ["algorithm", "backend", "updates", "updates/sec", "mean staleness", "wall s"],
        rows,
        title="Backend throughput (4 workers, fixed update budget)",
    ))

    codec_rows = []
    wire_per_update = {}
    for codec in CODECS:
        result, ups = results[("asgd", "proc", codec)]
        per_update = result.comm["wire_bytes"] / max(result.total_updates, 1)
        wire_per_update[codec] = per_update
        codec_rows.append([
            codec,
            result.total_updates,
            f"{ups:.1f}",
            f"{per_update / 1024:.2f}",
            f"{result.comm['wire_bytes'] / 1e6:.2f}",
        ])
    print()
    print(format_table(
        ["codec", "updates", "updates/sec", "wire KiB/update", "wire MB total"],
        codec_rows,
        title="Proc wire traffic by gradient codec (asgd, 4 workers)",
    ))

    obs_rows = []
    obs_overhead = {}
    for backend in OBS_BACKENDS:
        off = results[("obs", backend, "off")]
        on = results[("obs", backend, "on")]
        overhead = results[("obs", backend, "overhead")]
        obs_overhead[backend] = overhead
        obs_rows.append([backend, f"{off:.1f}", f"{on:.1f}", f"{overhead:+.1%}"])
    print()
    print(format_table(
        ["backend", "best obs off ups", "best obs on ups", "median overhead"],
        obs_rows,
        title=f"Observability tax (asgd, 4 workers, median of {OBS_REPEATS} interleaved runs)",
    ))

    for algo, backend in COMBOS:
        result, ups = results[(algo, backend)]
        assert result.total_updates == throughput_workload(algo).max_updates
        assert ups > 0
        assert result.backend == backend
    # the concurrent runtimes must exhibit genuine (nonzero) async staleness
    assert results[("asgd", "thread")][0].staleness["mean"] > 0
    assert results[("asgd", "proc")][0].staleness["mean"] > 0
    # half-precision must actually shrink the stream, not just the payloads
    assert wire_per_update["raw32"] >= 1.9 * wire_per_update["fp16"]
    assert wire_per_update["topk"] < wire_per_update["raw32"]
    # the observability budget: tracing everything may cost at most 5%
    for backend, overhead in obs_overhead.items():
        assert overhead <= OBS_BUDGET, (
            f"obs-on costs {overhead:.1%} on {backend} (budget {OBS_BUDGET:.0%})"
        )

    record_trajectory("backend_throughput", {
        **{
            f"{algo.replace('-', '_')}_{backend}_updates_per_sec": results[(algo, backend)][1]
            for algo, backend in COMBOS
        },
        **{
            f"asgd_proc_{codec}_wire_bytes_per_update": wire_per_update[codec]
            for codec in CODECS
        },
        **{
            f"asgd_{backend}_obs_{state}_updates_per_sec": results[("obs", backend, state)]
            for backend in OBS_BACKENDS
            for state in ("off", "on")
        },
        **{
            f"asgd_{backend}_obs_overhead_pct": obs_overhead[backend] * 100.0
            for backend in OBS_BACKENDS
        },
    })
