"""Figure 3: train/test error vs epoch, five algorithms, M in {4, 8, 16}.

Paper: ResNet-18 + Async-BN on CIFAR-10; LC-ASGD tracks (or beats) SGD while
ASGD/SSGD degrade with M.  Here: the CIFAR stand-in workload.
"""

from repro.bench import ascii_plot, format_table

from benchmarks.conftest import CIFAR_ALGOS, WORKER_COUNTS, cifar_curves


def test_fig3_error_vs_epoch(benchmark):
    results = benchmark.pedantic(cifar_curves, rounds=1, iterations=1)

    for m in WORKER_COUNTS:
        series = {}
        for algo in CIFAR_ALGOS:
            run = results[(algo, 1 if algo == "sgd" else m)]
            series[algo] = (run.epochs(), run.series("test_error"))
        print()
        print(ascii_plot(series, title=f"Figure 3 (M={m}): test error vs epoch (CIFAR stand-in)",
                         xlabel="epoch", ylabel="test error"))

    rows = []
    for algo in CIFAR_ALGOS:
        for m in (1,) if algo == "sgd" else WORKER_COUNTS:
            run = results[(algo, m)]
            rows.append([algo, m, f"{100*run.final_train_error:.2f}", f"{100*run.final_test_error:.2f}",
                         f"{run.staleness['mean']:.1f}"])
    print(format_table(["algorithm", "M", "train err %", "test err %", "mean staleness"], rows,
                       title="Figure 3 summary"))

    # Shape assertions (robust versions of the paper's observations):
    # 1. every algorithm learned (errors far below the 90% chance floor);
    for (algo, m), run in results.items():
        assert run.final_test_error < 0.65, (algo, m)
    # 2. staleness grows with M for the async family;
    assert results[("asgd", 16)].staleness["mean"] > results[("asgd", 4)].staleness["mean"]
    # 3. at M=16 the compensated algorithms do not do worse than plain ASGD
    #    beyond noise (the paper's central claim, tolerance 2 points).
    asgd16 = results[("asgd", 16)].final_test_error
    assert results[("lc-asgd", 16)].final_test_error < asgd16 + 0.02
    assert results[("dc-asgd", 16)].final_test_error < asgd16 + 0.02
