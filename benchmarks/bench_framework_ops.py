"""Substrate microbenchmarks: throughput of the from-scratch framework.

Not a paper artifact, but the foundation every experiment stands on: these
track the cost of the tensor engine's hot ops (GEMM-backed conv, LSTM step,
full train steps) so regressions in the substrate are visible.
"""

import numpy as np
import pytest

from repro import nn
from repro.optim import SGD
from repro.tensor import Tensor
from repro.tensor import functional as F

RNG = np.random.default_rng(0)


def test_matmul_forward_backward(benchmark):
    a = Tensor(RNG.standard_normal((128, 256)).astype(np.float32), requires_grad=True)
    b = Tensor(RNG.standard_normal((256, 128)).astype(np.float32), requires_grad=True)

    def step():
        a.grad = b.grad = None
        (a @ b).sum().backward()

    benchmark(step)


def test_conv2d_forward_backward(benchmark):
    x = Tensor(RNG.standard_normal((16, 8, 16, 16)).astype(np.float32), requires_grad=True)
    w = Tensor(RNG.standard_normal((16, 8, 3, 3)).astype(np.float32), requires_grad=True)

    def step():
        x.grad = w.grad = None
        F.conv2d(x, w, stride=1, padding=1).sum().backward()

    benchmark(step)


def test_lstm_sequence_forward(benchmark):
    lstm = nn.LSTM(16, 64, num_layers=2, rng=np.random.default_rng(0))
    x = Tensor(RNG.standard_normal((8, 12, 16)).astype(np.float32))

    from repro.tensor import no_grad

    def step():
        with no_grad():
            lstm(x)

    benchmark(step)


def test_mlp_train_step(benchmark):
    model = nn.MLP((192, 96, 48, 10), batch_norm=True, rng=np.random.default_rng(0))
    opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
    x = Tensor(RNG.standard_normal((64, 192)).astype(np.float32))
    y = RNG.integers(0, 10, 64)

    def step():
        loss = F.cross_entropy(model(x), y)
        opt.zero_grad()
        loss.backward()
        opt.step()

    benchmark(step)


def test_resnet_tiny_train_step(benchmark):
    model = nn.resnet_tiny(num_classes=10, base_width=8, rng=np.random.default_rng(0))
    opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
    x = Tensor(RNG.standard_normal((32, 3, 8, 8)).astype(np.float32))
    y = RNG.integers(0, 10, 32)

    def step():
        loss = F.cross_entropy(model(x), y)
        opt.zero_grad()
        loss.backward()
        opt.step()

    benchmark(step)


def test_online_loss_predictor_step(benchmark):
    """One observe+predict cycle of Algorithm 3's LSTM (the Table-2 unit)."""
    from repro.core.predictors import LSTMLossPredictor

    pred = LSTMLossPredictor(hidden_size=16, window=10, seed=0)
    for v in np.linspace(3.0, 2.0, 12):
        pred.observe(v)
    state = {"v": 2.0}

    def step():
        state["v"] *= 0.999
        pred.observe(state["v"])
        pred.predict_delay(state["v"], 8)

    benchmark(step)
