"""Table 1: final test error and degradation for every algorithm and M.

Paper: {BN, Async-BN} x {CIFAR-10, ImageNet} x M in {1, 4, 8, 16} x five
algorithms.  The Async-BN halves come from the shared figure grids; the
replace-BN comparison lives in bench_table4_asyncbn.py (Section 5.3).
Degradation is computed against the paper's baselines: sequential SGD for
CIFAR, SSGD-4 for ImageNet.
"""

from repro.bench import format_table
from repro.bench.workloads import paper_reference
from repro.core.metrics import degradation

from benchmarks.conftest import (
    CIFAR_ALGOS,
    IMAGENET_ALGOS,
    WORKER_COUNTS,
    cifar_curves,
    imagenet_curves,
)


def _both_grids():
    return cifar_curves(), imagenet_curves()


def test_table1_final_errors(benchmark):
    cifar, imagenet = benchmark.pedantic(_both_grids, rounds=1, iterations=1)

    rows = []
    cifar_base = cifar[("sgd", 1)].final_test_error
    rows.append(["cifar", 1, "sgd", f"{100*cifar_base:.2f}", "baseline", "5.15", "baseline"])
    for m in WORKER_COUNTS:
        for algo in CIFAR_ALGOS[1:]:
            err = cifar[(algo, m)].final_test_error
            deg = degradation(err, cifar_base)
            ref = paper_reference("cifar", m, algo)
            ref_deg = degradation(ref, 5.15)
            rows.append(["cifar", m, algo, f"{100*err:.2f}", f"{deg:+.1f}%", f"{ref}", f"{ref_deg:+.1f}%"])

    imagenet_base = imagenet[("ssgd", 4)].final_test_error
    for m in WORKER_COUNTS:
        for algo in IMAGENET_ALGOS:
            err = imagenet[(algo, m)].final_test_error
            deg = degradation(err, imagenet_base)
            ref = paper_reference("imagenet", m, algo)
            ref_deg = degradation(ref, 24.49)
            rows.append(["imagenet", m, algo, f"{100*err:.2f}", f"{deg:+.1f}%", f"{ref}", f"{ref_deg:+.1f}%"])

    print()
    print(format_table(
        ["dataset", "M", "algorithm", "err %", "degr.", "paper err %", "paper degr."],
        rows,
        title="Table 1 (Async-BN): measured vs paper (shape comparison; absolute scales differ)",
    ))

    # Robust shape assertions (the paper's Table-1 claims, with noise slack):
    # 1. LC-ASGD is the best (or within 2 points of the best) distributed
    #    algorithm at every M, on both datasets;
    for grid, algos, key in ((cifar, CIFAR_ALGOS[1:], "cifar"), (imagenet, IMAGENET_ALGOS, "imagenet")):
        for m in WORKER_COUNTS:
            best = min(grid[(a, m)].final_test_error for a in algos)
            lc = grid[("lc-asgd", m)].final_test_error
            assert lc <= best + 0.02, (key, m, lc, best)
    # 2. at small M, LC-ASGD is competitive with the sequential baseline
    #    (paper: "even better than SGD when the number of workers is small");
    assert cifar[("lc-asgd", 4)].final_test_error <= cifar_base + 0.02
    # 3. SSGD degrades with the worker count on both datasets.
    assert cifar[("ssgd", 16)].final_test_error > cifar[("ssgd", 4)].final_test_error - 0.01
    assert imagenet[("ssgd", 16)].final_test_error > imagenet[("ssgd", 4)].final_test_error - 0.01
