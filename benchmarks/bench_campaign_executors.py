"""Campaign executors: serial vs multiprocessing wall-clock on a sim grid.

Not a paper artifact — this is the experiment layer's own benchmark.  The
sim backend is single-threaded pure NumPy, so a compare-style grid is
embarrassingly parallel across processes; this bench runs the *same*
4-run (algorithm × seed) grid through :class:`SerialExecutor` and a 2-proc
:class:`MultiprocessExecutor` and asserts the pool is actually faster —
the speedup claim behind ``repro sweep --jobs``.
"""

import os
import time

from repro.bench import format_table
from repro.core.config import TrainingConfig
from repro.experiments import Campaign, Grid, MultiprocessExecutor, SerialExecutor


def _grid_specs():
    def factory(**kwargs):
        # long enough per run (~1-2 s) that pool startup cost cannot
        # swamp the parallel win, short enough to keep the bench snappy
        return TrainingConfig.tiny(num_workers=4, epochs=12, **kwargs)

    return Grid(algorithm=["asgd", "lc-asgd"], seed=[0, 1]).specs(factory)


def _measure(executor):
    start = time.perf_counter()
    report = Campaign(_grid_specs(), executor=executor).run()
    return report, time.perf_counter() - start


def test_campaign_executor_speedup(benchmark):
    def run_both():
        serial_report, serial_s = _measure(SerialExecutor())
        pool_report, pool_s = _measure(MultiprocessExecutor(processes=2))
        return serial_report, serial_s, pool_report, pool_s

    serial_report, serial_s, pool_report, pool_s = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    print()
    print(format_table(
        ["executor", "runs", "wall s", "speedup"],
        [
            ["serial", len(serial_report), f"{serial_s:.2f}", "1.00x"],
            ["pool(2)", len(pool_report), f"{pool_s:.2f}", f"{serial_s / pool_s:.2f}x"],
        ],
        title="Campaign executors (4-run sim grid: 2 algorithms x 2 seeds)",
    ))

    # identical grids, identical (bit-reproducible sim) results
    assert [r.final_test_error for r in serial_report.results] == [
        r.final_test_error for r in pool_report.results
    ]
    # the acceptance claim: the pool beats serial on wall-clock — wherever
    # two processes can actually run at once (single-core boxes can only
    # time-slice, so there the pool is overhead by construction)
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    if cores and cores >= 2:
        assert pool_s < serial_s, (
            f"2-process pool ({pool_s:.2f}s) should beat serial ({serial_s:.2f}s) "
            f"on {cores} cores"
        )
