"""Figure 8: the step predictor forecasts worker staleness / finishing order.

Paper: 16-worker ImageNet training; the predicted step sequence closely
follows the realized one despite straggler-induced variance.  Here: the
(actual, predicted) staleness pairs of the LC-ASGD / M=16 stand-in run.
"""

import numpy as np

from repro.bench import ascii_scatter, format_table

from benchmarks.conftest import imagenet_curves


def test_fig8_step_predictor_tracking(benchmark):
    results = benchmark.pedantic(imagenet_curves, rounds=1, iterations=1)
    run = results[("lc-asgd", 16)]
    pairs = np.array(run.step_prediction_pairs, dtype=np.float64)
    assert len(pairs) > 50

    tail = pairs[-80:]
    print()
    print(ascii_scatter(tail[:, 0], tail[:, 1],
                        title="Figure 8: realized staleness vs step-predictor forecast (last 80)"))

    actual, predicted = pairs[:, 0], pairs[:, 1]
    warm = len(pairs) // 4
    mae = np.abs(predicted[warm:] - actual[warm:]).mean()
    # trivial baseline: predict the per-worker historical mean ~ overall mean
    baseline = np.abs(actual[warm:] - actual[warm:].mean()).mean()
    print(format_table(
        ["metric", "value"],
        [
            ["predictions recorded", len(pairs)],
            ["post-warmup MAE (steps)", f"{mae:.2f}"],
            ["mean-staleness baseline MAE", f"{baseline:.2f}"],
            ["mean realized staleness", f"{actual[warm:].mean():.2f}"],
            ["finishing-order workers seen", len(set(run.finishing_order))],
        ],
        title="Figure 8 summary",
    ))

    # Shape assertions: predictions finite and non-negative; MAE clearly
    # below the mean staleness level (forecasts are informative, Figure 8's
    # "very accurate" claim in robust form); all 16 workers appear in the
    # finishing order.
    assert np.all(predicted >= 0)
    assert mae < actual[warm:].mean()
    assert len(set(run.finishing_order)) == 16
