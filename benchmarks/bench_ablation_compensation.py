"""Ablation (ours): the three Formula-5 couplings.

Formula 5 (g = grad of l_m + lambda l_delay) does not pin down how the
predicted loss couples into backward (DESIGN.md §2); this bench compares
the three implemented interpretations on the LC-ASGD / M=16 workload.
"""

from repro.bench import format_table
from repro.bench.workloads import cifar_workload
from repro.core.trainer import DistributedTrainer

from benchmarks.conftest import cached, cifar_curves

MODES = ("scale", "sensitivity")  # "damping" is the default, reused from the grid


def _other_modes():
    out = {}
    for mode in MODES:
        lam = 0.1 if mode == "scale" else 0.5  # scale-mode seeds grow with k
        cfg = cifar_workload("lc-asgd", 16, compensation=mode, lc_lambda=lam)
        out[mode] = DistributedTrainer(cfg).run()
    return out


def test_compensation_ablation(benchmark):
    damping_run = cifar_curves()[("lc-asgd", 16)]
    runs = benchmark.pedantic(
        lambda: cached("compensation-ablation", _other_modes), rounds=1, iterations=1
    )
    runs = dict(runs)
    runs["damping (default)"] = damping_run

    asgd_err = cifar_curves()[("asgd", 16)].final_test_error
    rows = [["asgd (no compensation)", f"{100*asgd_err:.2f}", "-"]]
    for mode, run in runs.items():
        rows.append([mode, f"{100*run.final_test_error:.2f}", f"{run.staleness['mean']:.1f}"])
    print()
    print(format_table(
        ["coupling", "test err %", "mean staleness"],
        rows,
        title="Formula-5 coupling ablation (LC-ASGD, CIFAR stand-in, M=16)",
    ))

    # every coupling must remain stable (no divergence), and the default
    # must not be worse than uncompensated ASGD beyond noise
    for mode, run in runs.items():
        assert run.final_test_error < 0.7, mode
    assert damping_run.final_test_error < asgd_err + 0.02
