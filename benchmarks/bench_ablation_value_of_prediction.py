"""Ablation (ours): what is prediction worth?

Staleness-aware ASGD (``sa-asgd``) scales each landing gradient by
``1/(1+tau)`` using the *realized* staleness — information LC-ASGD's step
predictor must forecast before the gradient is even computed.  Comparing
the two (and plain ASGD) isolates the value of LC-ASGD's predictive
machinery: SA-ASGD is an oracle-staleness / trivial-loss-model corner of
the design space.
"""

from repro.bench import format_table
from repro.bench.workloads import cifar_workload
from repro.core.trainer import DistributedTrainer

from benchmarks.conftest import cached, cifar_curves


def _sa_runs():
    return {
        m: DistributedTrainer(cifar_workload("sa-asgd", m)).run() for m in (4, 16)
    }


def test_value_of_prediction(benchmark):
    grid = cifar_curves()
    sa_runs = benchmark.pedantic(lambda: cached("sa-asgd-runs", _sa_runs), rounds=1, iterations=1)

    rows = []
    for m in (4, 16):
        rows.append([
            m,
            f"{100*grid[('asgd', m)].final_test_error:.2f}",
            f"{100*sa_runs[m].final_test_error:.2f}",
            f"{100*grid[('lc-asgd', m)].final_test_error:.2f}",
            f"{100*grid[('dc-asgd', m)].final_test_error:.2f}",
        ])
    print()
    print(format_table(
        ["M", "asgd (none)", "sa-asgd (oracle tau)", "lc-asgd (predicted)", "dc-asgd (2nd order)"],
        rows,
        title="Value of prediction: test error % by compensation information source",
    ))

    # Structural claims: every compensation variant trains stably, and at
    # M=16 both staleness-informed rules are no worse than plain ASGD
    # beyond noise.
    for m in (4, 16):
        assert sa_runs[m].final_test_error < 0.6
    asgd16 = grid[("asgd", 16)].final_test_error
    assert sa_runs[16].final_test_error < asgd16 + 0.02
    assert grid[("lc-asgd", 16)].final_test_error < asgd16 + 0.02
