"""Gossip scaling: traffic through the busiest endpoint vs cluster size.

AD-PSGD's headline systems claim (Lian et al. 2018) is that removing the
parameter server removes the O(N) hot spot: every worker averages with one
neighbor per step, so the traffic any single endpoint moves *per local
step* stays flat as workers are added, while a server-based algorithm
funnels every worker's pull+push through one process whose per-round
traffic grows linearly with N.

Both sides run the same fixed-steps-per-worker workload on deterministic
runtimes (round-robin thread backend for asgd, gossip sim for ad-psgd) so
the byte counters — real message sizes counted at the transports — are
reproducible and the committed baseline in ``BENCH_gossip_scaling.json``
is stable.
"""

import time

from repro.bench import format_table, record_trajectory
from repro.bench.workloads import throughput_workload
from repro.runtime import run_experiment

WORKER_COUNTS = (2, 4, 8)
STEPS_PER_WORKER = 24


def _busiest_endpoint(comm):
    """(label, bytes) of the endpoint that moved the most traffic."""
    candidates = {
        "server": comm.get("server_bytes", 0.0),
        "coordinator": comm.get("coordinator_bytes", 0.0),
        "worker": comm.get("max_worker_bytes", 0.0),
    }
    label = max(candidates, key=candidates.get)
    return label, candidates[label]


def _measure(algorithm: str, num_workers: int):
    config = throughput_workload(
        algorithm=algorithm,
        num_workers=num_workers,
        max_updates=STEPS_PER_WORKER * num_workers,
    )
    backend = "sim" if algorithm == "ad-psgd" else "thread"
    options = {} if algorithm == "ad-psgd" else {"deterministic": True}
    start = time.perf_counter()
    result = run_experiment(config, backend=backend, **options)
    elapsed = time.perf_counter() - start
    label, busiest = _busiest_endpoint(result.comm)
    per_step = busiest / (result.total_updates / num_workers)
    return {
        "result": result,
        "wall": elapsed,
        "endpoint": label,
        "busiest_bytes": busiest,
        "per_step_bytes": per_step,
    }


def test_gossip_scaling(benchmark):
    def run_all():
        return {
            (algo, n): _measure(algo, n)
            for algo in ("asgd", "ad-psgd")
            for n in WORKER_COUNTS
        }

    cells = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for algo in ("asgd", "ad-psgd"):
        for n in WORKER_COUNTS:
            cell = cells[(algo, n)]
            rows.append([
                algo,
                n,
                cell["endpoint"],
                f"{cell['per_step_bytes'] / 1024:.1f}",
                f"{cell['busiest_bytes'] / 1024:.0f}",
                f"{cell['wall']:.2f}",
            ])
    print()
    print(format_table(
        ["algorithm", "workers", "busiest", "KiB/step @ busiest", "KiB total", "wall s"],
        rows,
        title=f"Busiest-endpoint traffic per local step ({STEPS_PER_WORKER} steps/worker)",
    ))

    lo, hi = WORKER_COUNTS[0], WORKER_COUNTS[-1]
    for algo in ("asgd", "ad-psgd"):
        for n in WORKER_COUNTS:
            result = cells[(algo, n)]["result"]
            assert result.total_updates == STEPS_PER_WORKER * n
            assert cells[(algo, n)]["busiest_bytes"] > 0
    # the server is always the asgd hot spot, and its per-round traffic
    # grows with N; the gossip hot spot is just some worker, and stays flat
    assert all(cells[("asgd", n)]["endpoint"] == "server" for n in WORKER_COUNTS)
    assert all(cells[("ad-psgd", n)]["endpoint"] == "worker" for n in WORKER_COUNTS)
    server_growth = (
        cells[("asgd", hi)]["per_step_bytes"] / cells[("asgd", lo)]["per_step_bytes"]
    )
    gossip_growth = (
        cells[("ad-psgd", hi)]["per_step_bytes"]
        / cells[("ad-psgd", lo)]["per_step_bytes"]
    )
    assert server_growth > 2.5, f"server traffic should scale with N: {server_growth:.2f}"
    assert gossip_growth < 1.5, f"gossip traffic should stay flat: {gossip_growth:.2f}"

    record_trajectory("gossip_scaling", {
        **{
            f"{algo.replace('-', '_')}_per_step_kib_n{n}":
                cells[(algo, n)]["per_step_bytes"] / 1024
            for algo in ("asgd", "ad-psgd")
            for n in WORKER_COUNTS
        },
        "server_growth_x": server_growth,
        "gossip_growth_x": gossip_growth,
    })
