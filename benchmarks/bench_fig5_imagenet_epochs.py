"""Figure 5: error vs epoch on ImageNet (ResNet-50 in the paper).

Paper: SSGD/ASGD/DC-ASGD/LC-ASGD (no sequential SGD — "training with the
sequential method takes too long"), M in {4, 8, 16}.  Here: the harder
27-class ImageNet stand-in.
"""

from repro.bench import ascii_plot, format_table
from repro.bench.workloads import paper_reference

from benchmarks.conftest import IMAGENET_ALGOS, WORKER_COUNTS, imagenet_curves


def test_fig5_error_vs_epoch(benchmark):
    results = benchmark.pedantic(imagenet_curves, rounds=1, iterations=1)

    for m in WORKER_COUNTS:
        series = {
            algo: (results[(algo, m)].epochs(), results[(algo, m)].series("test_error"))
            for algo in IMAGENET_ALGOS
        }
        print()
        print(ascii_plot(series, title=f"Figure 5 (M={m}): test error vs epoch (ImageNet stand-in)",
                         xlabel="epoch", ylabel="top-1 test error"))

    rows = []
    for algo in IMAGENET_ALGOS:
        for m in WORKER_COUNTS:
            run = results[(algo, m)]
            ref = paper_reference("imagenet", m, algo)
            rows.append([algo, m, f"{100*run.final_test_error:.2f}", f"{ref}"])
    print(format_table(["algorithm", "M", "measured err %", "paper err %"], rows,
                       title="Figure 5 summary"))

    chance = 1.0 - 1.0 / 27.0
    for (algo, m), run in results.items():
        # everyone learned: clearly better than the 96% chance floor.  SSGD
        # at M=16 gets only 1/16 as many updates per epoch, so its bar is
        # looser (the budget collapse is itself a paper-consistent result —
        # see EXPERIMENTS.md).
        margin = 0.1 if algo == "ssgd" and m == 16 else 0.2
        assert run.final_test_error < chance - margin, (algo, m)
    # compensation keeps M=16 competitive with plain ASGD (tolerance 2 pts)
    asgd16 = results[("asgd", 16)].final_test_error
    assert results[("lc-asgd", 16)].final_test_error < asgd16 + 0.02
