"""Fleet executor: serial vs 2-agent fleet wall-clock on a sim grid.

Not a paper artifact — the distribution layer's own benchmark.  Two
:class:`~repro.fleet.agent.FleetAgent` daemons on loopback (the degenerate
"cluster": both agents share this machine's cores, like ``--jobs 2`` with
sockets in the path) run the same grid a :class:`SerialExecutor` runs
in-process.  The table reports the fleet's wall-clock overhead-or-speedup
and the per-cell protocol cost; the assertion is correctness, not speed —
on a multi-core box the fleet should win anyway, but the *point* of the
fleet is hosts this bench cannot simulate.
"""

import os
import time

from repro.bench import format_table
from repro.core.config import TrainingConfig
from repro.experiments import Campaign, Grid, SerialExecutor
from repro.fleet import FleetAgent, FleetExecutor


def _grid_specs():
    def factory(**kwargs):
        return TrainingConfig.tiny(num_workers=4, epochs=12, **kwargs)

    return Grid(algorithm=["asgd", "lc-asgd"], seed=[0, 1]).specs(factory)


def _measure(executor):
    start = time.perf_counter()
    report = Campaign(_grid_specs(), executor=executor).run()
    return report, time.perf_counter() - start


def test_fleet_executor_throughput(benchmark):
    agents = [FleetAgent(port=0, slots=1).start(), FleetAgent(port=0, slots=1).start()]
    try:
        def run_both():
            serial_report, serial_s = _measure(SerialExecutor())
            fleet_report, fleet_s = _measure(
                FleetExecutor([a.address for a in agents])
            )
            return serial_report, serial_s, fleet_report, fleet_s

        serial_report, serial_s, fleet_report, fleet_s = benchmark.pedantic(
            run_both, rounds=1, iterations=1
        )
    finally:
        for agent in agents:
            agent.close()

    print()
    print(format_table(
        ["executor", "runs", "wall s", "speedup", "s/cell"],
        [
            ["serial", len(serial_report), f"{serial_s:.2f}", "1.00x",
             f"{serial_s / len(serial_report):.2f}"],
            ["fleet(2x1)", len(fleet_report), f"{fleet_s:.2f}",
             f"{serial_s / fleet_s:.2f}x", f"{fleet_s / len(fleet_report):.2f}"],
        ],
        title="Fleet executor (4-run sim grid on 2 loopback agents)",
    ))

    # identical grids, identical (bit-reproducible sim) results: shipping
    # cells through sockets must not change what the campaign computes
    assert [r.final_test_error for r in serial_report.results] == [
        r.final_test_error for r in fleet_report.results
    ]
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    if cores and cores >= 2:
        assert fleet_s < serial_s, (
            f"2-agent fleet ({fleet_s:.2f}s) should beat serial ({serial_s:.2f}s) "
            f"on {cores} cores"
        )
