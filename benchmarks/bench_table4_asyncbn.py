"""Section 5.3 / Table 1's BN columns: Async-BN vs replace-BN.

Paper: accumulating worker BN statistics exponentially (Formulas 6-7)
beats overwriting them with the latest worker's statistics, and the gap
widens with the worker count.  This bench runs the replace-BN counterpart
of the Async-BN grid cells at M in {8, 16} for the two most affected
algorithms.
"""

from repro.bench import format_table
from repro.bench.workloads import cifar_workload
from repro.core.trainer import DistributedTrainer

from benchmarks.conftest import cached, cifar_curves

ALGOS = ("asgd", "lc-asgd")
COUNTS = (8, 16)


def _replace_bn_runs():
    out = {}
    for algo in ALGOS:
        for m in COUNTS:
            cfg = cifar_workload(algo, m, bn_mode="replace")
            out[(algo, m)] = DistributedTrainer(cfg).run()
    return out


def test_asyncbn_vs_replace(benchmark):
    async_runs = cifar_curves()
    replace_runs = benchmark.pedantic(
        lambda: cached("cifar-replace-bn", _replace_bn_runs), rounds=1, iterations=1
    )

    rows = []
    gaps = []
    for algo in ALGOS:
        for m in COUNTS:
            async_err = async_runs[(algo, m)].final_test_error
            replace_err = replace_runs[(algo, m)].final_test_error
            gap = 100 * (replace_err - async_err)
            gaps.append(gap)
            rows.append([algo, m, f"{100*replace_err:.2f}", f"{100*async_err:.2f}", f"{gap:+.2f}"])
    print()
    print(format_table(
        ["algorithm", "M", "replace-BN err %", "Async-BN err %", "Async advantage (pts)"],
        rows,
        title="Async-BN vs replace-BN (CIFAR stand-in; paper Table 1 BN columns)",
    ))

    # Robust claim: on average across the grid, Async-BN does not lose to
    # replace-BN (the paper's "generally better"; individual cells may tie).
    assert sum(gaps) / len(gaps) > -0.5
