"""Figure 7: the loss predictor tracks the actual loss series.

Paper: 16-worker ImageNet training; the predictor's one-step forecasts
"largely overlap" the measured losses.  Here: the recorded
(actual, predicted) pairs of the LC-ASGD / M=16 ImageNet stand-in run.
"""

import numpy as np

from repro.bench import ascii_scatter, format_table

from benchmarks.conftest import imagenet_curves


def test_fig7_loss_predictor_tracking(benchmark):
    results = benchmark.pedantic(imagenet_curves, rounds=1, iterations=1)
    run = results[("lc-asgd", 16)]
    pairs = np.array(run.loss_prediction_pairs, dtype=np.float64)
    assert len(pairs) > 50, "LC-ASGD run recorded too few predictions"

    # plot a late window, as the paper does (after warm-up)
    tail = pairs[-80:]
    print()
    print(ascii_scatter(tail[:, 0], tail[:, 1],
                        title="Figure 7: actual loss vs predictor forecast (last 80 iterations)"))

    actual, predicted = pairs[:, 0], pairs[:, 1]
    warm = len(pairs) // 4
    mae = np.abs(predicted[warm:] - actual[warm:]).mean()
    naive_mae = np.abs(actual[warm:-1] - actual[warm + 1 :]).mean()  # last-value baseline
    scale = np.abs(actual[warm:]).mean()
    print(format_table(
        ["metric", "value"],
        [
            ["predictions recorded", len(pairs)],
            ["post-warmup MAE", f"{mae:.4f}"],
            ["last-value baseline MAE", f"{naive_mae:.4f}"],
            ["mean loss scale", f"{scale:.4f}"],
            ["relative MAE", f"{100*mae/scale:.2f}%"],
        ],
        title="Figure 7 summary",
    ))

    # Shape assertions: forecasts are finite and track the series as well as
    # its intrinsic volatility allows.  Late in training the per-batch loss
    # fluctuates by ~40% of its (small) mean, so the honest bar is the
    # last-value noise floor, not an absolute percentage: the paper's
    # "curves largely overlap" claim is about matching the series, and a
    # predictor at the noise floor is doing exactly that.
    assert np.all(np.isfinite(predicted))
    assert mae < 1.5 * naive_mae
    assert mae < 0.75 * scale
