"""Figure 2: DC-ASGD's test error degrades as the worker count grows.

Paper: ResNet-18 / CIFAR-10, DC-ASGD with 4/8/16 workers vs sequential SGD;
the error rises visibly with the number of workers.  Here: the CIFAR
stand-in workload (DESIGN.md substitution table).
"""

from repro.bench import ascii_plot, format_table
from repro.bench.workloads import paper_reference

from benchmarks.conftest import WORKER_COUNTS, cifar_curves


def test_fig2_dcasgd_vs_workers(benchmark):
    results = benchmark.pedantic(cifar_curves, rounds=1, iterations=1)

    series = {"SGD": (results[("sgd", 1)].epochs(), results[("sgd", 1)].series("test_error"))}
    for m in WORKER_COUNTS:
        run = results[("dc-asgd", m)]
        series[f"DC-ASGD-{m}"] = (run.epochs(), run.series("test_error"))
    print()
    print(ascii_plot(series, title="Figure 2: DC-ASGD test error vs epoch (CIFAR stand-in)",
                     xlabel="epoch", ylabel="test error"))

    rows = []
    sgd_err = results[("sgd", 1)].final_test_error
    rows.append(["SGD", 1, f"{100*sgd_err:.2f}", "5.15"])
    for m in WORKER_COUNTS:
        err = results[("dc-asgd", m)].final_test_error
        rows.append([f"DC-ASGD", m, f"{100*err:.2f}", f"{paper_reference('cifar', m, 'dc-asgd')}"])
    print(format_table(["algorithm", "M", "measured err %", "paper err %"], rows,
                       title="Figure 2 summary (absolute scales differ; shape is the claim)"))

    # Shape assertions: every run converged far below the 90% chance level,
    # and the M=16 configuration does not beat sequential SGD by a margin
    # (the degradation-with-M premise that motivates LC-ASGD).
    for m in WORKER_COUNTS:
        assert results[("dc-asgd", m)].final_test_error < 0.6
    assert results[("dc-asgd", 16)].final_test_error > sgd_err - 0.06
