"""DashboardEvents + DashboardServer: live state, JSON endpoint, watch."""

import json
import threading

from repro.core import TrainingConfig
from repro.experiments import Campaign
from repro.experiments.executors import SerialExecutor
from repro.experiments.spec import ExperimentSpec
from repro.obs.dashboard import (
    DashboardEvents,
    fetch_state,
    render_state,
    serve_dashboard,
    watch,
)


def tiny_specs(n=2, epochs=1):
    return [
        ExperimentSpec(
            config=TrainingConfig.tiny(
                algorithm="asgd", num_workers=2, epochs=epochs, seed=seed
            ),
            backend="sim",
        )
        for seed in range(n)
    ]


# ---------------------------------------------------------------------- #
# observer state, driven by a live (serial) campaign
# ---------------------------------------------------------------------- #
def test_dashboard_follows_a_live_sweep():
    events = DashboardEvents()
    report = Campaign(tiny_specs(2), executor=SerialExecutor(obs=True), events=events).run()
    state = events.state()
    assert state["progress"] == {
        "total": 2, "cached": 0, "done": 2, "running": 0, "finished": True,
    }
    assert [run["status"] for run in state["runs"]] == ["done", "done"]
    assert all(run["curve"] for run in state["runs"])
    # per-run hubs merged into the campaign hub
    assert state["hub"]["histograms"]["staleness"]["count"] > 0
    assert len(report.results) == 2
    json.dumps(state)  # the whole document must be JSON-serializable


def test_progress_is_monotonic_and_serves_json_mid_campaign():
    events = DashboardEvents()
    server = serve_dashboard(events, port=0)
    done_seen = [0]
    violations = []

    class Spy(SerialExecutor):
        def run(self, jobs, total, campaign_events):
            for triple in super().run(jobs, total, campaign_events):
                # poll the real HTTP endpoint between runs, mid-campaign
                state = fetch_state(server.url)
                if state["progress"]["done"] < done_seen[0]:
                    violations.append(state["progress"])
                done_seen[0] = state["progress"]["done"]
                assert state["progress"]["finished"] is False
                yield triple

    try:
        Campaign(tiny_specs(3), executor=Spy(obs=True), events=events).run()
    finally:
        server.close()
    assert violations == []
    assert done_seen[0] >= 2  # the endpoint observed genuine mid-campaign progress
    assert events.state()["progress"]["finished"] is True


def test_agent_roster_and_death_notes():
    events = DashboardEvents()
    events.on_note("fleet: agents alpha:1 x1, beta:2 x1")
    events.on_note("fleet: agent alpha:1 died (connection reset); requeued 2 job(s)")
    state = events.state()
    assert state["agents"] == ["alpha:1 x1", "beta:2 x1"]
    assert any("died" in note for note in state["notes"])
    rendered = render_state(state)
    assert "agents: alpha:1 x1, beta:2 x1" in rendered
    assert "note: fleet: agent alpha:1 died" in rendered


def test_server_shutdown_is_clean_and_idempotent_state():
    events = DashboardEvents()
    server = serve_dashboard(events, port=0)
    url = server.url
    assert fetch_state(url)["progress"]["total"] == 0
    server.close()
    # the port is released: a fresh server can bind and serve again
    server2 = serve_dashboard(events, port=server.address[1])
    try:
        assert fetch_state(server2.url)["progress"]["total"] == 0
    finally:
        server2.close()


def test_linger_waits_for_a_post_finish_poll():
    events = DashboardEvents()
    server = serve_dashboard(events, port=0)
    try:
        assert server.linger(timeout=0.1) is False  # nobody ever polled: no wait
        fetch_state(server.url)
        events.on_campaign_end(None)
        t = threading.Thread(target=lambda: fetch_state(server.url))
        t.start()
        assert server.linger(timeout=5.0) is True
        t.join()
    finally:
        server.close()


# ---------------------------------------------------------------------- #
# the `repro watch` loop
# ---------------------------------------------------------------------- #
class _Sink:
    def __init__(self):
        self.text = ""

    def write(self, chunk):
        self.text += chunk

    def flush(self):
        pass


def test_watch_exits_zero_on_finished_campaign():
    events = DashboardEvents()
    events.on_campaign_start(2, 0)
    events.on_campaign_end(None)
    server = serve_dashboard(events, port=0)
    sink = _Sink()
    try:
        assert watch(server.url, interval=0.05, stream=sink) == 0
    finally:
        server.close()
    assert "finished" in sink.text


def test_watch_reports_unreachable_endpoint():
    sink = _Sink()
    assert watch("http://127.0.0.1:1/", once=True, stream=sink) == 1
    assert "unreachable" in sink.text
