"""TraceRecorder/events: validation, bounded retention, JSONL round-trip."""

import json

import pytest

from repro.obs.events import EVENT_KINDS, decode_record, encode_record
from repro.obs.recorder import (
    NULL_RECORDER,
    TraceRecorder,
    load_trace,
    make_recorder,
)


def test_encode_decode_round_trip_every_kind():
    samples = {
        "span": {"phase": "compute", "dur_ms": 1.5},
        "staleness": {"value": 3.0, "version": 17},
        "queue_depth": {"queue": "server", "depth": 4},
        "wire_bytes": {"direction": "up", "logical": 1024, "wire": 512},
        "pairing_wait": {"dur_ms": 0.25, "partner": 2},
        "heartbeat": {"peer": "agent-a", "n": 9},
        "requeue": {"job": 3, "peer": "agent-b"},
        "mark": {"label": "epoch-end"},
    }
    assert sorted(samples) == sorted(EVENT_KINDS)  # keep this test exhaustive
    for kind, fields in samples.items():
        row = encode_record(0.5, kind, 1, fields)
        record = decode_record(row)
        assert record.kind == kind
        assert record.fields == fields
        assert record.row() == row


def test_unregistered_kind_and_wrong_fields_raise():
    with pytest.raises(ValueError, match="unregistered"):
        encode_record(0.0, "bogus", 0, {})
    with pytest.raises(ValueError, match="expects fields"):
        encode_record(0.0, "mark", 0, {"wrong": 1})
    with pytest.raises(ValueError, match="unregistered"):
        decode_record([0.0, "bogus", 0])
    with pytest.raises(ValueError, match="carries"):
        decode_record([0.0, "mark", 0, "a", "extra"])


def test_null_recorder_is_inert():
    NULL_RECORDER.emit(0.0, "anything", junk=True)  # never validates, never stores
    assert NULL_RECORDER.rows() == []
    assert NULL_RECORDER.records() == []
    assert NULL_RECORDER.enabled is False
    assert make_recorder(False) is NULL_RECORDER
    assert make_recorder(True, run_id="x").enabled is True


def test_retention_cap_counts_drops():
    recorder = TraceRecorder(run_id="cap", max_records=3)
    for i in range(5):
        recorder.emit(float(i), "mark", label=f"m{i}")
    assert len(recorder) == 3
    assert recorder.dropped == 2
    assert recorder.meta()["dropped"] == 2
    assert [r.fields["label"] for r in recorder.records()] == ["m0", "m1", "m2"]


def test_ingest_rows_validates_and_caps():
    recorder = TraceRecorder(run_id="ingest", max_records=2)
    rows = [[0.0, "mark", 1, "a"], [1.0, "mark", 2, "b"], [2.0, "mark", 3, "c"]]
    assert recorder.ingest_rows(rows) == 2
    assert recorder.dropped == 1
    with pytest.raises(ValueError):
        recorder.ingest_rows([[0.0, "nope", 0]])


def test_jsonl_round_trip(tmp_path):
    recorder = TraceRecorder(run_id="rt")
    recorder.emit(0.1, "span", 0, phase="compute", dur_ms=2.0)
    recorder.emit(0.2, "staleness", 1, value=1.0, version=3)
    recorder.set_timer_totals({"worker-compute": {"total_s": 0.5, "count": 4}})
    path = str(tmp_path / "trace.jsonl")
    recorder.dump_jsonl(path)

    meta, records = load_trace(path)
    assert meta["run_id"] == "rt"
    assert meta["records"] == 2
    assert meta["timer"]["worker-compute"]["count"] == 4
    assert [r.row() for r in records] == recorder.rows()

    # the first line is the meta object, every other line a plain array
    lines = open(path).read().splitlines()
    assert "meta" in json.loads(lines[0])
    assert all(isinstance(json.loads(line), list) for line in lines[1:])


def test_phase_totals_merge_spans_and_timer():
    recorder = TraceRecorder(run_id="phases")
    recorder.emit(0.1, "span", 0, phase="compute", dur_ms=2.0)
    recorder.emit(0.2, "span", 1, phase="compute", dur_ms=3.0)
    recorder.emit(0.3, "span", 0, phase="wire", dur_ms=1.0)
    recorder.set_timer_totals({"loss-pred": {"total_s": 0.004, "count": 2}})
    totals = recorder.phase_totals_ms()
    assert totals["compute"] == pytest.approx(5.0)
    assert totals["wire"] == pytest.approx(1.0)
    assert totals["loss-pred"] == pytest.approx(4.0)
    recorder.emit(0.4, "staleness", 0, value=2.0, version=1)
    assert recorder.staleness_values() == [2.0]
