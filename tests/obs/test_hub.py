"""MetricsHub: fixed-bin histograms, merging, trace ingestion."""

import pytest

from repro.obs.events import decode_record
from repro.obs.hub import (
    STALENESS_EDGES,
    Histogram,
    MetricsHub,
    staleness_histogram,
)


def test_histogram_bins_underflow_and_overflow():
    hist = Histogram([0.0, 1.0, 2.0])
    for value in (-0.5, 0.0, 0.5, 1.5, 2.0, 99.0):
        hist.add(value)
    assert hist.counts == [1, 2, 1, 2]  # <0 | [0,1) | [1,2) | >=2
    assert hist.total == 6
    assert hist.min == -0.5 and hist.max == 99.0


def test_histogram_merge_requires_same_edges():
    a, b = Histogram([0.0, 1.0]), Histogram([0.0, 1.0])
    a.add(0.5)
    b.add(1.5)
    a.merge(b)
    assert a.total == 2 and a.counts == [0, 1, 1]
    with pytest.raises(ValueError):
        a.merge(Histogram([0.0, 2.0]))


def test_histogram_dict_round_trip():
    hist = Histogram(STALENESS_EDGES)
    for value in (0.0, 1.0, 3.0, 3.0):
        hist.add(value)
    clone = Histogram.from_dict(hist.to_dict())
    assert clone.counts == hist.counts
    assert clone.mean == pytest.approx(hist.mean)
    assert clone.to_dict() == hist.to_dict()


def test_hub_ingest_standard_names():
    hub = MetricsHub()
    rows = [
        [0.1, "staleness", 0, 2.0, 5],
        [0.2, "wire_bytes", 1, "up", 1000, 500],
        [0.3, "span", 0, "compute", 4.0],
        [0.4, "queue_depth", -1, "server", 3],
        [0.5, "pairing_wait", 2, 1.5, 0],
    ]
    hub.ingest([decode_record(r) for r in rows])
    snap = hub.snapshot()
    assert snap["counters"]["events.staleness"] == 1.0
    assert snap["counters"]["bytes.logical"] == 1000.0
    assert snap["counters"]["bytes.wire"] == 500.0
    assert snap["counters"]["span_ms.compute"] == 4.0
    assert snap["counters"]["pairing_wait_ms"] == 1.5
    assert snap["histograms"]["staleness"]["count"] == 1
    assert snap["histograms"]["wire_bytes"]["count"] == 1
    assert snap["histograms"]["queue_depth"]["count"] == 1


def test_hub_merge_snapshot_accumulates():
    a, b = MetricsHub(), MetricsHub()
    a.observe("staleness", 1.0)
    b.observe("staleness", 3.0)
    b.inc("events.staleness", 2)
    a.merge_snapshot(b.snapshot())
    merged = a.snapshot()
    assert merged["histograms"]["staleness"]["count"] == 2
    assert merged["histograms"]["staleness"]["mean"] == pytest.approx(2.0)
    assert merged["counters"]["events.staleness"] == 2.0


def test_staleness_histogram_helper():
    hist = staleness_histogram([0.0, 1.0, 1.0, 4.0])
    assert hist.total == 4
    assert hist.mean == pytest.approx(1.5)
    assert hist.edges == list(STALENESS_EDGES)
