"""End-to-end obs guarantees: determinism, reconstruction, forwarding.

The acceptance criteria of the observability layer live here:

* sim traces are bit-reproducible (virtual time, no wall-clock reads in
  the record stream);
* a proc-backend run's JSONL trace reconstructs per-phase attribution and
  a staleness histogram that matches ``RunResult.staleness`` exactly;
* pool workers forward curve points live; fleet agents ship traces back
  over ``trace`` frames; ``RunResult.obs`` survives its dict round-trip.
"""

import numpy as np
import pytest

from repro.core import TrainingConfig
from repro.core.metrics import RunResult
from repro.experiments import Campaign, CampaignEvents
from repro.experiments.executors import MultiprocessExecutor, SerialExecutor
from repro.experiments.spec import ExperimentSpec
from repro.obs.recorder import load_trace
from repro.runtime import run_experiment

PROC_TIMEOUT = 120.0


def sim_spec(seed=0, algorithm="lc-asgd", epochs=1):
    return ExperimentSpec(
        config=TrainingConfig.tiny(
            algorithm=algorithm, num_workers=2, epochs=epochs, seed=seed
        ),
        backend="sim",
    )


class RecordingEvents(CampaignEvents):
    def __init__(self):
        self.curve_points, self.ends = [], []

    def on_curve_point(self, spec, point):
        self.curve_points.append((spec.key(), point))

    def on_run_end(self, spec, result, cached, index, total):
        self.ends.append(spec.key())


# ---------------------------------------------------------------------- #
# determinism
# ---------------------------------------------------------------------- #
def test_sim_trace_is_bit_reproducible(tmp_path):
    cfg = TrainingConfig.tiny(algorithm="lc-asgd", num_workers=4, epochs=1, seed=5)
    paths = [str(tmp_path / f"run{i}.jsonl") for i in (0, 1)]
    for path in paths:
        run_experiment(cfg, backend="sim", obs=True, trace_path=path)
    # record streams must be byte-identical; only the meta line may differ
    # (it carries wall-clock Timer totals)
    streams = [open(path).read().splitlines()[1:] for path in paths]
    assert streams[0] == streams[1]
    assert len(streams[0]) > 0


# ---------------------------------------------------------------------- #
# the reconstruction criterion (proc backend, real processes + sockets)
# ---------------------------------------------------------------------- #
def test_proc_trace_reconstructs_attribution_and_staleness(tmp_path):
    cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=2, epochs=2, seed=3)
    path = str(tmp_path / "proc.jsonl")
    result = run_experiment(
        cfg, backend="proc", obs=True, trace_path=path, timeout=PROC_TIMEOUT
    )

    meta, records = load_trace(path)
    assert meta["run_id"] == "asgd-M2-seed3-proc"

    # per-phase time attribution: worker children streamed their spans
    # back over TracePush, so compute/encode/wire all appear
    phases = {r.fields["phase"] for r in records if r.kind == "span"}
    assert {"compute", "encode", "wire"} <= phases

    # the staleness histogram in the trace matches RunResult.staleness:
    # same emission sites, same sample count, same mean
    staleness = [r.fields["value"] for r in records if r.kind == "staleness"]
    assert len(staleness) == result.staleness["count"]
    assert np.mean(staleness) == pytest.approx(result.staleness["mean"])
    assert max(staleness) == result.staleness["max"]

    # the hub snapshot in RunResult.obs agrees with the raw trace
    hist = result.obs["hub"]["histograms"]["staleness"]
    assert hist["count"] == len(staleness)
    assert hist["mean"] == pytest.approx(result.staleness["mean"])


def test_thread_backend_hub_matches_staleness():
    cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=2, epochs=1, seed=1)
    result = run_experiment(cfg, backend="thread", obs=True)
    hist = result.obs["hub"]["histograms"]["staleness"]
    assert hist["count"] == result.staleness["count"]
    assert hist["mean"] == pytest.approx(result.staleness["mean"])


def test_obs_off_is_the_default_and_costs_nothing_in_results():
    cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=2, epochs=1, seed=1)
    result = run_experiment(cfg, backend="sim")
    assert result.obs == {}
    clone = RunResult.from_dict(result.to_dict())
    assert clone.obs == {}


def test_obs_survives_result_dict_round_trip():
    cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=2, epochs=1, seed=1)
    result = run_experiment(cfg, backend="sim", obs=True)
    assert result.obs["enabled"] is True
    assert result.obs["records"] > 0
    clone = RunResult.from_dict(result.to_dict())
    assert clone.obs == result.obs


# ---------------------------------------------------------------------- #
# executor forwarding
# ---------------------------------------------------------------------- #
def test_pool_streams_curve_points_and_obs():
    specs = [sim_spec(seed=s) for s in range(3)]
    events = RecordingEvents()
    report = Campaign(
        specs, executor=MultiprocessExecutor(processes=2, obs=True), events=events
    ).run()
    # every run's evaluation points crossed the process boundary live
    streamed = {key for key, _ in events.curve_points}
    assert streamed == {spec.key() for spec in specs}
    assert all(result.obs.get("enabled") for result in report.results)


def test_pool_matches_serial_results_with_obs_on():
    specs = [sim_spec(seed=s) for s in range(2)]
    serial = Campaign(list(specs), executor=SerialExecutor(obs=True)).run()
    pooled = Campaign(list(specs), executor=MultiprocessExecutor(processes=2, obs=True)).run()
    for a, b in zip(serial.results, pooled.results):
        assert a.final_test_error == b.final_test_error
        assert a.staleness["mean"] == b.staleness["mean"]
