"""Shared fixtures and numeric-gradient helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor.tensor import Tensor


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for test data."""
    return np.random.default_rng(1234)


@pytest.fixture(autouse=True, scope="session")
def _lock_order_gate():
    """Fail the session on any lock-order cycle under REPRO_LOCK_TRACE=1.

    With tracing off (the default) this is a no-op; CI runs the
    concurrent-runtime suites with tracing on, so every lock order the
    threads actually took is checked for deadlock potential at teardown.
    """
    yield
    from repro.analysis import lockorder

    if lockorder.trace_enabled():
        lockorder.assert_acyclic()


def numeric_gradient(f, x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f()`` w.r.t. array ``x``.

    ``f`` must read the *current* contents of ``x`` on each call (the helper
    perturbs entries in place and restores them).
    """
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        f_plus = f()
        x[idx] = original - eps
        f_minus = f()
        x[idx] = original
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def assert_gradcheck(build_loss, params: list, atol: float = 1e-6, rtol: float = 1e-4) -> None:
    """Check autograd gradients of ``build_loss()`` against central differences.

    Parameters
    ----------
    build_loss:
        Zero-argument callable returning a scalar loss Tensor built from the
        given ``params`` (fresh graph on each call).
    params:
        Tensors (float64, requires_grad=True) to differentiate.
    """
    loss = build_loss()
    for p in params:
        p.grad = None
    loss.backward()
    analytic = [p.grad.copy() for p in params]

    def scalar() -> float:
        return float(build_loss().data)

    for p, a_grad in zip(params, analytic):
        n_grad = numeric_gradient(scalar, p.data)
        np.testing.assert_allclose(a_grad, n_grad, atol=atol, rtol=rtol)


def randt(rng: np.random.Generator, *shape, requires_grad: bool = True) -> Tensor:
    """Float64 random tensor (float64 keeps gradchecks tight)."""
    return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)
