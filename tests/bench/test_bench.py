"""Bench harness: grids, tables, plots, workloads."""

import numpy as np
import pytest

from repro.bench import (
    ExperimentGrid,
    ascii_plot,
    ascii_scatter,
    bench_profile,
    cifar_workload,
    format_table,
    imagenet_workload,
    paper_reference,
    run_curves,
    run_grid,
)
from repro.bench.workloads import PAPER_OVERHEAD, PAPER_TABLE1
from repro.core.config import TrainingConfig


def tiny_workload(algorithm, num_workers, seed=0, **kw):
    return TrainingConfig.tiny(algorithm=algorithm, num_workers=num_workers, seed=seed, epochs=2, **kw)


class TestHarness:
    def test_run_grid_cells(self):
        grid = run_grid(tiny_workload, ["asgd", "sgd"], [2], seeds=(0,))
        assert ("asgd", 2) in grid.cells
        assert ("sgd", 1) in grid.cells  # sgd collapses to one worker
        assert grid.mean_test_error("asgd", 2) <= 1.0

    def test_grid_multiple_seeds_averaged(self):
        grid = run_grid(tiny_workload, ["asgd"], [2], seeds=(0, 1))
        assert len(grid.runs("asgd", 2)) == 2
        errs = [r.final_test_error for r in grid.runs("asgd", 2)]
        assert grid.mean_test_error("asgd", 2) == pytest.approx(np.mean(errs))

    def test_mean_degradation(self):
        grid = run_grid(tiny_workload, ["asgd"], [2], seeds=(0,))
        deg = grid.mean_degradation("asgd", 2, baseline=0.5)
        measured = grid.mean_test_error("asgd", 2)
        assert deg == pytest.approx(100 * (measured - 0.5) / 0.5)

    def test_run_curves(self):
        results = run_curves(tiny_workload, ["asgd", "ssgd"], workers=2, seed=0)
        assert set(results) == {"asgd", "ssgd"}
        assert len(results["asgd"].curve) >= 1

    def test_experiment_grid_object(self):
        grid = ExperimentGrid(tiny_workload, ["asgd"], [2], seeds=(0,))
        assert grid.run().mean_test_error("asgd", 2) >= 0.0


class TestFormatting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["x", 1], ["yyyy", 22]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_ascii_plot_contains_markers_and_legend(self):
        out = ascii_plot(
            {"one": ([0, 1, 2], [0.0, 1.0, 0.5]), "two": ([0, 1, 2], [1.0, 0.0, 0.5])},
            width=30,
            height=8,
            title="demo",
        )
        assert "demo" in out
        assert "o=one" in out and "x=two" in out
        assert "o" in out and "x" in out

    def test_ascii_plot_flat_series(self):
        out = ascii_plot({"flat": ([0, 1], [1.0, 1.0])}, width=10, height=4)
        assert "flat" in out

    def test_ascii_plot_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_plot({})

    def test_ascii_scatter(self):
        out = ascii_scatter([1, 2, 3], [1.1, 2.1, 2.9], title="pred")
        assert "actual" in out and "predicted" in out

    def test_ascii_plot_single_point(self):
        # one sample: both axis ranges are degenerate and get padded, the
        # marker still lands inside the canvas
        out = ascii_plot({"dot": ([0.5], [2.0])}, width=12, height=5)
        assert "o" in out
        assert "dot" in out

    def test_ascii_plot_constant_y_across_series(self):
        # every y identical across *all* series: the padded range must not
        # divide by zero, and both markers must render
        out = ascii_plot(
            {"a": ([0, 1], [3.0, 3.0]), "b": ([0, 1], [3.0, 3.0])},
            width=16,
            height=4,
        )
        assert "o" in out and "x" in out

    def test_ascii_plot_empty_arrays_raise(self):
        with pytest.raises(ValueError, match="empty series"):
            ascii_plot({"void": ([], [])})

    def test_ascii_scatter_single_point_and_empty_prediction(self):
        out = ascii_scatter([1.5], [1.4])
        assert "actual" in out
        # a predictor that produced nothing still plots the actuals
        out = ascii_scatter([1.0, 2.0], [])
        assert "actual" in out


class TestWorkloads:
    def test_profile_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_PROFILE", raising=False)
        assert bench_profile() == "fast"
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "full")
        assert bench_profile() == "full"
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "bogus")
        with pytest.raises(ValueError):
            bench_profile()

    def test_cifar_workload_shapes(self):
        cfg = cifar_workload("lc-asgd", 8)
        assert cfg.algorithm == "lc-asgd"
        assert cfg.num_workers == 8
        assert cfg.dataset == "cifar"
        assert cfg.momentum == 0.9

    def test_imagenet_workload(self):
        cfg = imagenet_workload("asgd", 4, bn_mode="replace")
        assert cfg.dataset == "imagenet"
        assert cfg.bn_mode == "replace"
        assert cfg.cluster.mean_batch_time > cifar_workload("asgd", 4).cluster.mean_batch_time

    def test_sgd_workload_single_worker(self):
        assert cifar_workload("sgd", 16).num_workers == 1

    def test_paper_reference_lookup(self):
        assert paper_reference("cifar", 16, "lc-asgd") == pytest.approx(5.52)
        assert paper_reference("cifar", 1, "sgd") == pytest.approx(5.15)
        assert paper_reference("cifar", 2, "asgd") is None

    def test_paper_tables_consistent(self):
        """Sanity on the transcribed paper numbers: LC-ASGD is always the
        best distributed algorithm in Table 1."""
        for dataset in ("cifar", "imagenet"):
            for m in (4, 8, 16):
                lc = PAPER_TABLE1[(dataset, m, "lc-asgd")]
                for algo in ("ssgd", "asgd", "dc-asgd"):
                    assert lc < PAPER_TABLE1[(dataset, m, algo)]

    def test_paper_overhead_shape(self):
        """Paper overhead: ~8% on CIFAR, ~1.5% on ImageNet, growing in M."""
        for m in (4, 8, 16):
            assert PAPER_OVERHEAD[("cifar", m)]["overhead_pct"] > PAPER_OVERHEAD[("imagenet", m)]["overhead_pct"]
        assert PAPER_OVERHEAD[("cifar", 16)]["total_ms"] > PAPER_OVERHEAD[("cifar", 4)]["total_ms"]
