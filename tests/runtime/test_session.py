"""ExperimentPlan / ExperimentSession: backend-agnostic wiring units."""

import numpy as np
import pytest

from repro.core import DistributedTrainer, TrainingConfig
from repro.nn.module import get_flat_params
from repro.runtime import ExperimentPlan, ExperimentSession
from repro.runtime.session import STATE_OVERHEAD_BYTES, build_dataset, build_model


def tiny_plan(algorithm="asgd", num_workers=2, **overrides):
    cfg = TrainingConfig.tiny(algorithm=algorithm, num_workers=num_workers, **overrides)
    return ExperimentPlan.from_config(cfg)


class TestExperimentPlan:
    def test_replicas_identical_and_match_server(self):
        plan = tiny_plan(num_workers=3, seed=5)
        flats = [get_flat_params(w.model) for w in plan.workers]
        for flat in flats[1:]:
            np.testing.assert_array_equal(flats[0], flat)
        np.testing.assert_array_equal(flats[0], plan.server.params)

    def test_update_budget_from_epochs(self):
        plan = tiny_plan(epochs=4)
        assert plan.iters_per_epoch == 8  # 256 samples / batch 32
        assert plan.total_updates == 32

    def test_update_budget_from_max_updates(self):
        plan = tiny_plan(max_updates=5)
        assert plan.total_updates == 5

    def test_predictors_only_for_lc_asgd(self):
        assert tiny_plan("asgd").server.loss_predictor is None
        lc = tiny_plan("lc-asgd")
        assert lc.server.loss_predictor is not None
        assert lc.server.step_predictor is not None

    def test_state_bytes_include_bn_payload(self):
        async_bn = tiny_plan("asgd", bn_mode="async")
        assert async_bn.state_bytes > STATE_OVERHEAD_BYTES
        local = tiny_plan("sgd", num_workers=1, bn_mode="local")
        assert local.state_bytes == STATE_OVERHEAD_BYTES

    def test_same_seed_same_plan_params(self):
        a, b = tiny_plan(seed=3), tiny_plan(seed=3)
        np.testing.assert_array_equal(a.server.params, b.server.params)

    def test_trainer_exposes_plan_components(self):
        cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=2, seed=0)
        plan = ExperimentPlan.from_config(cfg)
        trainer = DistributedTrainer(plan=plan)
        assert trainer.server is plan.server
        assert trainer.workers is plan.workers
        assert trainer.compute is plan.compute
        assert trainer.config is plan.config

    def test_trainer_requires_config_or_plan(self):
        with pytest.raises(ValueError, match="config or a plan"):
            DistributedTrainer()


class TestExperimentSession:
    def test_evaluate_stamps_given_clock(self):
        session = ExperimentSession(tiny_plan())
        point = session.evaluate(42.5)
        assert point.time == 42.5
        assert 0.0 <= point.test_error <= 1.0

    def test_maybe_evaluate_respects_boundaries(self):
        session = ExperimentSession(tiny_plan())
        session.maybe_evaluate(0.0)  # zero batches processed: no snapshot
        assert session.curve == []

    def test_ensure_final_eval_fills_empty_curve(self):
        session = ExperimentSession(tiny_plan())
        session.ensure_final_eval(1.0)
        assert len(session.curve) == 1
        session.ensure_final_eval(2.0)  # idempotent once non-empty
        assert len(session.curve) == 1

    def test_build_result_carries_backend_and_clocks(self):
        session = ExperimentSession(tiny_plan(seed=11))
        session.ensure_final_eval(3.0)
        result = session.build_result(3.0, backend="thread", wall_time=2.5)
        assert result.backend == "thread"
        assert result.wall_time == 2.5
        assert result.total_virtual_time == 3.0
        assert result.seed == 11

    def test_build_dataset_reexported(self):
        cfg = TrainingConfig.tiny()
        train, test, n_cls = build_dataset(cfg)
        assert len(train) > 0 and len(test) > 0 and n_cls == 10
        model = build_model(cfg, train.input_shape, n_cls)
        assert model.num_parameters() > 0
