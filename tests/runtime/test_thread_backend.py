"""ThreadBackend: real concurrency, determinism, parity, and liveness."""

import time

import numpy as np
import pytest

from repro.core import TrainingConfig
from repro.runtime import (
    ExperimentPlan,
    InProcTransport,
    Mailbox,
    RoundRobinTurnstile,
    ThreadBackend,
    run_experiment,
)
from repro.runtime.messages import PullRequest, Shutdown

TIMEOUT = 120.0


def run_thread(cfg, **options):
    options.setdefault("timeout", TIMEOUT)
    plan = ExperimentPlan.from_config(cfg)
    result = ThreadBackend(**options).run(plan)
    return plan, result


@pytest.mark.parametrize("algorithm", ["sgd", "ssgd", "asgd", "dc-asgd", "lc-asgd", "sa-asgd"])
def test_every_algorithm_completes(algorithm):
    cfg = TrainingConfig.tiny(algorithm=algorithm, num_workers=2, epochs=2, seed=3)
    _, result = run_thread(cfg)
    assert result.backend == "thread"
    assert result.total_updates == cfg.epochs * 8  # 256/32 = 8 iters/epoch
    assert result.wall_time > 0.0
    assert result.final_train_error < 0.95


def test_free_running_has_real_staleness_and_clock():
    cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=4, epochs=2, seed=0)
    _, result = run_thread(cfg)
    # genuine interleaving: four racing workers cannot all be staleness-0
    assert result.staleness["mean"] > 0
    # the curve is stamped with real seconds since run start
    assert all(0.0 <= p.time <= result.wall_time + 1.0 for p in result.curve)
    assert result.total_virtual_time == result.wall_time


def test_ssgd_barrier_holds_under_threads():
    cfg = TrainingConfig.tiny(algorithm="ssgd", num_workers=4, epochs=2, seed=1)
    plan, result = run_thread(cfg)
    assert result.staleness["max"] == 0
    assert plan.server.version == result.total_updates // 4


def test_deterministic_mode_reproduces_bitwise():
    finals, curves = [], []
    for _ in range(2):
        cfg = TrainingConfig.tiny(algorithm="lc-asgd", num_workers=3, epochs=2, seed=9)
        plan, result = run_thread(cfg, deterministic=True)
        finals.append(plan.server.params.copy())
        curves.append([p.train_loss for p in result.curve])
    np.testing.assert_array_equal(finals[0], finals[1])
    np.testing.assert_array_equal(curves[0], curves[1])


@pytest.mark.parametrize("algorithm", ["asgd", "dc-asgd"])
def test_deterministic_thread_matches_sim_single_worker(algorithm):
    """One worker = one schedule: both backends run the identical math."""
    cfg = TrainingConfig.tiny(algorithm=algorithm, num_workers=1, epochs=2, seed=5)
    sim_plan = ExperimentPlan.from_config(cfg)
    from repro.runtime import SimBackend

    sim_result = SimBackend().run(sim_plan)
    thread_plan, thread_result = run_thread(cfg, deterministic=True)
    np.testing.assert_allclose(sim_plan.server.params, thread_plan.server.params, rtol=0, atol=0)
    assert sim_result.final_test_error == thread_result.final_test_error
    assert sim_result.total_updates == thread_result.total_updates


def test_stress_many_workers_no_deadlock():
    """Eight racing workers must drain the budget without hanging."""
    cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=8, max_updates=48, seed=2)
    start = time.perf_counter()
    _, result = run_thread(cfg, timeout=60.0)
    assert result.total_updates == 48
    assert time.perf_counter() - start < 60.0


def test_stress_lc_asgd_compensation_round_trips():
    """The extra state/compensation round trip must not wedge the actor."""
    cfg = TrainingConfig.tiny(algorithm="lc-asgd", num_workers=6, max_updates=36, seed=4)
    _, result = run_thread(cfg, timeout=60.0)
    assert result.total_updates == 36
    assert len(result.loss_prediction_pairs) > 0


def test_local_bn_mode_eval_is_safe_under_threads():
    """Eval borrows worker 0's BN stats; the model_lock keeps it torn-free."""
    cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=3, epochs=2, bn_mode="local", seed=6)
    _, result = run_thread(cfg, timeout=60.0)
    assert result.total_updates == cfg.epochs * 8
    assert all(np.isfinite(p.test_error) for p in result.curve)


def test_max_updates_budget_is_exact():
    cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=3, max_updates=7, seed=0)
    plan, result = run_thread(cfg)
    assert result.total_updates == 7
    assert plan.server.batches_processed == 7
    assert len(result.curve) >= 1


def test_emulated_compute_delay_slows_the_run():
    cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=2, max_updates=8, seed=0)
    _, fast = run_thread(cfg)
    cfg2 = TrainingConfig.tiny(algorithm="asgd", num_workers=2, max_updates=8, seed=0)
    _, slow = run_thread(cfg2, compute_scale=1.0)  # ~30ms per virtual batch
    assert slow.wall_time > fast.wall_time


def test_invalid_backend_options_rejected():
    with pytest.raises(ValueError, match=">= 0"):
        ThreadBackend(time_scale=-1.0)
    with pytest.raises(ValueError, match="positive"):
        ThreadBackend(timeout=0.0)


def test_worker_failure_preserves_original_traceback(monkeypatch):
    """A crash inside a worker thread must re-raise in the caller with the
    failing thread's frames intact, not a bare one-frame re-raise."""
    import traceback

    from repro.core.worker import DistributedWorker

    def exploding_forward(self):
        raise ValueError("injected forward failure")

    monkeypatch.setattr(DistributedWorker, "forward", exploding_forward)
    cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=2, epochs=1, seed=0)
    plan = ExperimentPlan.from_config(cfg)
    with pytest.raises(ValueError, match="injected forward failure") as excinfo:
        ThreadBackend(timeout=30.0).run(plan)
    frames = {f.name for f in traceback.extract_tb(excinfo.value.__traceback__)}
    assert "exploding_forward" in frames  # the crash site survived the hop
    assert "_one_cycle" in frames  # and so did the worker-loop context


class TestTransport:
    def test_mailbox_fifo(self):
        box = Mailbox()
        box.put(PullRequest(0))
        box.put(Shutdown())
        assert isinstance(box.get(), PullRequest)
        assert isinstance(box.get(), Shutdown)
        assert len(box) == 0

    def test_mailbox_honours_delivery_deadline(self):
        box = Mailbox()
        box.put(PullRequest(0), not_before=time.monotonic() + 0.05)
        start = time.monotonic()
        box.get()
        assert time.monotonic() - start >= 0.04

    def test_shutdown_cancels_pending_delivery_deadlines(self):
        # a Shutdown queued behind a delay-stamped message must not wait
        # out the emulated link delay: enqueueing it expedites everything
        box = Mailbox()
        box.put(PullRequest(0), not_before=time.monotonic() + 30.0)
        box.put(Shutdown())
        start = time.monotonic()
        assert isinstance(box.get(), PullRequest)  # FIFO order kept
        assert isinstance(box.get(), Shutdown)
        assert time.monotonic() - start < 5.0

    def test_shutdown_wakes_receiver_blocked_on_a_deadline(self):
        import threading

        box = Mailbox()
        box.put(PullRequest(0), not_before=time.monotonic() + 30.0)
        got = []
        t = threading.Thread(target=lambda: got.append(box.get()))
        t.start()
        time.sleep(0.05)  # let the receiver block mid-deadline
        box.put(Shutdown())
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert isinstance(got[0], PullRequest)

    def test_link_delay_scales_with_network(self):
        plan = ExperimentPlan.from_config(
            TrainingConfig.tiny(algorithm="asgd", num_workers=2, seed=0)
        )
        transport = InProcTransport(2, network=plan.network, time_scale=0.5)
        delay = transport._link_delay(0, 10_000)
        assert delay > 0
        # no network or zero scale disables emulation entirely
        assert InProcTransport(2)._link_delay(0, 10_000) == 0.0
        assert InProcTransport(2, network=plan.network, time_scale=0.0)._link_delay(0, 10_000) == 0.0

    def test_transport_validates_arguments(self):
        with pytest.raises(ValueError, match=">= 1"):
            InProcTransport(0)
        with pytest.raises(ValueError, match=">= 0"):
            InProcTransport(2, time_scale=-0.1)


class TestTurnstile:
    def test_round_robin_order(self):
        import threading

        turnstile = RoundRobinTurnstile(3)
        done = threading.Event()
        order = []

        def spin(worker):
            for _ in range(3):
                assert turnstile.acquire(worker, done)
                order.append(worker)
                turnstile.release(worker)
            turnstile.retire(worker)

        threads = [threading.Thread(target=spin, args=(m,)) for m in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert not any(t.is_alive() for t in threads)
        assert order[:3] == [0, 1, 2] and order == [0, 1, 2] * 3

    def test_retire_unblocks_waiters(self):
        import threading

        turnstile = RoundRobinTurnstile(2)
        done = threading.Event()
        assert turnstile.acquire(0, done)
        got = []

        def waiter():
            got.append(turnstile.acquire(1, done))
            turnstile.release(1)
            turnstile.retire(1)

        t = threading.Thread(target=waiter)
        t.start()
        turnstile.release(0)
        turnstile.retire(0)  # rotation shrinks to worker 1 only
        t.join(timeout=10.0)
        assert not t.is_alive()
        assert got == [True]

    def test_acquire_returns_false_when_done(self):
        import threading

        turnstile = RoundRobinTurnstile(2)
        done = threading.Event()
        done.set()
        # worker 1 is not the holder and the run is over: must not block
        assert turnstile.acquire(1, done) is False
