"""Gradient codecs: round-trip properties, error bounds, error feedback."""

import numpy as np
import pytest

from repro.runtime.codecs import (
    CodecError,
    Fp16Codec,
    ROLE_BN,
    ROLE_GRAD,
    ROLE_WEIGHTS,
    Raw32Codec,
    TOPK_RATIO,
    TopKCodec,
    available_codecs,
    decode_array,
    entry_nbytes,
    make_codec,
    register_codec,
)


def awkward_arrays():
    """The shapes a codec must survive, not just happy-path 1-D float32."""
    rng = np.random.default_rng(11)
    return [
        ("contiguous_1d", rng.normal(size=64).astype(np.float32)),
        ("float64", rng.normal(size=33)),
        ("noncontiguous", rng.normal(size=(8, 10)).astype(np.float32)[:, ::2]),
        ("transposed", np.asfortranarray(rng.normal(size=(5, 7)))),
        ("zero_size", np.zeros((0,), dtype=np.float32)),
        ("scalar_shaped", np.array(3.5)),
    ]


def roundtrip(codec, role, array, copy=True):
    entry, buffers = codec.encode(role, array)
    # the wire delivers flat byte buffers; simulate that re-view here
    buffers = [np.frombuffer(np.ascontiguousarray(b).tobytes(), dtype=b.dtype) for b in buffers]
    decoded, owned = decode_array(entry, buffers, copy=copy)
    assert decoded.shape == np.shape(array)
    assert entry_nbytes(entry) == sum(b.nbytes for b in buffers)
    return decoded, owned


@pytest.mark.parametrize("name,array", awkward_arrays(), ids=lambda v: v if isinstance(v, str) else "")
@pytest.mark.parametrize("codec_name", ["raw32", "fp16", "topk"])
@pytest.mark.parametrize("role", [ROLE_GRAD, ROLE_WEIGHTS, ROLE_BN])
def test_every_codec_round_trips_awkward_arrays(codec_name, role, name, array):
    codec = make_codec(codec_name)
    decoded, _ = roundtrip(codec, role, array)
    reference = np.ascontiguousarray(array, dtype=np.float32)
    if codec_name == "raw32" or (codec_name == "topk" and role != ROLE_GRAD):
        np.testing.assert_array_equal(decoded, reference)
    elif codec_name == "fp16":
        np.testing.assert_allclose(decoded, reference, rtol=2**-10, atol=1e-6)
    else:  # topk on a gradient: decoded + residual reconstructs the input
        total = np.asarray(decoded, dtype=np.float64).reshape(-1) + codec.residual
        np.testing.assert_allclose(
            total, np.asarray(array, dtype=np.float64).reshape(-1), rtol=0, atol=0
        )


def test_raw32_views_are_borrowed_only_without_copy():
    array = np.arange(12, dtype=np.float32)
    _, owned = roundtrip(Raw32Codec(), ROLE_GRAD, array, copy=False)
    assert owned is False  # zero-copy: caller must not let it escape
    _, owned = roundtrip(Raw32Codec(), ROLE_GRAD, array, copy=True)
    assert owned is True


def test_fp16_relative_error_bound():
    rng = np.random.default_rng(0)
    array = rng.normal(size=4096) * 10.0
    decoded, owned = roundtrip(Fp16Codec(), ROLE_WEIGHTS, array)
    assert owned is True  # astype materializes: safe to retain
    rel = np.abs(decoded.astype(np.float64) - array) / np.abs(array)
    assert float(rel.max()) <= 2**-10  # half-precision rounding, nothing worse


def test_fp16_halves_the_payload():
    array = np.zeros(1000, dtype=np.float32)
    raw_entry, _ = Raw32Codec().encode(ROLE_GRAD, array)
    f16_entry, _ = Fp16Codec().encode(ROLE_GRAD, array)
    assert entry_nbytes(f16_entry) * 2 == entry_nbytes(raw_entry)


def test_topk_selects_largest_coordinates_first():
    grad = np.zeros(100)
    grad[[7, 42, 93]] = [5.0, -9.0, 3.0]
    codec = TopKCodec()
    entry, (idx, vals) = codec.encode(ROLE_GRAD, grad)
    k = int(np.ceil(100 * TOPK_RATIO))
    assert len(idx) == k
    assert {7, 42, 93} <= set(int(i) for i in idx)  # mass beats zeros
    decoded, _ = decode_array(entry, [idx, vals])
    np.testing.assert_allclose(decoded[[7, 42, 93]], [5.0, -9.0, 3.0], rtol=1e-6)


def test_topk_error_feedback_conserves_and_drains():
    """What is not sent is kept; with nothing new arriving it all ships."""
    codec = TopKCodec()
    grad = np.ones(20)
    sent = np.zeros(20, dtype=np.float64)
    for _ in range(5):
        entry, (idx, vals) = codec.encode(ROLE_GRAD, grad)
        sent[idx] += vals.astype(np.float64)
    # conservation: shipped + residual == everything injected, exactly
    np.testing.assert_allclose(sent + codec.residual, 5.0 * grad, rtol=0, atol=0)
    assert float(np.abs(codec.residual).max()) > 0  # something was deferred
    # constant-gradient drain: feed zeros and the residual empties out
    for _ in range(25):
        entry, (idx, vals) = codec.encode(ROLE_GRAD, np.zeros(20))
        sent[idx] += vals.astype(np.float64)
    assert float(np.abs(codec.residual).max()) == 0.0
    np.testing.assert_allclose(sent, 5.0 * grad, rtol=0, atol=0)


def test_topk_is_per_sender_state():
    a, b = TopKCodec(), TopKCodec()
    a.encode(ROLE_GRAD, np.ones(10))
    assert b.residual is None  # instances never share a residual


def test_decode_rejects_bad_entries():
    with pytest.raises(CodecError, match="unknown array encoding"):
        decode_array({"enc": "zstd", "shape": [1], "parts": []}, [])
    idx = np.array([5], dtype=np.int32)
    vals = np.array([1.0], dtype=np.float32)
    with pytest.raises(CodecError, match="out of range"):
        decode_array(
            {"enc": "topk", "shape": [3], "parts": [{"dtype": "int32", "n": 1},
                                                    {"dtype": "float32", "n": 1}]},
            [idx, vals],
        )
    with pytest.raises(CodecError, match="malformed array entry"):
        entry_nbytes({"parts": [{"dtype": "float32"}]})


def test_registry():
    assert available_codecs() == ("fp16", "raw32", "topk")
    with pytest.raises(CodecError, match="unknown comm codec"):
        make_codec("gzip")
    with pytest.raises(CodecError, match="already registered"):
        register_codec(Raw32Codec)
