"""GossipBackend: determinism, convergence, liveness, and the PairingBoard."""

import threading

import numpy as np
import pytest

from repro.cluster import RingTopology
from repro.core import TrainingConfig
from repro.runtime import (
    ExperimentPlan,
    GossipBackend,
    PairingBoard,
    run_experiment,
)

TIMEOUT = 120.0


def run_gossip(cfg, **options):
    if options.get("mode") == "thread":
        options.setdefault("timeout", TIMEOUT)
    plan = ExperimentPlan.from_config(cfg)
    result = GossipBackend(**options).run(plan)
    return plan, result


# ---------------------------------------------------------------------- #
# deterministic sim mode
# ---------------------------------------------------------------------- #
def test_sim_mode_reproduces_bitwise():
    dicts = []
    for _ in range(2):
        cfg = TrainingConfig.spirals(
            algorithm="ad-psgd", num_workers=3, topology="ring", epochs=2, seed=9
        )
        _, result = run_gossip(cfg, mode="sim")
        payload = result.to_dict()
        payload.pop("wall_time")
        payload.pop("timers")  # real ms, not part of the virtual run
        dicts.append(payload)
    assert dicts[0] == dicts[1]


@pytest.mark.parametrize("topology", ["ring", "bipartite", "complete"])
def test_sim_mode_every_topology_completes(topology):
    cfg = TrainingConfig.tiny(
        algorithm="ad-psgd", num_workers=4, topology=topology, epochs=2, seed=1
    )
    _, result = run_gossip(cfg, mode="sim")
    assert result.backend == "gossip"
    assert result.topology == topology
    assert result.total_updates == cfg.epochs * 8  # 256/32 iters per epoch
    assert result.final_train_error < 0.95


def test_sim_mode_single_worker_degenerates_to_local_sgd():
    cfg = TrainingConfig.tiny(algorithm="ad-psgd", num_workers=1, epochs=2, seed=4)
    _, result = run_gossip(cfg, mode="sim")
    assert result.total_updates == cfg.epochs * 8
    assert result.comm["total_bytes"] == 0  # no peers, no traffic


def test_sim_mode_records_gossip_staleness_and_comm():
    cfg = TrainingConfig.tiny(
        algorithm="ad-psgd", num_workers=4, topology="ring", epochs=2, seed=2
    )
    _, result = run_gossip(cfg, mode="sim")
    # staleness = local steps since last averaging; with degree-2 gossip
    # some step always lands between averagings, so the mean is positive
    assert result.staleness["mean"] > 0
    assert result.comm["server_bytes"] == 0  # serverless (hub = coordinator)
    assert result.comm["max_worker_bytes"] > 0
    assert result.comm["total_bytes"] > 0
    # the busiest endpoint is a worker moving ~2 model payloads per exchange,
    # far below the whole-cluster wire total
    assert result.comm["max_worker_bytes"] < result.comm["total_bytes"]


def test_sim_dispatches_from_sim_backend_name():
    cfg = TrainingConfig.tiny(
        algorithm="ad-psgd", num_workers=2, topology="ring", epochs=1, seed=0
    )
    result = run_experiment(cfg, backend="sim")
    assert result.backend == "gossip"
    assert result.topology == "ring"


# ---------------------------------------------------------------------- #
# concurrent thread mode
# ---------------------------------------------------------------------- #
def test_thread_mode_converges_on_spirals():
    cfg = TrainingConfig.spirals(
        algorithm="ad-psgd", num_workers=3, topology="ring", epochs=6, seed=7
    )
    _, result = run_gossip(cfg, mode="thread")
    assert result.backend == "gossip"
    assert result.total_updates > 0
    # 3-class spirals: chance is ~0.67, and the same budget leaves asgd
    # around 0.5 — the consensus model must do genuinely better
    assert result.final_test_error < 0.45
    assert result.wall_time > 0


def test_thread_mode_no_deadlock_under_delay_injection():
    # nonzero time_scale sleeps inside every peer send, widening the race
    # windows the PairingBoard must survive; the run must still finish
    cfg = TrainingConfig.tiny(
        algorithm="ad-psgd", num_workers=4, topology="bipartite", epochs=2, seed=5
    )
    _, result = run_gossip(cfg, mode="thread", time_scale=0.05, timeout=60.0)
    assert result.total_updates == cfg.epochs * 8
    assert result.comm["max_worker_bytes"] > 0


def test_thread_mode_dispatches_from_thread_backend_name():
    cfg = TrainingConfig.tiny(
        algorithm="ad-psgd", num_workers=2, topology="complete", epochs=1, seed=3
    )
    result = run_experiment(cfg, backend="thread")
    assert result.backend == "gossip"
    assert result.topology == "complete"


# ---------------------------------------------------------------------- #
# guard rails
# ---------------------------------------------------------------------- #
def test_gossip_rejects_server_algorithms():
    plan = ExperimentPlan.from_config(TrainingConfig.tiny(algorithm="asgd"))
    with pytest.raises(ValueError, match="ad-psgd"):
        GossipBackend().run(plan)


def test_proc_backend_rejects_adpsgd():
    cfg = TrainingConfig.tiny(algorithm="ad-psgd", num_workers=2, epochs=1)
    with pytest.raises(ValueError, match="gossip"):
        run_experiment(cfg, backend="proc")


def test_trainer_rejects_adpsgd():
    from repro.core.trainer import DistributedTrainer

    with pytest.raises(ValueError, match="gossip"):
        DistributedTrainer(TrainingConfig.tiny(algorithm="ad-psgd"))


def test_backend_options_validated():
    with pytest.raises(ValueError, match="mode"):
        GossipBackend(mode="proc")
    with pytest.raises(ValueError, match="time_scale"):
        GossipBackend(time_scale=-1)
    with pytest.raises(ValueError, match="timeout"):
        GossipBackend(timeout=0)


# ---------------------------------------------------------------------- #
# PairingBoard
# ---------------------------------------------------------------------- #
def _park(board, worker, desired, results):
    results[worker] = board.request(worker, desired)


def test_board_matches_mutual_requests():
    board = PairingBoard(RingTopology(4))
    results = {}
    t = threading.Thread(target=_park, args=(board, 0, 1, results))
    t.start()
    while 0 not in board._waiting:  # wait until 0 is parked
        pass
    assert board.request(1, 0) == 0
    t.join(timeout=5)
    assert results[0] == 1


def test_board_accepts_any_waiting_neighbor():
    # worker 0 parks wanting 1; worker 3 arrives wanting 2 — but 0 is a
    # waiting neighbor of 3 on the ring, so the board pairs 3 with 0
    # instead of parking both (the rule that breaks the classic deadlock
    # cycle of four workers all desiring an already-busy partner)
    board = PairingBoard(RingTopology(4))
    results = {}
    t = threading.Thread(target=_park, args=(board, 0, 1, results))
    t.start()
    while 0 not in board._waiting:
        pass
    assert board.request(3, 2) == 0
    t.join(timeout=5)
    assert results[0] == 3


def test_board_shutdown_releases_parked_workers():
    board = PairingBoard(RingTopology(4))
    results = {}
    t = threading.Thread(target=_park, args=(board, 2, 3, results))
    t.start()
    while 2 not in board._waiting:
        pass
    board.shutdown()
    t.join(timeout=5)
    assert results[2] is None
    # post-shutdown requests return immediately with no partner
    assert board.request(1, 0) is None
