"""Wire layer: every Message round-trips exactly; framing survives sockets."""

import json
import socket
import threading

import numpy as np
import pytest

from repro.core.state import CompensationReply, GradientPayload, WorkerState
from repro.runtime.codecs import make_codec
from repro.runtime.messages import (
    BnStatsPush,
    CombinedPush,
    CompensationMessage,
    GossipReport,
    GradientPush,
    PullReply,
    PullRequest,
    Shutdown,
    StatePush,
    WeightExchange,
)
from repro.runtime import wire
from repro.runtime.wire import (
    ConnectionClosed,
    ControlFrame,
    FrameConnection,
    ProtocolMismatch,
    WireError,
    decode,
    encode_control,
    encode_message,
)


def _state(worker=1, bn_layers=2):
    rng = np.random.default_rng(0)
    bn = [
        (rng.normal(size=4).astype(np.float32), rng.normal(size=4).astype(np.float32))
        for _ in range(bn_layers)
    ]
    return WorkerState(
        worker=worker, loss=0.731, bn_stats=bn, t_comm=0.01, t_comp=0.02, pull_version=5
    )


def _payload(worker=1, n=17):
    grad = np.random.default_rng(3).normal(size=n)
    return GradientPayload(worker=worker, grad=grad, pull_version=4, loss=0.9)


def _messages():
    weights = np.random.default_rng(1).normal(size=33).astype(np.float64)
    reply = CompensationReply(worker=2, l_delay=0.61, predicted_step=3, sensitivity=0.25)
    return [
        PullRequest(0, sent_at=1.25),
        PullReply(1, weights=weights, version=7, request_sent_at=0.5),
        PullReply(1, weights=None, version=-1),  # barrier-queued shape
        StatePush(1, state=_state()),
        StatePush(2, state=_state(worker=2, bn_layers=0)),  # local-BN: no stats
        CompensationMessage(2, reply=reply),
        CompensationMessage(2, reply=None),  # non-LC algorithms reply nothing
        GradientPush(1, payload=_payload()),
        CombinedPush(3, state=_state(worker=3), payload=_payload(worker=3)),
        Shutdown(),
        BnStatsPush(  # running stats are float64 in the model, float32 on the wire
            0,
            stats=tuple(
                (rng.normal(size=6), np.abs(rng.normal(size=6)) + 0.5)
                for rng in [np.random.default_rng(9)]
                for _ in range(2)
            ),
        ),
        BnStatsPush(0, stats=()),  # BN-free model
        WeightExchange(  # one side of an ad-psgd pairwise average
            2,
            weights=np.random.default_rng(5).normal(size=21),
            bn_stats=tuple(
                (rng.normal(size=3), np.abs(rng.normal(size=3)) + 0.1)
                for rng in [np.random.default_rng(6)]
                for _ in range(2)
            ),
            step=41,
        ),
        WeightExchange(3, weights=None, bn_stats=(), step=0),  # handshake shape
        GossipReport(1, loss=0.42, staleness=3, local_step=17),
    ]


def _assert_equal(original, decoded):
    assert type(decoded) is type(original)
    assert decoded.worker == original.worker
    if isinstance(original, PullRequest):
        assert decoded.sent_at == original.sent_at
    if isinstance(original, PullReply):
        assert decoded.version == original.version
        assert decoded.request_sent_at == original.request_sent_at
        if original.weights is None:
            assert decoded.weights is None
        else:  # float32 wire format: exact after the cast
            np.testing.assert_array_equal(
                decoded.weights, original.weights.astype(np.float32)
            )
    if isinstance(original, (StatePush, CombinedPush)):
        a, b = original.state, decoded.state
        assert (b.worker, b.pull_version) == (a.worker, a.pull_version)
        assert b.loss == pytest.approx(a.loss)
        assert (b.t_comm, b.t_comp) == (a.t_comm, a.t_comp)
        assert len(b.bn_stats) == len(a.bn_stats)
        for (m0, v0), (m1, v1) in zip(a.bn_stats, b.bn_stats):
            np.testing.assert_array_equal(m1, m0.astype(np.float32))
            np.testing.assert_array_equal(v1, v0.astype(np.float32))
    if isinstance(original, (GradientPush, CombinedPush)):
        a, b = original.payload, decoded.payload
        assert (b.worker, b.pull_version) == (a.worker, a.pull_version)
        assert b.loss == pytest.approx(a.loss)
        assert b.grad.dtype == np.float64  # GradientPayload restores math dtype
        np.testing.assert_array_equal(b.grad, a.grad.astype(np.float32))
    if isinstance(original, WeightExchange):
        assert decoded.step == original.step
        if original.weights is None:
            assert decoded.weights is None
        else:
            np.testing.assert_array_equal(
                decoded.weights, original.weights.astype(np.float32)
            )
        assert len(decoded.bn_stats) == len(original.bn_stats)
        for (m0, v0), (m1, v1) in zip(original.bn_stats, decoded.bn_stats):
            np.testing.assert_array_equal(m1, np.asarray(m0, dtype=np.float32))
            np.testing.assert_array_equal(v1, np.asarray(v0, dtype=np.float32))
    if isinstance(original, GossipReport):
        assert decoded.loss == pytest.approx(original.loss)
        assert (decoded.staleness, decoded.local_step) == (
            original.staleness,
            original.local_step,
        )
    if isinstance(original, BnStatsPush):
        assert len(decoded.stats) == len(original.stats)
        for (m0, v0), (m1, v1) in zip(original.stats, decoded.stats):
            np.testing.assert_array_equal(m1, np.asarray(m0, dtype=np.float32))
            np.testing.assert_array_equal(v1, np.asarray(v0, dtype=np.float32))


@pytest.mark.parametrize("message", _messages(), ids=lambda m: type(m).__name__)
def test_every_message_type_round_trips(message):
    decoded, delay = decode(encode_message(message, delay=0.125))
    assert delay == 0.125
    _assert_equal(message, decoded)


def test_control_frames_round_trip():
    doc = {"hello": 3, "token": "abc", "nested": {"x": [1, 2]}}
    decoded, delay = decode(encode_control(doc))
    assert decoded == doc and delay == 0.0


def test_decode_rejects_garbage():
    with pytest.raises(WireError):
        decode(b"\x00")  # too short for a header length
    with pytest.raises(WireError):
        decode(b"\x00\x00\x00\xffgarbage")  # header length beyond frame
    with pytest.raises(WireError):
        decode(encode_message(PullRequest(0))[:-1] + b"")  # fine, full...
    # wrong protocol version
    bad = encode_control({"x": 1}).replace(b'"v":2', b'"v":9')
    with pytest.raises(WireError, match="protocol mismatch"):
        decode(bad)


def test_v1_peer_rejected_with_reason():
    # a handcrafted frame exactly as a v1 sender would emit it: the single
    # check_protocol_version path must name both versions in the error
    header = json.dumps(
        {"v": 1, "kind": "control", "delay": 0.0, "fields": {"hello": 0}, "arrays": []}
    ).encode("utf-8")
    frame = wire._LEN.pack(len(header)) + header
    with pytest.raises(ProtocolMismatch, match=r"peer speaks v1, we speak v2"):
        decode(frame)


def test_control_frame_roundtrip():
    frame = ControlFrame("hello", {"worker": 3, "token": "t"})
    doc = frame.to_doc()
    assert doc == {
        "ctl": "hello",
        "cv": wire.PROTOCOL_VERSION,
        "body": {"worker": 3, "token": "t"},
    }
    back = ControlFrame.from_doc(doc, expect_version=wire.PROTOCOL_VERSION)
    assert back.kind == "hello" and back.body == {"worker": 3, "token": "t"}
    # the doc form survives the wire unchanged
    decoded, _ = decode(encode_control(doc))
    assert ControlFrame.from_doc(decoded).body == frame.body


def test_control_frame_version_and_shape_checks():
    doc = ControlFrame("hello", {}, v=1).to_doc()
    with pytest.raises(WireError, match="protocol mismatch"):
        ControlFrame.from_doc(doc, expect_version=wire.PROTOCOL_VERSION)
    with pytest.raises(WireError, match="not a control frame"):
        ControlFrame.from_doc({"hello": 0})
    with pytest.raises(WireError, match="body"):
        ControlFrame.from_doc({"ctl": "x", "cv": 2, "body": [1]})


def test_decode_rejects_truncated_arrays():
    frame = encode_message(GradientPush(0, payload=_payload(n=8)))
    with pytest.raises(WireError, match="truncated"):
        decode(frame[:-4])


def test_encode_rejects_unknown_message():
    class Rogue:
        pass

    with pytest.raises(WireError, match="no wire codec"):
        encode_message(Rogue())


def test_frame_connection_over_socketpair():
    left, right = socket.socketpair()
    a, b = FrameConnection(left), FrameConnection(right)
    try:
        sent = _messages()
        # writer thread so large frames cannot deadlock the pair's buffers
        writer = threading.Thread(
            target=lambda: [a.send_message(m, delay=0.5) for m in sent]
        )
        writer.start()
        for original in sent:
            decoded, delay = b.recv()
            assert delay == 0.5
            _assert_equal(original, decoded)
        writer.join(timeout=10.0)
    finally:
        a.close()
        b.close()


def test_frame_connection_eof_raises_connection_closed():
    left, right = socket.socketpair()
    a, b = FrameConnection(left), FrameConnection(right)
    a.close()
    with pytest.raises(ConnectionClosed):
        b.read_frame()
    b.close()


def test_frame_length_cap_enforced_both_ends(monkeypatch):
    left, right = socket.socketpair()
    a, b = FrameConnection(left), FrameConnection(right)
    try:
        monkeypatch.setattr(wire, "MAX_FRAME_BYTES", 16)
        # sender side: an oversized frame fails loudly here, before any
        # byte leaves (this used to slip through and die on the peer)
        with pytest.raises(WireError, match="outgoing frame length"):
            a.send_frame(b"x" * 64)
        # receiver side: a corrupt length prefix must not trigger a huge
        # allocation — write one straight past the sender-side check
        left.sendall(wire._LEN.pack(64))
        with pytest.raises(WireError, match="exceeds cap"):
            b.read_frame()
    finally:
        a.close()
        b.close()


def test_recv_info_reports_logical_and_wire_bytes():
    left, right = socket.socketpair()
    a, b = FrameConnection(left), FrameConnection(right)
    try:
        message = GradientPush(1, payload=_payload(n=64))
        a.send_message(message, nbytes=64 * 4)
        decoded, delay, logical, wire_nbytes = b.recv_info()
        assert isinstance(decoded, GradientPush)
        assert logical == 256
        # raw32 wire = header + 4 bytes/element + framing, so > logical
        assert wire_nbytes > 256
    finally:
        a.close()
        b.close()


@pytest.mark.parametrize("codec_name", ["raw32", "fp16", "topk"])
def test_codec_negotiated_connection_roundtrip(codec_name):
    left, right = socket.socketpair()
    a = FrameConnection(left, codec=make_codec(codec_name))
    b = FrameConnection(right)
    try:
        n = 1024
        message = GradientPush(1, payload=_payload(n=n))
        sent_bytes = []
        writer = threading.Thread(
            target=lambda: sent_bytes.append(a.send_message(message, nbytes=n * 4))
        )
        writer.start()
        decoded, _, logical, wire_nbytes = b.recv_info()
        writer.join(timeout=10.0)
        assert sent_bytes[0] == wire_nbytes  # both ends count the same bytes
        assert logical == n * 4
        assert decoded.payload.grad.shape == (n,)
        grad = message.payload.grad
        if codec_name == "raw32":
            np.testing.assert_array_equal(decoded.payload.grad, grad.astype(np.float32))
        elif codec_name == "fp16":
            np.testing.assert_allclose(decoded.payload.grad, grad, rtol=2**-10, atol=1e-4)
            assert wire_nbytes < n * 4  # half-precision actually shrank the frame
        else:  # topk ships ceil(10%) of coordinates, exact where it ships
            nonzero = np.nonzero(decoded.payload.grad)[0]
            assert 1 <= len(nonzero) <= 103
            np.testing.assert_allclose(
                decoded.payload.grad[nonzero], grad[nonzero], rtol=1e-6
            )
    finally:
        a.close()
        b.close()


def test_decoded_messages_do_not_alias_recv_buffer():
    """The reusable receive buffer is overwritten by every read; anything a
    decoded message retains must therefore be owned, not borrowed."""
    left, right = socket.socketpair()
    a, b = FrameConnection(left), FrameConnection(right)
    try:
        first = BnStatsPush(0, stats=((np.ones(50), np.full(50, 2.0)),))
        second = BnStatsPush(0, stats=((np.full(50, 9.0), np.full(50, 8.0)),))
        a.send_message(first)
        a.send_message(second)
        d1, _ = b.recv()
        d2, _ = b.recv()  # overwrites the buffer d1 was decoded from
        np.testing.assert_array_equal(d1.stats[0][0], np.ones(50, dtype=np.float32))
        np.testing.assert_array_equal(d2.stats[0][0], np.full(50, 9.0, dtype=np.float32))
    finally:
        a.close()
        b.close()
