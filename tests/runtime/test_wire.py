"""Wire layer: every Message round-trips exactly; framing survives sockets."""

import socket
import threading

import numpy as np
import pytest

from repro.core.state import CompensationReply, GradientPayload, WorkerState
from repro.runtime.messages import (
    BnStatsPush,
    CombinedPush,
    CompensationMessage,
    GradientPush,
    PullReply,
    PullRequest,
    Shutdown,
    StatePush,
)
from repro.runtime import wire
from repro.runtime.wire import (
    ConnectionClosed,
    FrameConnection,
    WireError,
    decode,
    encode_control,
    encode_message,
)


def _state(worker=1, bn_layers=2):
    rng = np.random.default_rng(0)
    bn = [
        (rng.normal(size=4).astype(np.float32), rng.normal(size=4).astype(np.float32))
        for _ in range(bn_layers)
    ]
    return WorkerState(
        worker=worker, loss=0.731, bn_stats=bn, t_comm=0.01, t_comp=0.02, pull_version=5
    )


def _payload(worker=1, n=17):
    grad = np.random.default_rng(3).normal(size=n)
    return GradientPayload(worker=worker, grad=grad, pull_version=4, loss=0.9)


def _messages():
    weights = np.random.default_rng(1).normal(size=33).astype(np.float64)
    reply = CompensationReply(worker=2, l_delay=0.61, predicted_step=3, sensitivity=0.25)
    return [
        PullRequest(0, sent_at=1.25),
        PullReply(1, weights=weights, version=7, request_sent_at=0.5),
        PullReply(1, weights=None, version=-1),  # barrier-queued shape
        StatePush(1, state=_state()),
        StatePush(2, state=_state(worker=2, bn_layers=0)),  # local-BN: no stats
        CompensationMessage(2, reply=reply),
        CompensationMessage(2, reply=None),  # non-LC algorithms reply nothing
        GradientPush(1, payload=_payload()),
        CombinedPush(3, state=_state(worker=3), payload=_payload(worker=3)),
        Shutdown(),
        BnStatsPush(  # running stats are float64 in the model, float32 on the wire
            0,
            stats=tuple(
                (rng.normal(size=6), np.abs(rng.normal(size=6)) + 0.5)
                for rng in [np.random.default_rng(9)]
                for _ in range(2)
            ),
        ),
        BnStatsPush(0, stats=()),  # BN-free model
    ]


def _assert_equal(original, decoded):
    assert type(decoded) is type(original)
    assert decoded.worker == original.worker
    if isinstance(original, PullRequest):
        assert decoded.sent_at == original.sent_at
    if isinstance(original, PullReply):
        assert decoded.version == original.version
        assert decoded.request_sent_at == original.request_sent_at
        if original.weights is None:
            assert decoded.weights is None
        else:  # float32 wire format: exact after the cast
            np.testing.assert_array_equal(
                decoded.weights, original.weights.astype(np.float32)
            )
    if isinstance(original, (StatePush, CombinedPush)):
        a, b = original.state, decoded.state
        assert (b.worker, b.pull_version) == (a.worker, a.pull_version)
        assert b.loss == pytest.approx(a.loss)
        assert (b.t_comm, b.t_comp) == (a.t_comm, a.t_comp)
        assert len(b.bn_stats) == len(a.bn_stats)
        for (m0, v0), (m1, v1) in zip(a.bn_stats, b.bn_stats):
            np.testing.assert_array_equal(m1, m0.astype(np.float32))
            np.testing.assert_array_equal(v1, v0.astype(np.float32))
    if isinstance(original, (GradientPush, CombinedPush)):
        a, b = original.payload, decoded.payload
        assert (b.worker, b.pull_version) == (a.worker, a.pull_version)
        assert b.loss == pytest.approx(a.loss)
        assert b.grad.dtype == np.float64  # GradientPayload restores math dtype
        np.testing.assert_array_equal(b.grad, a.grad.astype(np.float32))
    if isinstance(original, BnStatsPush):
        assert len(decoded.stats) == len(original.stats)
        for (m0, v0), (m1, v1) in zip(original.stats, decoded.stats):
            np.testing.assert_array_equal(m1, np.asarray(m0, dtype=np.float32))
            np.testing.assert_array_equal(v1, np.asarray(v0, dtype=np.float32))


@pytest.mark.parametrize("message", _messages(), ids=lambda m: type(m).__name__)
def test_every_message_type_round_trips(message):
    decoded, delay = decode(encode_message(message, delay=0.125))
    assert delay == 0.125
    _assert_equal(message, decoded)


def test_control_frames_round_trip():
    doc = {"hello": 3, "token": "abc", "nested": {"x": [1, 2]}}
    decoded, delay = decode(encode_control(doc))
    assert decoded == doc and delay == 0.0


def test_decode_rejects_garbage():
    with pytest.raises(WireError):
        decode(b"\x00")  # too short for a header length
    with pytest.raises(WireError):
        decode(b"\x00\x00\x00\xffgarbage")  # header length beyond frame
    with pytest.raises(WireError):
        decode(encode_message(PullRequest(0))[:-1] + b"")  # fine, full...
    # wrong protocol version
    bad = encode_control({"x": 1}).replace(b'"v":1', b'"v":9')
    with pytest.raises(WireError, match="protocol"):
        decode(bad)


def test_decode_rejects_truncated_arrays():
    frame = encode_message(GradientPush(0, payload=_payload(n=8)))
    with pytest.raises(WireError, match="truncated"):
        decode(frame[:-4])


def test_encode_rejects_unknown_message():
    class Rogue:
        pass

    with pytest.raises(WireError, match="no wire codec"):
        encode_message(Rogue())


def test_frame_connection_over_socketpair():
    left, right = socket.socketpair()
    a, b = FrameConnection(left), FrameConnection(right)
    try:
        sent = _messages()
        # writer thread so large frames cannot deadlock the pair's buffers
        writer = threading.Thread(
            target=lambda: [a.send_message(m, delay=0.5) for m in sent]
        )
        writer.start()
        for original in sent:
            decoded, delay = b.recv()
            assert delay == 0.5
            _assert_equal(original, decoded)
        writer.join(timeout=10.0)
    finally:
        a.close()
        b.close()


def test_frame_connection_eof_raises_connection_closed():
    left, right = socket.socketpair()
    a, b = FrameConnection(left), FrameConnection(right)
    a.close()
    with pytest.raises(ConnectionClosed):
        b.read_frame()
    b.close()


def test_frame_length_cap_enforced(monkeypatch):
    left, right = socket.socketpair()
    a, b = FrameConnection(left), FrameConnection(right)
    try:
        monkeypatch.setattr(wire, "MAX_FRAME_BYTES", 16)
        a.send_frame(b"x" * 64)
        with pytest.raises(WireError, match="cap"):
            b.read_frame()
    finally:
        a.close()
        b.close()
