"""ProcBackend: real OS-process workers — completion, parity, crash safety."""

import time

import numpy as np
import pytest

from repro.core import TrainingConfig
from repro.runtime import (
    ExperimentPlan,
    ProcBackend,
    SocketTransport,
    WorkerRuntime,
    run_experiment,
)
from repro.runtime.messages import PullRequest
from repro.runtime.proc_worker import (
    CRASH_AFTER_ENV,
    CRASH_WORKER_ENV,
    EXIT_CRASH_INJECTED,
)

TIMEOUT = 120.0


def run_proc(cfg, **options):
    options.setdefault("timeout", TIMEOUT)
    plan = ExperimentPlan.from_config(cfg)
    result = ProcBackend(**options).run(plan)
    return plan, result


@pytest.mark.parametrize("algorithm", ["asgd", "lc-asgd", "ssgd"])
def test_algorithms_complete_on_real_processes(algorithm):
    cfg = TrainingConfig.tiny(algorithm=algorithm, num_workers=2, epochs=2, seed=3)
    plan, result = run_proc(cfg)
    assert result.backend == "proc"
    assert result.total_updates == cfg.epochs * 8  # 256/32 = 8 iters/epoch
    assert result.wall_time > 0.0
    assert plan.server.batches_processed == result.total_updates


def test_sgd_single_worker_runs_when_bn_synchronized():
    cfg = TrainingConfig.tiny(algorithm="sgd", epochs=1, seed=0, bn_mode="async")
    _, result = run_proc(cfg)
    assert result.num_workers == 1
    assert result.total_updates == 8


def test_local_bn_mode_streams_worker0_stats_at_shutdown():
    """bn_mode="local" used to be rejected on proc; now worker 0 ships its
    BN running statistics back at shutdown and the final evaluation uses
    them — for sequential sgd the final error must match the sim backend
    bit-for-bit (identical math, identical stats, same eval subsets)."""
    from repro.runtime import run_experiment

    cfg = TrainingConfig.tiny(algorithm="sgd", epochs=1, seed=0)
    assert cfg.bn_mode == "local"  # the preset's sgd default
    sim = run_experiment(cfg, backend="sim")
    plan = ExperimentPlan.from_config(cfg, build_workers=False)
    proc = ProcBackend(timeout=TIMEOUT).run(plan)
    assert proc.total_updates == sim.total_updates
    # sequential sgd is deterministic; only float32 wire rounding separates
    # the two, so the final errors agree to within a few test samples
    assert abs(proc.final_test_error - sim.final_test_error) < 0.05
    # the stats genuinely moved: eval_model's running stats left their init
    from repro.nn.norm import bn_layers

    assert any(
        float(np.abs(layer.running_mean).sum()) > 0.0
        for layer in bn_layers(plan.eval_model)
    )


def test_local_bn_mode_allowed_for_bn_free_models():
    # with no BN layers there are no running stats to borrow: local mode
    # runs fine on proc even with a worker-replica-free parent plan
    cfg = TrainingConfig.tiny(
        algorithm="asgd", num_workers=2, epochs=1, bn_mode="local", seed=0,
        model_kwargs={"hidden": (32,), "batch_norm": False},
    )
    plan = ExperimentPlan.from_config(cfg, build_workers=False)
    result = ProcBackend(timeout=TIMEOUT).run(plan)
    assert result.total_updates == 8


def test_proc_plans_skip_parent_replica_builds():
    """run_experiment must not build M unused replicas for proc runs."""
    from repro.runtime.backends import get_backend

    cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=4, seed=0)
    assert get_backend("proc").needs_worker_replicas is False
    plan = ExperimentPlan.from_config(cfg, build_workers=False)
    assert plan.workers == []
    # the server still starts from the seed-identical initialization
    full = ExperimentPlan.from_config(cfg)
    np.testing.assert_array_equal(plan.server.params, full.server.params)


def test_proc_parity_with_sim_and_thread_on_spirals():
    """The paper's claims must not depend on the execution substrate.

    Same spirals scenario, same seed, three backends: the proc run's final
    test error must land within noise of the others (exact equality is
    impossible — real processes race and float32 crosses the wire).
    """
    results = {}
    for backend in ("sim", "thread", "proc"):
        cfg = TrainingConfig.spirals(algorithm="asgd", num_workers=2, seed=1)
        results[backend] = run_experiment(
            cfg, backend=backend, **({} if backend == "sim" else {"timeout": TIMEOUT})
        )
    errors = {b: r.final_test_error for b, r in results.items()}
    assert all(r.total_updates == results["sim"].total_updates for r in results.values())
    assert abs(errors["proc"] - errors["sim"]) < 0.15, errors
    assert abs(errors["proc"] - errors["thread"]) < 0.15, errors


def test_staleness_is_real_and_curve_uses_wall_clock():
    cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=4, epochs=2, seed=0)
    _, result = run_proc(cfg)
    assert result.staleness["mean"] > 0  # four racing processes
    assert all(0.0 <= p.time <= result.wall_time + 1.0 for p in result.curve)
    assert result.total_virtual_time == result.wall_time


def test_crashed_child_fails_the_run_quickly(monkeypatch):
    """A killed worker must surface as a run failure, not a hung repro run."""
    monkeypatch.setenv(CRASH_WORKER_ENV, "1")
    monkeypatch.setenv(CRASH_AFTER_ENV, "1")
    cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=2, max_updates=500, seed=2)
    start = time.perf_counter()
    with pytest.raises(RuntimeError, match="worker child 1"):
        run_proc(cfg, timeout=60.0)
    # detection comes from socket EOF / exit-code polling, not the timeout
    assert time.perf_counter() - start < 50.0


def test_protocol_version_skew_rejected_with_reason(monkeypatch):
    """A parent speaking a different protocol version must fail the run
    fast with both versions named, not hang until the handshake times out:
    the children are real v2 processes, the patched parent expects v1."""
    from repro.runtime import proc_backend

    monkeypatch.setattr(proc_backend, "PROTOCOL_VERSION", 1)
    cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=1, epochs=1, seed=0)
    start = time.perf_counter()
    with pytest.raises(
        RuntimeError, match=r"rejected a peer.*peer speaks v2, we speak v1"
    ):
        run_proc(cfg, timeout=60.0)
    assert time.perf_counter() - start < 50.0  # reject, not timeout


def test_fp16_codec_shrinks_proc_wire_traffic():
    """comm_codec rides the handshake: same run, half-precision wire."""
    results = {}
    for codec in ("raw32", "fp16"):
        cfg = TrainingConfig.tiny(
            algorithm="asgd", num_workers=2, epochs=1, seed=0, comm_codec=codec
        )
        _, result = run_proc(cfg)
        results[codec] = result
        assert result.codec == codec
        assert result.comm["wire_bytes"] > 0
        assert result.comm["logical_bytes"] > 0
    assert results["fp16"].total_updates == results["raw32"].total_updates
    # headers and framing are uncompressed, so short of the ideal 2x —
    # but the bulk payload is halved and it must show
    assert (
        results["fp16"].comm["wire_bytes"] < 0.66 * results["raw32"].comm["wire_bytes"]
    )


def test_topk_codec_completes_on_proc():
    cfg = TrainingConfig.tiny(
        algorithm="lc-asgd", num_workers=2, epochs=1, seed=1, comm_codec="topk"
    )
    _, result = run_proc(cfg)
    assert result.codec == "topk"
    assert result.total_updates == 8
    assert result.comm["wire_bytes"] > 0


def test_worker_runtime_rejects_bad_worker_id():
    cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=2, seed=0)
    with pytest.raises(ValueError, match="out of range"):
        WorkerRuntime.from_config(cfg, 2)


def test_worker_runtime_rebuilds_identical_replicas():
    """The seed is the contract: children re-derive init bit-for-bit."""
    from repro.nn.module import get_flat_params

    cfg = TrainingConfig.tiny(algorithm="lc-asgd", num_workers=3, seed=9)
    plan = ExperimentPlan.from_config(cfg)
    for m in range(cfg.num_workers):
        runtime = WorkerRuntime.from_config(cfg, m)
        np.testing.assert_array_equal(
            get_flat_params(runtime.worker.model), get_flat_params(plan.workers[m].model)
        )
        np.testing.assert_array_equal(
            runtime.worker.loader.next_batch()[0], plan.workers[m].loader.next_batch()[0]
        )
        assert runtime.model_bytes == plan.model_bytes
        assert runtime.state_bytes == plan.state_bytes
        assert runtime.requires_compensation == plan.server.rule.requires_compensation


def test_invalid_backend_options_rejected():
    with pytest.raises(ValueError, match=">= 0"):
        ProcBackend(time_scale=-1.0)
    with pytest.raises(ValueError, match="positive"):
        ProcBackend(timeout=0.0)
    with pytest.raises(ValueError, match="positive"):
        ProcBackend(startup_timeout=0.0)


class TestSocketTransport:
    def test_validates_arguments(self):
        with pytest.raises(ValueError, match=">= 1"):
            SocketTransport(0)
        with pytest.raises(ValueError, match=">= 0"):
            SocketTransport(2, time_scale=-0.1)

    def test_loopback_to_server_delivers(self):
        transport = SocketTransport(2)
        transport.to_server(0, PullRequest(0, sent_at=1.0))
        assert isinstance(transport.server_inbox.get(timeout=1.0), PullRequest)

    def test_to_worker_requires_attachment(self):
        transport = SocketTransport(2)
        with pytest.raises(RuntimeError, match="not attached"):
            transport.to_worker(0, PullRequest(0))

    def test_link_delay_scales_with_network(self):
        plan = ExperimentPlan.from_config(
            TrainingConfig.tiny(algorithm="asgd", num_workers=2, seed=0)
        )
        transport = SocketTransport(2, network=plan.network, time_scale=0.5)
        assert transport._link_delay(0, 10_000) > 0
        assert SocketTransport(2)._link_delay(0, 10_000) == 0.0
