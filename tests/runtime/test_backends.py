"""Backend registry + SimBackend equivalence with the classic trainer."""

import numpy as np
import pytest

from repro.core import DistributedTrainer, TrainingConfig
from repro.core.metrics import RunResult
from repro.runtime import (
    ExecutionBackend,
    ExperimentPlan,
    SimBackend,
    ThreadBackend,
    available_backends,
    get_backend,
    register_backend,
    run_experiment,
)
from repro.runtime.backends import BACKENDS


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert "sim" in available_backends()
        assert "thread" in available_backends()

    def test_get_backend_instances(self):
        assert isinstance(get_backend("sim"), SimBackend)
        backend = get_backend("thread", deterministic=True)
        assert isinstance(backend, ThreadBackend)
        assert backend.deterministic

    def test_unknown_backend_lists_available(self):
        with pytest.raises(ValueError, match="unknown backend 'bogus'.*sim"):
            get_backend("bogus")

    def test_register_custom_backend(self):
        class NullBackend(ExecutionBackend):
            name = "null"

            def run(self, plan):
                return RunResult(
                    algorithm=plan.config.algorithm,
                    num_workers=plan.config.num_workers,
                    bn_mode=plan.config.bn_mode,
                    backend="null",
                )

        register_backend("null", NullBackend)
        try:
            result = run_experiment(TrainingConfig.tiny(max_updates=1), backend="null")
            assert result.backend == "null"
        finally:
            BACKENDS.unregister("null")

    def test_register_rejects_empty_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            register_backend("", SimBackend)

    def test_register_rejects_duplicates_unless_override(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("sim", SimBackend)
        # explicit override is allowed (and restores the same factory here)
        register_backend("sim", SimBackend, override=True)
        assert isinstance(get_backend("sim"), SimBackend)

    def test_abstract_backend_run_raises(self):
        with pytest.raises(NotImplementedError):
            ExecutionBackend().run(None)


class TestSimBackend:
    def test_matches_classic_trainer_exactly(self):
        cfg = TrainingConfig.tiny(algorithm="lc-asgd", num_workers=2, epochs=2, seed=11)
        via_backend = run_experiment(cfg, backend="sim")
        classic = DistributedTrainer(cfg).run()
        assert via_backend.backend == classic.backend == "sim"
        assert via_backend.final_test_error == classic.final_test_error
        assert via_backend.total_virtual_time == classic.total_virtual_time
        assert via_backend.staleness == classic.staleness
        np.testing.assert_array_equal(
            [p.train_loss for p in via_backend.curve],
            [p.train_loss for p in classic.curve],
        )

    def test_consumes_prebuilt_plan(self):
        cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=2, epochs=2, seed=1)
        plan = ExperimentPlan.from_config(cfg)
        result = SimBackend().run(plan)
        assert result.total_updates == plan.total_updates
        assert plan.server.batches_processed == plan.total_updates

    def test_sim_reports_real_wall_time_too(self):
        cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=2, epochs=1, seed=0)
        result = run_experiment(cfg, backend="sim")
        assert result.wall_time > 0.0
        assert result.total_virtual_time > 0.0
