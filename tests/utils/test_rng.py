"""RngTree determinism and independence."""

import numpy as np
import pytest

from repro.utils.rng import RngTree, as_generator


def test_same_seed_same_streams():
    a = RngTree(42).child("worker-1").generator("batches")
    b = RngTree(42).child("worker-1").generator("batches")
    assert np.array_equal(a.random(16), b.random(16))


def test_different_children_independent():
    tree = RngTree(42)
    a = tree.child("worker-1").generator("batches").random(64)
    b = tree.child("worker-2").generator("batches").random(64)
    assert not np.array_equal(a, b)


def test_generator_memoized():
    tree = RngTree(0)
    assert tree.generator("x") is tree.generator("x")


def test_fresh_generator_restarts_stream():
    tree = RngTree(0)
    first = tree.fresh_generator("x").random(8)
    second = tree.fresh_generator("x").random(8)
    assert np.array_equal(first, second)


def test_child_memoized():
    tree = RngTree(0)
    assert tree.child("a") is tree.child("a")


def test_name_order_does_not_matter():
    t1 = RngTree(5)
    t1.child("a")
    va = t1.child("b").generator().random(4)
    t2 = RngTree(5)
    vb = t2.child("b").generator().random(4)
    assert np.array_equal(va, vb)


def test_seed_must_be_int():
    with pytest.raises(TypeError):
        RngTree("not-an-int")  # type: ignore[arg-type]


def test_as_generator_coercions():
    assert isinstance(as_generator(None), np.random.Generator)
    assert isinstance(as_generator(3), np.random.Generator)
    gen = np.random.default_rng(0)
    assert as_generator(gen) is gen
    assert isinstance(as_generator(RngTree(1), "x"), np.random.Generator)
    with pytest.raises(TypeError):
        as_generator(3.5)  # type: ignore[arg-type]


def test_as_generator_int_deterministic():
    assert np.array_equal(as_generator(9).random(4), as_generator(9).random(4))
