"""Validation helper error messages."""

import pytest

from repro.utils.validation import check_in, check_positive, check_probability, check_type


def test_check_positive_strict():
    check_positive("x", 1)
    with pytest.raises(ValueError, match="x must be > 0"):
        check_positive("x", 0)


def test_check_positive_non_strict():
    check_positive("x", 0, strict=False)
    with pytest.raises(ValueError, match="x must be >= 0"):
        check_positive("x", -1, strict=False)


def test_check_probability():
    check_probability("p", 0.0)
    check_probability("p", 1.0)
    with pytest.raises(ValueError):
        check_probability("p", 1.5)
    with pytest.raises(ValueError):
        check_probability("p", -0.1)


def test_check_in():
    check_in("mode", "a", ("a", "b"))
    with pytest.raises(ValueError, match="mode must be one of"):
        check_in("mode", "c", ("a", "b"))


def test_check_type():
    check_type("n", 3, int)
    with pytest.raises(TypeError, match="n must be int"):
        check_type("n", 3.0, int)
