"""Timer accumulation semantics."""

import time

from repro.utils.timer import Timer, WallTimer


def test_wall_timer_measures_elapsed():
    with WallTimer() as t:
        time.sleep(0.01)
    assert t.elapsed >= 0.009


def test_timer_accumulates_sections():
    t = Timer()
    with t.section("a"):
        pass
    with t.section("a"):
        pass
    assert t.count("a") == 2
    assert t.total("a") >= 0.0
    assert t.mean("a") == t.total("a") / 2


def test_timer_unknown_name_zero():
    t = Timer()
    assert t.total("nope") == 0.0
    assert t.count("nope") == 0
    assert t.mean("nope") == 0.0


def test_timer_add_and_names():
    t = Timer()
    t.add("x", 1.0)
    t.add("y", 2.0)
    t.add("x", 3.0)
    assert t.names() == ["x", "y"]
    assert t.total("x") == 4.0
    assert t.mean("x") == 2.0


def test_timer_reset():
    t = Timer()
    t.add("x", 1.0)
    t.reset()
    assert t.names() == []
    assert t.total("x") == 0.0
