"""flatten/unflatten round trips and checkpoint IO."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.serialization import (
    flatten_arrays,
    load_checkpoint,
    save_checkpoint,
    unflatten_arrays,
)


def test_flatten_empty():
    flat, spec = flatten_arrays([])
    assert flat.size == 0 and spec == []
    assert unflatten_arrays(flat, spec) == []


def test_roundtrip_basic(rng):
    arrays = [rng.standard_normal((3, 4)), rng.standard_normal(7), rng.standard_normal((2, 2, 2))]
    flat, spec = flatten_arrays(arrays)
    assert flat.size == 12 + 7 + 8
    back = unflatten_arrays(flat, spec)
    for a, b in zip(arrays, back):
        np.testing.assert_allclose(a, b)


def test_unflatten_size_mismatch(rng):
    flat, spec = flatten_arrays([rng.standard_normal(4)])
    with pytest.raises(ValueError):
        unflatten_arrays(flat[:-1], spec)


def test_dtype_preserved(rng):
    arrays = [rng.standard_normal(5).astype(np.float32)]
    flat, spec = flatten_arrays(arrays)
    assert flat.dtype == np.float64  # transport dtype
    back = unflatten_arrays(flat, spec)
    assert back[0].dtype == np.float32


@st.composite
def array_lists(draw):
    n_arrays = draw(st.integers(1, 5))
    out = []
    for _ in range(n_arrays):
        ndim = draw(st.integers(1, 3))
        shape = tuple(draw(st.integers(1, 5)) for _ in range(ndim))
        seed = draw(st.integers(0, 2**16))
        out.append(np.random.default_rng(seed).standard_normal(shape))
    return out


@given(array_lists())
@settings(max_examples=40, deadline=None)
def test_roundtrip_property(arrays):
    flat, spec = flatten_arrays(arrays)
    back = unflatten_arrays(flat, spec)
    assert len(back) == len(arrays)
    for a, b in zip(arrays, back):
        assert a.shape == b.shape
        np.testing.assert_allclose(a, b)


def test_checkpoint_roundtrip(tmp_path, rng):
    path = str(tmp_path / "ckpt.npz")
    tensors = {"w": rng.standard_normal((4, 3)), "b": rng.standard_normal(3)}
    save_checkpoint(path, tensors, epoch=7, lr=0.1)
    loaded, meta = load_checkpoint(path)
    np.testing.assert_allclose(loaded["w"], tensors["w"])
    np.testing.assert_allclose(loaded["b"], tensors["b"])
    assert meta["epoch"] == 7
    assert meta["lr"] == pytest.approx(0.1)
