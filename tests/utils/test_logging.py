"""Logger namespace wiring."""

import logging

from repro.utils.logging import get_logger, set_log_level


def test_logger_namespaced():
    logger = get_logger("something")
    assert logger.name == "repro.something"


def test_logger_already_namespaced():
    logger = get_logger("repro.core.trainer")
    assert logger.name == "repro.core.trainer"


def test_set_log_level():
    set_log_level("DEBUG")
    assert logging.getLogger("repro").level == logging.DEBUG
    set_log_level("WARNING")
    assert logging.getLogger("repro").level == logging.WARNING
