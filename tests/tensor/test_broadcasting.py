"""Property tests: broadcasting backward is the exact dual of forward."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.tensor import Tensor, _unbroadcast


@st.composite
def broadcastable_pair(draw):
    """Two shapes that NumPy can broadcast together."""
    ndim = draw(st.integers(1, 4))
    base = [draw(st.integers(1, 4)) for _ in range(ndim)]
    a_shape, b_shape = [], []
    for dim in base:
        choice = draw(st.integers(0, 2))
        a_shape.append(dim if choice != 0 else 1)
        b_shape.append(dim if choice != 1 else 1)
    # optionally drop leading dims from one side
    drop = draw(st.integers(0, ndim - 1))
    if draw(st.booleans()):
        a_shape = a_shape[drop:] or [1]
    else:
        b_shape = b_shape[drop:] or [1]
    return tuple(a_shape), tuple(b_shape)


@given(broadcastable_pair(), st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_unbroadcast_matches_sum_of_contributions(shapes, seed):
    """grad wrt a of sum(a+b) must be the count of times each a-entry was used."""
    a_shape, b_shape = shapes
    rng = np.random.default_rng(seed)
    a = Tensor(rng.standard_normal(a_shape), requires_grad=True)
    b = Tensor(rng.standard_normal(b_shape), requires_grad=True)
    out = a + b
    out.backward(np.ones_like(out.data))
    out_shape = np.broadcast_shapes(a_shape, b_shape)
    expected_a = np.prod(out_shape) / np.prod(a_shape)
    expected_b = np.prod(out_shape) / np.prod(b_shape)
    assert a.grad.shape == a_shape
    assert b.grad.shape == b_shape
    np.testing.assert_allclose(a.grad, np.full(a_shape, expected_a))
    np.testing.assert_allclose(b.grad, np.full(b_shape, expected_b))


@given(broadcastable_pair(), st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_mul_broadcast_grad_shapes(shapes, seed):
    a_shape, b_shape = shapes
    rng = np.random.default_rng(seed)
    a = Tensor(rng.standard_normal(a_shape), requires_grad=True)
    b = Tensor(rng.standard_normal(b_shape), requires_grad=True)
    (a * b).sum().backward()
    assert a.grad.shape == a_shape
    assert b.grad.shape == b_shape
    # grad of sum(a*b) wrt a is b summed over the broadcast axes
    expected = _unbroadcast(
        np.broadcast_to(b.data, np.broadcast_shapes(a_shape, b_shape)).astype(float), a_shape
    )
    np.testing.assert_allclose(a.grad, expected, rtol=1e-6)


@given(
    st.lists(st.integers(1, 5), min_size=1, max_size=4).map(tuple),
    st.integers(0, 2**16),
)
@settings(max_examples=40, deadline=None)
def test_unbroadcast_identity_when_same_shape(shape, seed):
    rng = np.random.default_rng(seed)
    g = rng.standard_normal(shape)
    np.testing.assert_array_equal(_unbroadcast(g, shape), g)
