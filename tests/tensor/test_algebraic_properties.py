"""Hypothesis property tests: algebraic identities the engine must satisfy.

These catch silent forward-pass corruption (wrong strides, dtype clobber,
aliasing bugs) that pointwise unit tests can miss.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor
from repro.tensor import functional as F


def arr(seed: int, *shape) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(shape)


shapes = st.tuples(st.integers(1, 4), st.integers(1, 4))
seeds = st.integers(0, 2**16)


@given(shapes, seeds)
@settings(max_examples=40, deadline=None)
def test_add_commutes(shape, seed):
    a, b = arr(seed, *shape), arr(seed + 1, *shape)
    left = (Tensor(a) + Tensor(b)).data
    right = (Tensor(b) + Tensor(a)).data
    np.testing.assert_allclose(left, right)


@given(shapes, seeds)
@settings(max_examples=40, deadline=None)
def test_mul_distributes_over_add(shape, seed):
    a, b, c = arr(seed, *shape), arr(seed + 1, *shape), arr(seed + 2, *shape)
    left = (Tensor(a) * (Tensor(b) + Tensor(c))).data
    right = (Tensor(a) * Tensor(b) + Tensor(a) * Tensor(c)).data
    np.testing.assert_allclose(left, right, rtol=1e-10, atol=1e-12)


@given(shapes, seeds)
@settings(max_examples=40, deadline=None)
def test_sub_is_add_neg(shape, seed):
    a, b = arr(seed, *shape), arr(seed + 1, *shape)
    np.testing.assert_allclose((Tensor(a) - Tensor(b)).data, (Tensor(a) + (-Tensor(b))).data)


@given(shapes, seeds)
@settings(max_examples=40, deadline=None)
def test_double_transpose_identity(shape, seed):
    a = arr(seed, *shape)
    np.testing.assert_array_equal(Tensor(a).transpose().transpose().data, a)


@given(shapes, seeds)
@settings(max_examples=40, deadline=None)
def test_reshape_preserves_sum(shape, seed):
    a = arr(seed, *shape)
    t = Tensor(a)
    assert float(t.reshape(-1).sum().data) == float(t.sum().data)


@given(shapes, seeds)
@settings(max_examples=40, deadline=None)
def test_exp_log_roundtrip(shape, seed):
    a = np.abs(arr(seed, *shape)) + 0.5
    np.testing.assert_allclose(Tensor(a).log().exp().data, a, rtol=1e-5)


@given(shapes, seeds)
@settings(max_examples=40, deadline=None)
def test_relu_plus_negrelu_is_identity(shape, seed):
    a = arr(seed, *shape)
    t = Tensor(a)
    reconstructed = t.relu().data - (-t).relu().data
    np.testing.assert_allclose(reconstructed, a, rtol=1e-6, atol=1e-7)


@given(shapes, seeds)
@settings(max_examples=40, deadline=None)
def test_sigmoid_symmetry(shape, seed):
    a = arr(seed, *shape)
    s_pos = Tensor(a).sigmoid().data
    s_neg = Tensor(-a).sigmoid().data
    np.testing.assert_allclose(s_pos + s_neg, np.ones_like(a), rtol=1e-6)


@given(shapes, seeds)
@settings(max_examples=40, deadline=None)
def test_softmax_shift_invariance(shape, seed):
    a = arr(seed, *shape)
    base = F.softmax(Tensor(a)).data
    shifted = F.softmax(Tensor(a + 100.0)).data
    np.testing.assert_allclose(base, shifted, rtol=1e-5, atol=1e-7)


@given(seeds, st.integers(1, 5), st.integers(1, 5), st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_matmul_matches_numpy(seed, n, k, m):
    a, b = arr(seed, n, k), arr(seed + 1, k, m)
    np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b, rtol=1e-10)


@given(seeds, st.integers(2, 6))
@settings(max_examples=30, deadline=None)
def test_var_matches_numpy(seed, n):
    a = arr(seed, n, 3)
    np.testing.assert_allclose(Tensor(a).var(axis=0).data, a.var(axis=0), rtol=1e-8)


@given(seeds, st.integers(1, 4), st.integers(2, 6))
@settings(max_examples=30, deadline=None)
def test_backward_linear_in_seed(seed, n, m):
    """Scaling the backward seed scales every gradient linearly — the
    property the LC-ASGD compensation coupling relies on."""
    a = Tensor(arr(seed, n, m), requires_grad=True)
    out = (a * a).sum()
    out.backward(np.asarray(1.0))
    g1 = a.grad.copy()
    a.grad = None
    out2 = (a * a).sum()
    out2.backward(np.asarray(2.5))
    np.testing.assert_allclose(a.grad, 2.5 * g1, rtol=1e-6)
