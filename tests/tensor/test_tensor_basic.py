"""Tensor construction, introspection and basic invariants."""

import numpy as np
import pytest

from repro.tensor import Tensor, arange, full, ones, randn, tensor, uniform, zeros


def test_python_list_defaults_float32():
    t = tensor([1.0, 2.0, 3.0])
    assert t.dtype == np.float32


def test_numpy_float64_preserved():
    t = Tensor(np.zeros(3, dtype=np.float64))
    assert t.dtype == np.float64


def test_shape_ndim_size():
    t = zeros(2, 3, 4)
    assert t.shape == (2, 3, 4)
    assert t.ndim == 3
    assert t.size == 24
    assert len(t) == 2


def test_item_scalar():
    assert tensor([3.5]).item() == pytest.approx(3.5)
    with pytest.raises(ValueError):
        tensor([1.0, 2.0]).item()


def test_detach_shares_data():
    t = tensor([1.0, 2.0], requires_grad=True)
    d = t.detach()
    assert not d.requires_grad
    assert d.data is t.data


def test_copy_is_deep():
    t = tensor([1.0, 2.0])
    c = t.copy()
    c.data[0] = 99.0
    assert t.data[0] == 1.0


def test_creation_helpers():
    assert ones(3).data.sum() == 3
    assert full((2, 2), 7.0).data.mean() == 7.0
    assert arange(5).shape == (5,)
    gen = np.random.default_rng(0)
    assert randn(4, rng=gen).shape == (4,)
    u = uniform(100, low=2.0, high=3.0, rng=gen)
    assert (u.data >= 2.0).all() and (u.data < 3.0).all()


def test_creation_with_shape_tuple():
    assert zeros((2, 3)).shape == (2, 3)
    assert ones((4,)).shape == (4,)
    assert randn((2, 2), rng=np.random.default_rng(0)).shape == (2, 2)


def test_zero_grad():
    t = tensor([1.0], requires_grad=True)
    (t * 2.0).sum().backward()
    assert t.grad is not None
    t.zero_grad()
    assert t.grad is None


def test_repr_mentions_requires_grad():
    assert "requires_grad=True" in repr(tensor([1.0], requires_grad=True))
    assert "requires_grad" not in repr(tensor([1.0]))


def test_comparison_ops_detached():
    a = tensor([1.0, 2.0], requires_grad=True)
    mask = a > 1.5
    assert not mask.requires_grad
    assert mask.data.tolist() == [False, True]
    assert (a < 1.5).data.tolist() == [True, False]
    assert (a >= 2.0).data.tolist() == [False, True]
    assert (a <= 1.0).data.tolist() == [True, False]


def test_backward_requires_grad_flag():
    t = tensor([1.0])
    with pytest.raises(RuntimeError):
        t.backward()


def test_backward_seed_broadcast():
    t = tensor([[1.0, 2.0], [3.0, 4.0]], requires_grad=True)
    out = t * 2.0
    out.backward(np.array(1.0))
    np.testing.assert_allclose(t.grad, np.full((2, 2), 2.0))
