"""Central-difference gradient checks for every differentiable op.

These are the ground-truth correctness tests of the autograd engine: any
backward-formula mistake anywhere in the stack fails here first.
"""

import numpy as np
import pytest

from repro.tensor import Tensor, concat, stack
from repro.tensor import functional as F

from tests.conftest import assert_gradcheck, randt


class TestElementwise:
    def test_add_broadcast(self, rng):
        a = randt(rng, 3, 4)
        b = randt(rng, 4)
        assert_gradcheck(lambda: (a + b).sum(), [a, b])

    def test_sub_scalar(self, rng):
        a = randt(rng, 5)
        assert_gradcheck(lambda: (a - 2.5).sum(), [a])
        assert_gradcheck(lambda: (2.5 - a).sum(), [a])

    def test_mul_broadcast(self, rng):
        a = randt(rng, 2, 3)
        b = randt(rng, 3)
        assert_gradcheck(lambda: (a * b).sum(), [a, b])

    def test_div(self, rng):
        a = randt(rng, 4)
        b = Tensor(rng.standard_normal(4) + 3.0, requires_grad=True)
        assert_gradcheck(lambda: (a / b).sum(), [a, b])

    def test_neg(self, rng):
        a = randt(rng, 3)
        assert_gradcheck(lambda: (-a).sum(), [a])

    def test_pow(self, rng):
        a = Tensor(np.abs(rng.standard_normal(5)) + 0.5, requires_grad=True)
        assert_gradcheck(lambda: (a**3).sum(), [a])
        assert_gradcheck(lambda: (a**0.5).sum(), [a])

    def test_exp_log(self, rng):
        a = Tensor(np.abs(rng.standard_normal(4)) + 0.5, requires_grad=True)
        assert_gradcheck(lambda: a.exp().sum(), [a])
        assert_gradcheck(lambda: a.log().sum(), [a])

    def test_sqrt(self, rng):
        a = Tensor(np.abs(rng.standard_normal(4)) + 0.5, requires_grad=True)
        assert_gradcheck(lambda: a.sqrt().sum(), [a])

    def test_tanh_sigmoid(self, rng):
        a = randt(rng, 6)
        assert_gradcheck(lambda: a.tanh().sum(), [a])
        assert_gradcheck(lambda: a.sigmoid().sum(), [a])

    def test_relu_away_from_kink(self, rng):
        data = rng.standard_normal(8)
        data[np.abs(data) < 0.1] = 0.5
        a = Tensor(data, requires_grad=True)
        assert_gradcheck(lambda: a.relu().sum(), [a])

    def test_abs_away_from_kink(self, rng):
        data = rng.standard_normal(8)
        data[np.abs(data) < 0.1] = -0.7
        a = Tensor(data, requires_grad=True)
        assert_gradcheck(lambda: a.abs().sum(), [a])

    def test_clip_interior(self, rng):
        a = Tensor(rng.uniform(-0.4, 0.4, 6), requires_grad=True)
        assert_gradcheck(lambda: a.clip(-0.5, 0.5).sum(), [a])


class TestMatmul:
    def test_mat_mat(self, rng):
        a, b = randt(rng, 3, 4), randt(rng, 4, 5)
        assert_gradcheck(lambda: (a @ b).sum(), [a, b])

    def test_mat_vec(self, rng):
        a, b = randt(rng, 3, 4), randt(rng, 4)
        assert_gradcheck(lambda: (a @ b).sum(), [a, b])

    def test_vec_mat(self, rng):
        a, b = randt(rng, 3), randt(rng, 3, 5)
        assert_gradcheck(lambda: (a @ b).sum(), [a, b])

    def test_vec_vec(self, rng):
        a, b = randt(rng, 4), randt(rng, 4)
        assert_gradcheck(lambda: (a @ b), [a, b])

    def test_batched(self, rng):
        a, b = randt(rng, 2, 3, 4), randt(rng, 2, 4, 5)
        assert_gradcheck(lambda: (a @ b).sum(), [a, b])

    def test_batched_broadcast_rhs(self, rng):
        a, b = randt(rng, 2, 3, 4), randt(rng, 4, 5)
        assert_gradcheck(lambda: (a @ b).sum(), [a, b])

    def test_batched_mat_vec(self, rng):
        a, b = randt(rng, 2, 3, 4), randt(rng, 4)
        assert_gradcheck(lambda: (a @ b).sum(), [a, b])


class TestReductions:
    def test_sum_all(self, rng):
        a = randt(rng, 3, 4)
        assert_gradcheck(lambda: a.sum(), [a])

    def test_sum_axis(self, rng):
        a = randt(rng, 3, 4)
        assert_gradcheck(lambda: (a.sum(axis=0) ** 2).sum(), [a])
        assert_gradcheck(lambda: (a.sum(axis=1, keepdims=True) ** 2).sum(), [a])

    def test_sum_multi_axis(self, rng):
        a = randt(rng, 2, 3, 4)
        assert_gradcheck(lambda: (a.sum(axis=(0, 2)) ** 2).sum(), [a])

    def test_mean(self, rng):
        a = randt(rng, 3, 4)
        assert_gradcheck(lambda: (a.mean(axis=1) ** 2).sum(), [a])
        assert_gradcheck(lambda: a.mean(), [a])

    def test_max_unique(self, rng):
        # ensure unique maxima so the subgradient is unambiguous
        data = rng.permutation(12).astype(np.float64).reshape(3, 4)
        a = Tensor(data, requires_grad=True)
        assert_gradcheck(lambda: (a.max(axis=1) ** 2).sum(), [a])
        assert_gradcheck(lambda: a.max(), [a])

    def test_var(self, rng):
        a = randt(rng, 4, 5)
        assert_gradcheck(lambda: a.var(axis=0).sum(), [a])


class TestShapeOps:
    def test_reshape(self, rng):
        a = randt(rng, 3, 4)
        assert_gradcheck(lambda: (a.reshape(2, 6) ** 2).sum(), [a])
        assert_gradcheck(lambda: (a.reshape((12,)) ** 2).sum(), [a])

    def test_transpose(self, rng):
        a = randt(rng, 3, 4, 2)
        assert_gradcheck(lambda: (a.transpose() ** 2).sum(), [a])
        assert_gradcheck(lambda: (a.transpose(1, 0, 2) ** 2).sum(), [a])

    def test_getitem_slice(self, rng):
        a = randt(rng, 4, 5)
        assert_gradcheck(lambda: (a[1:3, ::2] ** 2).sum(), [a])

    def test_getitem_advanced(self, rng):
        a = randt(rng, 4, 5)
        idx = (np.array([0, 2, 3]), np.array([1, 1, 4]))
        assert_gradcheck(lambda: (a[idx] ** 2).sum(), [a])

    def test_pad2d(self, rng):
        a = randt(rng, 2, 3, 4, 4)
        assert_gradcheck(lambda: (a.pad2d(1) ** 2).sum(), [a])

    def test_concat(self, rng):
        a, b = randt(rng, 2, 3), randt(rng, 2, 2)
        assert_gradcheck(lambda: (concat([a, b], axis=1) ** 2).sum(), [a, b])

    def test_stack(self, rng):
        a, b = randt(rng, 2, 3), randt(rng, 2, 3)
        assert_gradcheck(lambda: (stack([a, b], axis=1) ** 2).sum(), [a, b])


class TestFunctional:
    def test_softmax(self, rng):
        a = randt(rng, 3, 5)
        assert_gradcheck(lambda: (F.softmax(a) ** 2).sum(), [a])

    def test_log_softmax(self, rng):
        a = randt(rng, 3, 5)
        assert_gradcheck(lambda: (F.log_softmax(a) ** 2).sum(), [a])

    def test_cross_entropy_mean(self, rng):
        a = randt(rng, 4, 6)
        y = np.array([0, 5, 2, 3])
        assert_gradcheck(lambda: F.cross_entropy(a, y), [a])

    def test_cross_entropy_sum(self, rng):
        a = randt(rng, 3, 4)
        y = np.array([1, 0, 3])
        assert_gradcheck(lambda: F.cross_entropy(a, y, reduction="sum"), [a])

    def test_nll_loss(self, rng):
        a = randt(rng, 3, 4)
        y = np.array([1, 2, 0])
        assert_gradcheck(lambda: F.nll_loss(F.log_softmax(a), y), [a])

    def test_mse(self, rng):
        a = randt(rng, 4, 3)
        target = rng.standard_normal((4, 3))
        assert_gradcheck(lambda: F.mse_loss(a, target), [a])

    def test_linear(self, rng):
        x, w, b = randt(rng, 4, 3), randt(rng, 5, 3), randt(rng, 5)
        assert_gradcheck(lambda: (F.linear(x, w, b) ** 2).sum(), [x, w, b])

    def test_conv2d(self, rng):
        x, w, b = randt(rng, 2, 3, 6, 6), randt(rng, 4, 3, 3, 3), randt(rng, 4)
        assert_gradcheck(lambda: (F.conv2d(x, w, b, stride=1, padding=1) ** 2).sum(), [x, w, b])

    def test_conv2d_stride2_nopad(self, rng):
        x, w = randt(rng, 2, 2, 7, 7), randt(rng, 3, 2, 3, 3)
        assert_gradcheck(lambda: (F.conv2d(x, w, stride=2, padding=0) ** 2).sum(), [x, w])

    def test_conv2d_1x1(self, rng):
        x, w = randt(rng, 2, 3, 4, 4), randt(rng, 5, 3, 1, 1)
        assert_gradcheck(lambda: (F.conv2d(x, w) ** 2).sum(), [x, w])

    def test_max_pool(self, rng):
        data = rng.permutation(2 * 2 * 6 * 6).astype(np.float64).reshape(2, 2, 6, 6)
        x = Tensor(data, requires_grad=True)
        assert_gradcheck(lambda: (F.max_pool2d(x, 2) ** 2).sum(), [x])

    def test_avg_pool(self, rng):
        x = randt(rng, 2, 3, 6, 6)
        assert_gradcheck(lambda: (F.avg_pool2d(x, 3) ** 2).sum(), [x])

    def test_global_avg_pool(self, rng):
        x = randt(rng, 2, 3, 5, 5)
        assert_gradcheck(lambda: (F.global_avg_pool2d(x) ** 2).sum(), [x])

    def test_batch_norm_train_2d(self, rng):
        x, g, b = randt(rng, 6, 4), randt(rng, 4), randt(rng, 4)
        assert_gradcheck(lambda: (F.batch_norm(x, g, b, training=True)[0] ** 2).sum(), [x, g, b])

    def test_batch_norm_train_4d(self, rng):
        x, g, b = randt(rng, 3, 2, 4, 4), randt(rng, 2), randt(rng, 2)
        assert_gradcheck(lambda: (F.batch_norm(x, g, b, training=True)[0] ** 2).sum(), [x, g, b])

    def test_batch_norm_eval(self, rng):
        x, g, b = randt(rng, 5, 3), randt(rng, 3), randt(rng, 3)
        mean = rng.standard_normal(3)
        var = np.abs(rng.standard_normal(3)) + 0.5
        assert_gradcheck(
            lambda: (
                F.batch_norm(x, g, b, running_mean=mean, running_var=var, training=False)[0] ** 2
            ).sum(),
            [x, g, b],
        )


class TestGraphMechanics:
    def test_gradient_accumulates_over_reuse(self, rng):
        a = randt(rng, 3)
        assert_gradcheck(lambda: (a * a + a).sum(), [a])

    def test_diamond_graph(self, rng):
        a = randt(rng, 4)
        def loss():
            b = a * 2.0
            c = a + 1.0
            return (b * c).sum()
        assert_gradcheck(loss, [a])

    def test_deep_chain(self, rng):
        a = randt(rng, 3)
        def loss():
            x = a
            for _ in range(30):
                x = x * 0.9 + 0.01
            return x.sum()
        assert_gradcheck(loss, [a])
