"""Edge cases and error handling of the functional primitives."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor import functional as F


def test_cross_entropy_validates_shapes(rng):
    logits = Tensor(rng.standard_normal((4, 3)))
    with pytest.raises(ValueError, match="2-D logits"):
        F.cross_entropy(Tensor(rng.standard_normal(4)), np.array([0]))
    with pytest.raises(ValueError, match="batch size"):
        F.cross_entropy(logits, np.array([0, 1]))
    with pytest.raises(ValueError, match="out of range"):
        F.cross_entropy(logits, np.array([0, 1, 2, 3]))
    with pytest.raises(ValueError, match="reduction"):
        F.cross_entropy(logits, np.array([0, 1, 2, 0]), reduction="bogus")


def test_cross_entropy_matches_manual(rng):
    logits = Tensor(rng.standard_normal((8, 5)))
    y = rng.integers(0, 5, 8)
    loss = F.cross_entropy(logits, y)
    probs = np.exp(logits.data) / np.exp(logits.data).sum(1, keepdims=True)
    manual = -np.log(probs[np.arange(8), y]).mean()
    assert float(loss.data) == pytest.approx(manual, rel=1e-6)


def test_cross_entropy_stable_with_huge_logits():
    logits = Tensor(np.array([[1000.0, -1000.0], [-1000.0, 1000.0]]))
    loss = F.cross_entropy(logits, np.array([0, 1]))
    assert np.isfinite(float(loss.data))
    assert float(loss.data) == pytest.approx(0.0, abs=1e-6)


def test_softmax_rows_sum_to_one(rng):
    s = F.softmax(Tensor(rng.standard_normal((6, 9))))
    np.testing.assert_allclose(s.data.sum(axis=-1), np.ones(6), rtol=1e-6)


def test_conv_shape_validation(rng):
    x = Tensor(rng.standard_normal((2, 3, 5, 5)))
    w_bad = Tensor(rng.standard_normal((4, 2, 3, 3)))
    with pytest.raises(ValueError, match="channels"):
        F.conv2d(x, w_bad)
    with pytest.raises(ValueError, match="4-D input"):
        F.conv2d(Tensor(rng.standard_normal((3, 5, 5))), w_bad)
    w = Tensor(rng.standard_normal((4, 3, 3, 3)))
    with pytest.raises(ValueError, match="padding"):
        F.conv2d(x, w, padding=-1)
    big = Tensor(rng.standard_normal((4, 3, 9, 9)))
    with pytest.raises(ValueError, match="kernel larger"):
        F.conv2d(x, big)


def test_conv_output_shape(rng):
    x = Tensor(rng.standard_normal((2, 3, 8, 8)))
    w = Tensor(rng.standard_normal((5, 3, 3, 3)))
    assert F.conv2d(x, w, stride=1, padding=1).shape == (2, 5, 8, 8)
    assert F.conv2d(x, w, stride=2, padding=1).shape == (2, 5, 4, 4)
    assert F.conv2d(x, w, stride=1, padding=0).shape == (2, 5, 6, 6)


def test_conv_matches_naive_reference(rng):
    """im2col conv must equal the direct quadruple-loop definition."""
    x = rng.standard_normal((2, 2, 5, 5))
    w = rng.standard_normal((3, 2, 3, 3))
    out = F.conv2d(Tensor(x), Tensor(w), stride=2, padding=1).data
    xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
    expected = np.zeros_like(out)
    for n in range(2):
        for f in range(3):
            for i in range(out.shape[2]):
                for j in range(out.shape[3]):
                    patch = xp[n, :, i * 2 : i * 2 + 3, j * 2 : j * 2 + 3]
                    expected[n, f, i, j] = (patch * w[f]).sum()
    np.testing.assert_allclose(out, expected, rtol=1e-6)


def test_max_pool_matches_naive(rng):
    x = rng.standard_normal((1, 2, 6, 6))
    out = F.max_pool2d(Tensor(x), 2).data
    expected = x.reshape(1, 2, 3, 2, 3, 2).max(axis=(3, 5))
    np.testing.assert_allclose(out, expected)


def test_avg_pool_matches_naive(rng):
    x = rng.standard_normal((1, 2, 6, 6))
    out = F.avg_pool2d(Tensor(x), 3).data
    expected = x.reshape(1, 2, 2, 3, 2, 3).mean(axis=(3, 5))
    np.testing.assert_allclose(out, expected, rtol=1e-6)


def test_batch_norm_normalizes(rng):
    x = Tensor(rng.standard_normal((64, 5)) * 3.0 + 2.0)
    g = Tensor(np.ones(5)); b = Tensor(np.zeros(5))
    out, mean, var = F.batch_norm(x, g, b, training=True)
    np.testing.assert_allclose(out.data.mean(axis=0), np.zeros(5), atol=1e-6)
    np.testing.assert_allclose(out.data.std(axis=0), np.ones(5), atol=1e-2)
    np.testing.assert_allclose(mean, x.data.mean(axis=0), rtol=1e-6)


def test_batch_norm_eval_requires_stats(rng):
    x = Tensor(rng.standard_normal((4, 3)))
    g = Tensor(np.ones(3)); b = Tensor(np.zeros(3))
    with pytest.raises(ValueError, match="running statistics"):
        F.batch_norm(x, g, b, training=False)


def test_batch_norm_rejects_3d(rng):
    x = Tensor(rng.standard_normal((4, 3, 2)))
    g = Tensor(np.ones(3)); b = Tensor(np.zeros(3))
    with pytest.raises(ValueError, match="2-D or 4-D"):
        F.batch_norm(x, g, b)


def test_dropout_train_and_eval(rng):
    x = Tensor(np.ones((1000,)), requires_grad=True)
    gen = np.random.default_rng(0)
    out = F.dropout(x, 0.5, training=True, rng=gen)
    kept = (out.data != 0).mean()
    assert 0.4 < kept < 0.6
    # inverted scaling keeps the expectation
    assert out.data.mean() == pytest.approx(1.0, abs=0.1)
    assert F.dropout(x, 0.5, training=False) is x
    assert F.dropout(x, 0.0, training=True) is x
    with pytest.raises(ValueError):
        F.dropout(x, 1.0)


def test_no_grad_disables_graph(rng):
    x = Tensor(rng.standard_normal((3, 3)), requires_grad=True)
    with no_grad():
        assert not is_grad_enabled()
        y = (x * 2.0).sum()
    assert not y.requires_grad
    assert is_grad_enabled()


def test_no_grad_restores_on_exception():
    try:
        with no_grad():
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert is_grad_enabled()
