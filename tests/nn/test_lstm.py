"""LSTM cell and stacked-LSTM behaviour plus gradient checks."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor

from tests.conftest import assert_gradcheck


def _f64(module):
    for p in module.parameters():
        p.data = p.data.astype(np.float64)
    return module


def test_cell_shapes(rng):
    cell = nn.LSTMCell(3, 5, rng=rng)
    h, c = cell.initial_state(4)
    h2, c2 = cell(Tensor(rng.standard_normal((4, 3)).astype(np.float32)), (h, c))
    assert h2.shape == (4, 5)
    assert c2.shape == (4, 5)


def test_cell_forget_bias_initialized():
    cell = nn.LSTMCell(2, 3, rng=np.random.default_rng(0))
    assert (cell.bias.data[3:6] == 1.0).all()
    assert (cell.bias.data[:3] == 0.0).all()


def test_cell_validation():
    with pytest.raises(ValueError):
        nn.LSTMCell(0, 3)


def test_lstm_output_shapes(rng):
    lstm = nn.LSTM(3, 6, num_layers=2, rng=rng)
    x = Tensor(rng.standard_normal((4, 7, 3)).astype(np.float32))
    out, states = lstm(x)
    assert out.shape == (4, 7, 6)
    assert len(states) == 2
    for h, c in states:
        assert h.shape == (4, 6)


def test_lstm_state_threading(rng):
    """Feeding a sequence in two halves with carried state == one pass."""
    lstm = nn.LSTM(2, 4, num_layers=1, rng=rng)
    x = Tensor(rng.standard_normal((1, 6, 2)).astype(np.float32))
    full, _ = lstm(x)
    first, state = lstm(x[:, :3, :])
    second, _ = lstm(x[:, 3:, :], state)
    np.testing.assert_allclose(second.data, full.data[:, 3:, :], rtol=1e-5, atol=1e-6)


def test_lstm_validation(rng):
    with pytest.raises(ValueError):
        nn.LSTM(2, 3, num_layers=0)
    lstm = nn.LSTM(2, 3, rng=rng)
    with pytest.raises(ValueError, match=r"\(N, T, D\)"):
        lstm(Tensor(rng.standard_normal((4, 2)).astype(np.float32)))
    with pytest.raises(ValueError, match="state has"):
        lstm(Tensor(rng.standard_normal((1, 2, 2)).astype(np.float32)), state=[])


def test_lstm_gradcheck_small(rng):
    lstm = _f64(nn.LSTM(2, 3, num_layers=2, rng=rng))
    x = Tensor(rng.standard_normal((2, 4, 2)), requires_grad=True)
    params = [x] + list(lstm.parameters())
    assert_gradcheck(lambda: (lstm(x)[0] ** 2).sum(), params, atol=1e-5, rtol=1e-3)


def test_lstm_learns_sign_task(rng):
    """Sanity: a small LSTM fits 'predict sign of the running sum'."""
    from repro.optim import SGD
    from repro.tensor import functional as F

    gen = np.random.default_rng(0)
    lstm = nn.LSTM(1, 8, rng=gen)
    head = nn.Linear(8, 2, rng=gen)
    params = lstm.parameters() + head.parameters()
    opt = SGD(params, lr=0.1, momentum=0.9)
    xs = gen.standard_normal((64, 5, 1)).astype(np.float32)
    ys = (xs.sum(axis=(1, 2)) > 0).astype(np.int64)
    losses = []
    for _ in range(60):
        out, _ = lstm(Tensor(xs))
        logits = head(out[:, -1, :])
        loss = F.cross_entropy(logits, ys)
        opt.zero_grad()
        loss.backward()
        opt.step()
        losses.append(float(loss.data))
    assert losses[-1] < losses[0] * 0.5
