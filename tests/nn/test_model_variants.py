"""Build-and-forward smoke tests across the whole architecture zoo."""

import numpy as np
import pytest

from repro import nn
from repro.core.config import TrainingConfig
from repro.core.trainer import build_model
from repro.tensor import Tensor
from repro.tensor import functional as F


@pytest.mark.parametrize(
    "name,kwargs,input_side",
    [
        ("mlp", {"hidden": (16, 8), "batch_norm": True}, 6),
        ("mlp", {"hidden": (16,), "batch_norm": False}, 6),
        ("resnet_tiny", {"base_width": 4}, 8),
        ("resnet18", {"base_width": 4}, 8),
        ("resnet50", {"base_width": 4}, 16),
    ],
)
def test_every_model_variant_trains_one_step(name, kwargs, input_side):
    cfg = TrainingConfig.tiny().with_overrides(model=name, model_kwargs=kwargs)
    model = build_model(cfg, (3, input_side, input_side), 5)
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((4, 3, input_side, input_side)).astype(np.float32))
    y = rng.integers(0, 5, 4)
    loss = F.cross_entropy(model(x), y)
    loss.backward()
    grads = [p.grad for p in model.parameters()]
    assert all(g is not None for g in grads)
    assert any(np.abs(g).max() > 0 for g in grads)


def test_identical_seeds_identical_models():
    cfg = TrainingConfig.tiny()
    a = build_model(cfg, (3, 6, 6), 4)
    b = build_model(cfg, (3, 6, 6), 4)
    from repro.nn import get_flat_params

    np.testing.assert_array_equal(get_flat_params(a), get_flat_params(b))


def test_different_seed_different_models():
    cfg = TrainingConfig.tiny()
    a = build_model(cfg, (3, 6, 6), 4)
    b = build_model(cfg.with_overrides(seed=99), (3, 6, 6), 4)
    from repro.nn import get_flat_params

    assert not np.array_equal(get_flat_params(a), get_flat_params(b))


def test_repr_renders_tree():
    model = nn.MLP((4, 3, 2), batch_norm=True, rng=np.random.default_rng(0))
    text = repr(model)
    assert "MLP" in text
    assert "Linear" in text
    assert "BatchNorm1d" in text
