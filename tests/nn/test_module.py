"""Module registration, traversal, state dicts, flat-parameter exchange."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn.module import get_flat_grads, get_flat_params, set_flat_params
from repro.tensor import Tensor
from repro.tensor import functional as F


def make_model(rng):
    return nn.MLP((6, 5, 4), batch_norm=True, rng=rng)


def test_named_parameters_deterministic(rng):
    m1 = make_model(np.random.default_rng(0))
    m2 = make_model(np.random.default_rng(0))
    names1 = [n for n, _ in m1.named_parameters()]
    names2 = [n for n, _ in m2.named_parameters()]
    assert names1 == names2
    assert len(names1) == len(set(names1))


def test_parameter_registration(rng):
    lin = nn.Linear(3, 2, rng=rng)
    names = dict(lin.named_parameters())
    assert set(names) == {"weight", "bias"}


def test_buffers_traversal(rng):
    model = make_model(rng)
    buffer_names = [n for n, _ in model.named_buffers()]
    assert any("running_mean" in n for n in buffer_names)
    assert any("running_var" in n for n in buffer_names)


def test_train_eval_propagates(rng):
    model = make_model(rng)
    model.eval()
    assert all(not m.training for m in model.modules())
    model.train()
    assert all(m.training for m in model.modules())


def test_zero_grad(rng):
    model = make_model(rng)
    x = Tensor(rng.standard_normal((4, 6)).astype(np.float32))
    F.cross_entropy(model(x), np.array([0, 1, 2, 3])).backward()
    assert any(p.grad is not None for p in model.parameters())
    model.zero_grad()
    assert all(p.grad is None for p in model.parameters())


def test_state_dict_roundtrip(rng):
    m1 = make_model(np.random.default_rng(1))
    m2 = make_model(np.random.default_rng(2))
    state = m1.state_dict()
    m2.load_state_dict(state)
    for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
        assert n1 == n2
        np.testing.assert_allclose(p1.data, p2.data)
    for (n1, b1), (n2, b2) in zip(m1.named_buffers(), m2.named_buffers()):
        np.testing.assert_allclose(b1, b2)


def test_load_state_dict_rejects_unknown(rng):
    model = make_model(rng)
    with pytest.raises(KeyError):
        model.load_state_dict({"nonexistent": np.zeros(3)})
    with pytest.raises(KeyError):
        model.load_state_dict({"buffer:nonexistent": np.zeros(3)})


def test_load_state_dict_rejects_bad_shape(rng):
    model = make_model(rng)
    state = model.state_dict()
    key = next(k for k in state if not k.startswith("buffer:"))
    state[key] = np.zeros((99, 99))
    with pytest.raises(ValueError, match="shape mismatch"):
        model.load_state_dict(state)


def test_num_parameters(rng):
    lin = nn.Linear(3, 2, rng=rng)
    assert lin.num_parameters() == 3 * 2 + 2


def test_flat_params_roundtrip(rng):
    m1 = make_model(np.random.default_rng(1))
    m2 = make_model(np.random.default_rng(2))
    flat = get_flat_params(m1)
    assert flat.dtype == np.float64
    assert flat.size == m1.num_parameters()
    set_flat_params(m2, flat)
    np.testing.assert_allclose(get_flat_params(m2), flat, rtol=1e-6)


def test_set_flat_params_size_validation(rng):
    model = make_model(rng)
    flat = get_flat_params(model)
    with pytest.raises(ValueError):
        set_flat_params(model, flat[:-1])
    with pytest.raises(ValueError):
        set_flat_params(model, np.concatenate([flat, [0.0]]))


def test_flat_grads_zero_when_missing(rng):
    model = make_model(rng)
    grads = get_flat_grads(model)
    assert grads.shape == get_flat_params(model).shape
    np.testing.assert_array_equal(grads, 0.0)


def test_flat_grads_after_backward(rng):
    model = make_model(rng)
    x = Tensor(rng.standard_normal((8, 6)).astype(np.float32))
    F.cross_entropy(model(x), rng.integers(0, 4, 8)).backward()
    grads = get_flat_grads(model)
    assert np.abs(grads).max() > 0


@given(st.integers(0, 2**16))
@settings(max_examples=20, deadline=None)
def test_flat_roundtrip_property(seed):
    """set_flat_params(get_flat_params(m)) is the identity for any init."""
    rng = np.random.default_rng(seed)
    model = nn.MLP((4, 3, 2), batch_norm=False, rng=rng)
    flat = get_flat_params(model)
    perturbed = flat + np.random.default_rng(seed + 1).standard_normal(flat.size)
    set_flat_params(model, perturbed)
    np.testing.assert_allclose(get_flat_params(model), perturbed, rtol=1e-6, atol=1e-6)
