"""Layer-level behaviour: Linear, Conv2d, activations, pooling, containers."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor

from tests.conftest import assert_gradcheck


def test_linear_shapes(rng):
    lin = nn.Linear(5, 3, rng=rng)
    out = lin(Tensor(rng.standard_normal((7, 5)).astype(np.float32)))
    assert out.shape == (7, 3)


def test_linear_no_bias(rng):
    lin = nn.Linear(5, 3, bias=False, rng=rng)
    assert lin.bias is None
    assert len(lin.parameters()) == 1


def test_linear_validation():
    with pytest.raises(ValueError):
        nn.Linear(0, 3)


def test_linear_gradcheck(rng):
    lin = nn.Linear(4, 3, rng=rng)
    lin.weight.data = lin.weight.data.astype(np.float64)
    lin.bias.data = lin.bias.data.astype(np.float64)
    x = Tensor(rng.standard_normal((2, 4)), requires_grad=True)
    assert_gradcheck(lambda: (lin(x) ** 2).sum(), [x, lin.weight, lin.bias])


def test_conv_layer_shapes(rng):
    conv = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
    out = conv(Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32)))
    assert out.shape == (2, 8, 4, 4)


def test_conv_layer_validation():
    with pytest.raises(ValueError):
        nn.Conv2d(0, 3, 3)
    with pytest.raises(ValueError):
        nn.Conv2d(3, 3, 3, stride=0)


def test_conv_no_bias(rng):
    conv = nn.Conv2d(3, 4, 3, bias=False, rng=rng)
    assert conv.bias is None


def test_activations_forward(rng):
    x = Tensor(np.array([-2.0, -0.5, 0.5, 2.0], dtype=np.float32))
    assert (nn.ReLU()(x).data == np.array([0, 0, 0.5, 2.0], dtype=np.float32)).all()
    np.testing.assert_allclose(nn.Sigmoid()(x).data, 1 / (1 + np.exp(-x.data)), rtol=1e-6)
    np.testing.assert_allclose(nn.Tanh()(x).data, np.tanh(x.data), rtol=1e-6)
    leaky = nn.LeakyReLU(0.1)(x).data
    np.testing.assert_allclose(leaky, np.where(x.data > 0, x.data, 0.1 * x.data), rtol=1e-6)
    gelu = nn.GELU()(x).data
    assert gelu[3] == pytest.approx(1.954, abs=1e-2)  # gelu(2) ~ 1.954
    assert gelu[0] == pytest.approx(-0.0454, abs=1e-2)  # gelu(-2) ~ -0.045


def test_pooling_layers(rng):
    x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
    assert nn.MaxPool2d(2)(x).shape == (2, 3, 4, 4)
    assert nn.AvgPool2d(2)(x).shape == (2, 3, 4, 4)
    assert nn.GlobalAvgPool2d()(x).shape == (2, 3)


def test_sequential(rng):
    seq = nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng))
    assert len(seq) == 3
    out = seq(Tensor(rng.standard_normal((3, 4)).astype(np.float32)))
    assert out.shape == (3, 2)
    assert isinstance(seq[0], nn.Linear)
    assert isinstance(seq[-1], nn.Linear)
    with pytest.raises(IndexError):
        seq[3]
    assert len(list(iter(seq))) == 3


def test_module_list(rng):
    ml = nn.ModuleList([nn.Linear(2, 2, rng=rng)])
    ml.append(nn.Linear(2, 2, rng=rng))
    assert len(ml) == 2
    assert len(list(ml)) == 2
    assert len(list(ml[0].parameters())) == 2
    with pytest.raises(IndexError):
        ml[5]


def test_loss_modules(rng):
    ce = nn.CrossEntropyLoss()
    logits = Tensor(rng.standard_normal((4, 3)).astype(np.float32))
    loss = ce(logits, np.array([0, 1, 2, 0]))
    assert loss.shape == ()
    mse = nn.MSELoss()
    pred = Tensor(rng.standard_normal(5).astype(np.float32))
    assert mse(pred, np.zeros(5)).shape == ()
    with pytest.raises(ValueError):
        nn.CrossEntropyLoss(reduction="bogus")
    with pytest.raises(ValueError):
        nn.MSELoss(reduction="bogus")


def test_initializers_statistics():
    from repro.nn import init

    gen = np.random.default_rng(0)
    w = init.he_normal((512, 256), gen)
    assert w.std() == pytest.approx(np.sqrt(2.0 / 256), rel=0.1)
    w = init.xavier_uniform((512, 256), gen)
    bound = np.sqrt(6.0 / (512 + 256))
    assert np.abs(w).max() <= bound + 1e-6
    w = init.lecun_uniform((100, 64), gen)
    assert np.abs(w).max() <= 1 / np.sqrt(64) + 1e-6
    with pytest.raises(ValueError):
        init.get_initializer("bogus")
    with pytest.raises(ValueError):
        init._fans((2, 3, 4))


def test_conv_fans():
    from repro.nn.init import _fans

    fan_in, fan_out = _fans((8, 4, 3, 3))
    assert fan_in == 4 * 9
    assert fan_out == 8 * 9
