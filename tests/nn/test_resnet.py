"""ResNet family: topology, shapes, trainability."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor
from repro.tensor import functional as F


def test_tiny_forward_shape(rng):
    net = nn.resnet_tiny(num_classes=10, base_width=4, rng=rng)
    out = net(Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32)))
    assert out.shape == (2, 10)


def test_resnet18_block_count(rng):
    net = nn.resnet18(base_width=4, rng=rng)
    blocks = [m for m in net.modules() if isinstance(m, nn.BasicBlock)]
    assert len(blocks) == 8  # (2, 2, 2, 2)


def test_resnet50_bottleneck_count(rng):
    net = nn.resnet50(base_width=4, rng=rng)
    blocks = [m for m in net.modules() if isinstance(m, nn.Bottleneck)]
    assert len(blocks) == 16  # (3, 4, 6, 3)


def test_resnet50_forward(rng):
    net = nn.resnet50(num_classes=5, base_width=4, rng=rng)
    out = net(Tensor(rng.standard_normal((1, 3, 16, 16)).astype(np.float32)))
    assert out.shape == (1, 5)


def test_projection_shortcuts_on_stride(rng):
    net = nn.resnet_tiny(base_width=4, rng=rng)
    blocks = [m for m in net.modules() if isinstance(m, nn.BasicBlock)]
    # first stage keeps resolution (identity shortcut), later stages project
    assert blocks[0].shortcut is None
    assert blocks[1].shortcut is not None
    assert blocks[2].shortcut is not None


def test_custom_in_channels(rng):
    net = nn.resnet_tiny(in_channels=1, base_width=4, rng=rng)
    out = net(Tensor(rng.standard_normal((2, 1, 8, 8)).astype(np.float32)))
    assert out.shape == (2, 10)


def test_invalid_layers():
    with pytest.raises(ValueError):
        nn.ResNet(nn.BasicBlock, [], rng=np.random.default_rng(0))
    with pytest.raises(ValueError):
        nn.ResNet(nn.BasicBlock, [0], rng=np.random.default_rng(0))


def test_resnet_trains_on_tiny_task(rng):
    """A few steps of SGD must reduce the loss of resnet_tiny."""
    from repro.optim import SGD

    gen = np.random.default_rng(0)
    net = nn.resnet_tiny(num_classes=3, base_width=4, rng=gen)
    x = gen.standard_normal((24, 3, 8, 8)).astype(np.float32)
    y = gen.integers(0, 3, 24)
    opt = SGD(net.parameters(), lr=0.05, momentum=0.9)
    losses = []
    for _ in range(12):
        loss = F.cross_entropy(net(Tensor(x)), y)
        opt.zero_grad()
        loss.backward()
        opt.step()
        losses.append(float(loss.data))
    assert losses[-1] < losses[0] * 0.7


def test_eval_mode_uses_running_stats(rng):
    net = nn.resnet_tiny(base_width=4, rng=rng)
    x = Tensor(rng.standard_normal((4, 3, 8, 8)).astype(np.float32))
    net(x)  # one training pass to populate stats
    net.eval()
    out1 = net(x)
    out2 = net(x)
    np.testing.assert_allclose(out1.data, out2.data)  # deterministic in eval


def test_mlp_shapes_and_validation(rng):
    mlp = nn.MLP((12, 8, 4), batch_norm=True, rng=rng)
    out = mlp(Tensor(rng.standard_normal((5, 12)).astype(np.float32)))
    assert out.shape == (5, 4)
    # 4-D input is flattened
    out = mlp(Tensor(rng.standard_normal((5, 3, 2, 2)).astype(np.float32)))
    assert out.shape == (5, 4)
    with pytest.raises(ValueError):
        nn.MLP((5,))
    with pytest.raises(ValueError):
        nn.MLP((5, 0, 2))
