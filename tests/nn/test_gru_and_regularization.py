"""GRU, Dropout and LayerNorm layers."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor

from tests.conftest import assert_gradcheck


def _f64(module):
    for p in module.parameters():
        p.data = p.data.astype(np.float64)
    return module


class TestGRU:
    def test_cell_shapes(self, rng):
        cell = nn.GRUCell(3, 5, rng=rng)
        h = cell.initial_state(4)
        h2 = cell(Tensor(rng.standard_normal((4, 3)).astype(np.float32)), h)
        assert h2.shape == (4, 5)

    def test_cell_validation(self):
        with pytest.raises(ValueError):
            nn.GRUCell(0, 5)

    def test_stack_shapes(self, rng):
        gru = nn.GRU(3, 6, num_layers=2, rng=rng)
        out, states = gru(Tensor(rng.standard_normal((4, 7, 3)).astype(np.float32)))
        assert out.shape == (4, 7, 6)
        assert len(states) == 2
        assert states[0].shape == (4, 6)

    def test_state_threading(self, rng):
        gru = nn.GRU(2, 4, rng=rng)
        x = Tensor(rng.standard_normal((1, 6, 2)).astype(np.float32))
        full, _ = gru(x)
        first, state = gru(x[:, :3, :])
        second, _ = gru(x[:, 3:, :], state)
        np.testing.assert_allclose(second.data, full.data[:, 3:, :], rtol=1e-5, atol=1e-6)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            nn.GRU(2, 3, num_layers=0)
        gru = nn.GRU(2, 3, rng=rng)
        with pytest.raises(ValueError, match=r"\(N, T, D\)"):
            gru(Tensor(rng.standard_normal((4, 2)).astype(np.float32)))
        with pytest.raises(ValueError, match="state has"):
            gru(Tensor(rng.standard_normal((1, 2, 2)).astype(np.float32)), state=[])

    def test_gradcheck(self, rng):
        gru = _f64(nn.GRU(2, 3, num_layers=1, rng=rng))
        x = Tensor(rng.standard_normal((2, 3, 2)), requires_grad=True)
        params = [x] + list(gru.parameters())
        assert_gradcheck(lambda: (gru(x)[0] ** 2).sum(), params, atol=1e-5, rtol=1e-3)

    def test_fewer_parameters_than_lstm(self, rng):
        gru = nn.GRU(4, 16, rng=np.random.default_rng(0))
        lstm = nn.LSTM(4, 16, rng=np.random.default_rng(0))
        assert gru.num_parameters() < lstm.num_parameters()


class TestDropout:
    def test_identity_in_eval(self, rng):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        layer.eval()
        x = Tensor(rng.standard_normal(100).astype(np.float32))
        np.testing.assert_array_equal(layer(x).data, x.data)

    def test_drops_in_train(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones(2000, dtype=np.float32))
        out = layer(x)
        assert 0.35 < (out.data == 0).mean() < 0.65

    def test_validation(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestLayerNorm:
    def test_normalizes_last_axis(self, rng):
        layer = nn.LayerNorm(8)
        x = Tensor((rng.standard_normal((4, 8)) * 5 + 3).astype(np.float32))
        out = layer(x)
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_works_on_3d(self, rng):
        layer = nn.LayerNorm(4)
        out = layer(Tensor(rng.standard_normal((2, 3, 4)).astype(np.float32)))
        assert out.shape == (2, 3, 4)

    def test_shape_validation(self, rng):
        layer = nn.LayerNorm(4)
        with pytest.raises(ValueError, match="trailing dim"):
            layer(Tensor(rng.standard_normal((2, 5)).astype(np.float32)))
        with pytest.raises(ValueError):
            nn.LayerNorm(0)

    def test_gradcheck(self, rng):
        layer = _f64(nn.LayerNorm(5))
        x = Tensor(rng.standard_normal((3, 5)), requires_grad=True)
        assert_gradcheck(
            lambda: (layer(x) ** 2).sum(), [x, layer.gamma, layer.beta], atol=1e-5, rtol=1e-3
        )

    def test_no_cross_sample_coupling(self, rng):
        """Unlike BatchNorm, each row is normalized independently."""
        layer = nn.LayerNorm(6)
        a = rng.standard_normal((1, 6)).astype(np.float32)
        b = rng.standard_normal((1, 6)).astype(np.float32)
        together = layer(Tensor(np.concatenate([a, b]))).data
        alone = layer(Tensor(a)).data
        np.testing.assert_allclose(together[0], alone[0], rtol=1e-6)
