"""BatchNorm layers: statistics tracking, Async-BN hooks, eval behaviour."""

import numpy as np
import pytest

from repro import nn
from repro.nn.norm import bn_layers, collect_bn_stats, count_bn_layers, load_bn_running_stats, set_bn_external
from repro.tensor import Tensor, no_grad


def test_bn1d_normalizes_training(rng):
    bn = nn.BatchNorm1d(4)
    x = Tensor((rng.standard_normal((64, 4)) * 5 + 3).astype(np.float32))
    out = bn(x)
    np.testing.assert_allclose(out.data.mean(axis=0), 0.0, atol=1e-5)
    np.testing.assert_allclose(out.data.std(axis=0), 1.0, atol=1e-2)


def test_bn_records_batch_stats(rng):
    bn = nn.BatchNorm1d(3)
    x = Tensor(rng.standard_normal((32, 3)).astype(np.float32))
    bn(x)
    np.testing.assert_allclose(bn.last_batch_mean, x.data.mean(axis=0), atol=1e-6)
    np.testing.assert_allclose(bn.last_batch_var, x.data.var(axis=0), atol=1e-6)


def test_bn_running_stats_ema(rng):
    bn = nn.BatchNorm1d(2, momentum=0.5)
    x = Tensor((rng.standard_normal((128, 2)) + 10.0).astype(np.float32))
    bn(x)
    # after one batch: running = 0.5*0 + 0.5*batch_mean
    np.testing.assert_allclose(bn.running_mean, 0.5 * x.data.mean(axis=0), rtol=1e-4)


def test_bn_external_stats_freezes_ema(rng):
    bn = nn.BatchNorm1d(2)
    bn.external_stats = True
    before = bn.running_mean.copy()
    bn(Tensor((rng.standard_normal((32, 2)) + 5).astype(np.float32)))
    np.testing.assert_array_equal(bn.running_mean, before)
    assert bn.last_batch_mean is not None  # stats still recorded for the server


def test_bn_eval_uses_running_stats(rng):
    bn = nn.BatchNorm1d(2)
    bn.set_buffer("running_mean", np.array([1.0, -1.0]))
    bn.set_buffer("running_var", np.array([4.0, 9.0]))
    bn.eval()
    x = Tensor(np.array([[1.0, -1.0], [3.0, 2.0]], dtype=np.float32))
    out = bn(x)
    np.testing.assert_allclose(out.data[0], [0.0, 0.0], atol=1e-5)
    np.testing.assert_allclose(out.data[1], [1.0, 1.0], atol=1e-3)


def test_bn2d_shape_validation(rng):
    bn = nn.BatchNorm2d(3)
    with pytest.raises(ValueError, match="4-D"):
        bn(Tensor(rng.standard_normal((4, 3)).astype(np.float32)))


def test_bn_validation():
    with pytest.raises(ValueError):
        nn.BatchNorm1d(0)
    with pytest.raises(ValueError):
        nn.BatchNorm1d(3, momentum=0.0)


def test_collect_and_load_bn_stats(rng):
    model = nn.MLP((6, 5, 4, 3), batch_norm=True, rng=rng)
    assert count_bn_layers(model) == 2
    model(Tensor(rng.standard_normal((16, 6)).astype(np.float32)))
    stats = collect_bn_stats(model)
    assert len(stats) == 2
    # load scaled stats back and verify buffers updated
    new_stats = [(m + 1.0, v + 1.0) for m, v in stats]
    load_bn_running_stats(model, new_stats)
    for layer, (m, v) in zip(bn_layers(model), new_stats):
        np.testing.assert_allclose(layer.running_mean, m)
        np.testing.assert_allclose(layer.running_var, v)


def test_collect_before_any_batch_uses_running(rng):
    model = nn.MLP((4, 3, 2), batch_norm=True, rng=rng)
    stats = collect_bn_stats(model)
    np.testing.assert_array_equal(stats[0][0], np.zeros(3))
    np.testing.assert_array_equal(stats[0][1], np.ones(3))


def test_load_bn_stats_validation(rng):
    model = nn.MLP((4, 3, 2), batch_norm=True, rng=rng)
    with pytest.raises(ValueError, match="BN layers"):
        load_bn_running_stats(model, [])
    with pytest.raises(ValueError, match="shape"):
        load_bn_running_stats(model, [(np.zeros(99), np.ones(99))])


def test_load_bn_stats_clamps_negative_var(rng):
    model = nn.MLP((4, 3, 2), batch_norm=True, rng=rng)
    load_bn_running_stats(model, [(np.zeros(3), -np.ones(3))])
    assert (bn_layers(model)[0].running_var >= 0).all()


def test_set_bn_external(rng):
    model = nn.MLP((4, 3, 2), batch_norm=True, rng=rng)
    set_bn_external(model, True)
    assert all(l.external_stats for l in bn_layers(model))
