"""SGD optimizer semantics."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import SGD


def make_param(value=1.0, grad=0.5):
    p = Parameter(np.array([value], dtype=np.float64))
    p.grad = np.array([grad], dtype=np.float64)
    return p


def test_plain_step():
    p = make_param()
    SGD([p], lr=0.1).step()
    assert p.data[0] == pytest.approx(1.0 - 0.1 * 0.5)


def test_skips_missing_grad():
    p = Parameter(np.array([1.0]))
    SGD([p], lr=0.1).step()
    assert p.data[0] == 1.0


def test_weight_decay():
    p = make_param(value=2.0, grad=0.0)
    SGD([p], lr=0.1, weight_decay=0.5).step()
    assert p.data[0] == pytest.approx(2.0 - 0.1 * 0.5 * 2.0)


def test_momentum_accumulates():
    p = make_param(grad=1.0)
    opt = SGD([p], lr=1.0, momentum=0.5)
    opt.step()  # v=1, w=1-1=0
    p.grad = np.array([1.0])
    opt.step()  # v=1.5, w=0-1.5=-1.5
    assert p.data[0] == pytest.approx(-1.5)


def test_nesterov_differs_from_classical():
    p1, p2 = make_param(grad=1.0), make_param(grad=1.0)
    SGD([p1], lr=0.1, momentum=0.9).step()
    SGD([p2], lr=0.1, momentum=0.9, nesterov=True).step()
    assert p1.data[0] != p2.data[0]


def test_grad_clipping():
    p = make_param(grad=100.0)
    opt = SGD([p], lr=1.0, max_grad_norm=1.0)
    opt.step()
    assert p.data[0] == pytest.approx(0.0, abs=1e-9)  # clipped grad = 1.0


def test_clip_no_op_when_small():
    p = make_param(grad=0.5)
    SGD([p], lr=1.0, max_grad_norm=10.0).step()
    assert p.data[0] == pytest.approx(0.5)


def test_zero_grad():
    p = make_param()
    opt = SGD([p], lr=0.1)
    opt.zero_grad()
    assert p.grad is None


def test_validation():
    p = make_param()
    with pytest.raises(ValueError):
        SGD([], lr=0.1)
    with pytest.raises(ValueError):
        SGD([p], lr=0.0)
    with pytest.raises(ValueError):
        SGD([p], lr=0.1, momentum=-1)
    with pytest.raises(ValueError):
        SGD([p], lr=0.1, nesterov=True)


def test_state_dict_roundtrip():
    p = make_param(grad=1.0)
    opt = SGD([p], lr=0.2, momentum=0.9)
    opt.step()
    state = opt.state_dict()
    p2 = make_param(grad=1.0)
    opt2 = SGD([p2], lr=0.1)
    opt2.load_state_dict(state)
    assert opt2.lr == 0.2
    assert opt2.momentum == 0.9
    assert opt2._velocity[0] is not None


def test_state_dict_size_mismatch():
    p = make_param()
    opt = SGD([p], lr=0.1)
    state = opt.state_dict()
    state["velocity"] = []
    with pytest.raises(ValueError):
        opt.load_state_dict(state)


def test_converges_on_quadratic():
    """SGD with momentum minimizes a simple quadratic."""
    p = Parameter(np.array([5.0, -3.0]))
    opt = SGD([p], lr=0.1, momentum=0.9)
    for _ in range(300):
        p.grad = 2 * p.data  # d/dx of ||x||^2
        opt.step()
    assert np.abs(p.data).max() < 1e-3
