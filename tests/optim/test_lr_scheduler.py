"""Learning-rate schedule behaviour (the paper's step decay included)."""

import math

import pytest

from repro.optim import ConstantLR, CosineLR, MultiStepLR


def test_constant():
    sched = ConstantLR(0.3)
    assert sched(0) == 0.3
    assert sched(1000) == 0.3


def test_paper_cifar_schedule():
    """lr 0.3 divided by ten after epochs 80 and 120 (Section 5.1)."""
    sched = MultiStepLR(0.3, milestones=(80, 120), gamma=0.1)
    assert sched(0) == pytest.approx(0.3)
    assert sched(79) == pytest.approx(0.3)
    assert sched(80) == pytest.approx(0.03)
    assert sched(119) == pytest.approx(0.03)
    assert sched(120) == pytest.approx(0.003)
    assert sched(159) == pytest.approx(0.003)


def test_paper_imagenet_schedule():
    """lr reduced by ten times at the 60th and 90th epoch (Section 5.2)."""
    sched = MultiStepLR(0.3, milestones=(60, 90))
    assert sched(59) == pytest.approx(0.3)
    assert sched(60) == pytest.approx(0.03)
    assert sched(90) == pytest.approx(0.003)


def test_multistep_validation():
    with pytest.raises(ValueError):
        MultiStepLR(0.3, milestones=(120, 80))
    with pytest.raises(ValueError):
        MultiStepLR(0.3, milestones=(80,), gamma=0.0)
    with pytest.raises(ValueError):
        MultiStepLR(0.0, milestones=())


def test_multistep_empty_milestones():
    sched = MultiStepLR(0.1, milestones=())
    assert sched(50) == pytest.approx(0.1)


def test_cosine_endpoints():
    sched = CosineLR(1.0, total_epochs=10, min_lr=0.1)
    assert sched(0) == pytest.approx(1.0)
    assert sched(10) == pytest.approx(0.1)
    assert sched(5) == pytest.approx(0.55)
    # clamps outside the range
    assert sched(20) == pytest.approx(0.1)


def test_cosine_monotone_decreasing():
    sched = CosineLR(1.0, total_epochs=20)
    values = [sched(e) for e in range(21)]
    assert all(a >= b for a, b in zip(values, values[1:]))


def test_cosine_validation():
    with pytest.raises(ValueError):
        CosineLR(1.0, total_epochs=0)
    with pytest.raises(ValueError):
        CosineLR(1.0, total_epochs=10, min_lr=2.0)
